//! Offline vendored property-testing harness.
//!
//! Provides the slice of the `proptest` 1.x API this workspace uses:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros, range and tuple strategies,
//! [`collection::vec`], and [`any`]. Cases are generated from a
//! deterministic per-test ChaCha8 stream (seeded from the test name), so
//! failures reproduce exactly. There is **no shrinking** — a failing case
//! reports its generated values verbatim.

use rand::Rng as _;
pub use rand_chacha::ChaCha8Rng;

/// Result payload a generated case can return.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed with the given message.
    Fail(String),
    /// The case's preconditions were not met; retry with fresh values.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// Types with a canonical "whole domain" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy over the full domain of `T` (returned by [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Case-driving loop behind the [`proptest!`] macro.
pub mod test_runner {
    use super::*;
    use rand::SeedableRng;

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runs `f` over deterministically seeded cases, retrying rejected
    /// cases and panicking on the first failure.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut ChaCha8Rng) -> Result<(), TestCaseError>,
    {
        let cases = case_count();
        let base = fnv1a(name);
        let mut passed = 0u64;
        let mut rejects = 0u64;
        let mut attempt = 0u64;
        while passed < cases {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= 4096,
                        "proptest '{name}': too many rejected cases ({rejects}); \
                         loosen prop_assume! conditions"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed (case {passed}, rng seed {seed:#x}):\n    {msg}"
                    );
                }
            }
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |__pt_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __pt_rng);)*
                let __pt_vals =
                    format!(concat!($(stringify!($arg), " = {:?}; "),*), $(&$arg),*);
                let __pt_res: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __pt_res {
                    ::std::result::Result::Err($crate::TestCaseError::Fail(m)) => {
                        ::std::result::Result::Err($crate::TestCaseError::Fail(
                            format!("{m}\n    case: {__pt_vals}"),
                        ))
                    }
                    other => other,
                }
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n      left: {:?}\n     right: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_l,
                __pt_r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n      left: {:?}\n     right: {:?}",
                format!($($fmt)+),
                __pt_l,
                __pt_r
            )));
        }
    }};
}

/// Fails the current case unless the expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if *__pt_l == *__pt_r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n      both: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_l
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh values) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The commonly imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 1u64..50,
            v in prop::collection::vec(0u8..3, 2..6),
            pair in (0u32..4, -1i8..=1),
            flag in any::<bool>(),
        ) {
            prop_assert!(x >= 1 && x < 50);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 3));
            prop_assert!(pair.0 < 4);
            prop_assert!((-1..=1).contains(&pair.1));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_generation() {
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u64..1000, 5..9);
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_case() {
        crate::test_runner::run("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }
}
