//! Offline vendored micro-benchmark harness.
//!
//! Implements the subset of the `criterion` 0.5 API this workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is deliberately simple — a
//! warm-up pass, then `sample_size` timed samples whose median is
//! reported — with plain-text output and no statistical analysis or
//! HTML reports.
//!
//! Setting the `DLB_BENCH_QUICK` environment variable (any value) caps
//! every case at 3 samples of ~1ms — numbers become noisy, but a full
//! bench binary finishes in seconds.  CI uses this as a smoke mode to
//! prove the benches still compile and run; real measurements must be
//! taken without it.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// True when `DLB_BENCH_QUICK` is set: compile-and-run smoke mode.
fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::var_os("DLB_BENCH_QUICK").is_some())
}

/// Work-unit annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the most recent run.
    elapsed: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and iteration-count calibration: aim for ~10ms per
        // sample (~1ms in quick mode).
        let target = Duration::from_millis(if quick_mode() { 1 } else { 10 });
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.elapsed = samples[samples.len() / 2];
    }
}

/// Top-level benchmark context (one per `criterion_group!`).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_case(name, 20, None, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named collection of benchmark cases sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent cases with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named case within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_case(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a parameterised case: `f` receives the bencher and `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_case(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API parity; output is already flushed).
    pub fn finish(self) {}
}

fn run_case<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let sample_size = if quick_mode() {
        sample_size.min(3)
    } else {
        sample_size
    };
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        sample_size,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("{label:<50} {per_iter:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("{label:<50} {per_iter:>12.2?}/iter  {rate:>14.0} B/s");
        }
        _ => println!("{label:<50} {per_iter:>12.2?}/iter"),
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("case", 3), &3usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.bench_function("plain", |b| b.iter(|| std::hint::black_box(1)));
        group.finish();
    }
}
