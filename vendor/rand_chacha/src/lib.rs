//! Offline vendored ChaCha8-based generator.
//!
//! Implements the ChaCha stream cipher core (8 rounds) as an RNG exposing
//! the slice of the `rand_chacha` 0.3 API this workspace uses:
//! [`ChaCha8Rng`] with `from_seed`/`seed_from_u64`, `get_seed`,
//! `get_word_pos`/`set_word_pos` (for snapshot/restore), plus `RngCore`.
//! Output streams are deterministic per seed and position but are **not**
//! guaranteed bit-compatible with crates.io `rand_chacha`; the workspace
//! only relies on internal reproducibility.

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: u128 = 16;

/// A deterministic, seekable random generator over the ChaCha8 keystream.
#[derive(Clone)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    /// Absolute index (in 32-bit words) of the next word to emit.
    word_pos: u128,
    /// Keystream block currently buffered, if any.
    buf: [u32; 16],
    /// Block number `buf` holds; `u64::MAX` sentinel would collide with a
    /// real block, so track validity separately.
    buf_block: u64,
    buf_valid: bool,
}

impl ChaCha8Rng {
    /// Returns the 32-byte seed this generator was built from.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Absolute position in the keystream, measured in 32-bit words.
    pub fn get_word_pos(&self) -> u128 {
        self.word_pos
    }

    /// Seeks to an absolute keystream position (in 32-bit words).
    pub fn set_word_pos(&mut self, word_pos: u128) {
        self.word_pos = word_pos;
        self.buf_valid = false;
    }

    fn next_word(&mut self) -> u32 {
        let block = (self.word_pos / WORDS_PER_BLOCK) as u64;
        if !self.buf_valid || self.buf_block != block {
            self.buf = chacha8_block(&self.seed, block);
            self.buf_block = block;
            self.buf_valid = true;
        }
        let word = self.buf[(self.word_pos % WORDS_PER_BLOCK) as usize];
        self.word_pos = self.word_pos.wrapping_add(1);
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        ChaCha8Rng {
            seed,
            word_pos: 0,
            buf: [0; 16],
            buf_block: 0,
            buf_valid: false,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl core::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChaCha8Rng")
            .field("seed", &self.seed)
            .field("word_pos", &self.word_pos)
            .finish()
    }
}

impl PartialEq for ChaCha8Rng {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.word_pos == other.word_pos
    }
}

impl Eq for ChaCha8Rng {}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One 64-byte ChaCha8 keystream block for `seed` at `block` (64-bit
/// counter in words 12–13, zero nonce).
fn chacha8_block(seed: &[u8; 32], block: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            seed[4 * i],
            seed[4 * i + 1],
            seed[4 * i + 2],
            seed[4 * i + 3],
        ]);
    }
    state[12] = block as u32;
    state[13] = (block >> 32) as u32;
    let input = state;
    for _ in 0..4 {
        // double round: column then diagonal quarter rounds
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(input.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn word_pos_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            rng.next_u32();
        }
        let pos = rng.get_word_pos();
        assert_eq!(pos, 37);
        let expected: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        let mut replay = ChaCha8Rng::from_seed(rng.get_seed());
        replay.set_word_pos(pos);
        let got: Vec<u64> = (0..10).map(|_| replay.next_u64()).collect();
        assert_eq!(expected, got);
        assert_eq!(rng, replay);
    }

    #[test]
    fn blocks_differ() {
        let seed = [9u8; 32];
        assert_ne!(chacha8_block(&seed, 0), chacha8_block(&seed, 1));
    }

    #[test]
    fn output_looks_mixed() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u32().count_ones();
        }
        // 2048 bits total; expect roughly half set.
        assert!((800..1250).contains(&ones), "popcount {ones}");
    }
}
