//! Sequence-related helpers: random index subsets and slice utilities.

use crate::{Rng, RngCore};

/// Random index sampling (subset of `rand::seq::index`).
pub mod index {
    use super::*;

    /// An owned collection of distinct indices in `[0, length)`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Iterates the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True when no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consumes into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    /// Samples `amount` distinct indices uniformly from `[0, length)`
    /// (Floyd's algorithm; O(amount²) membership tests, fine for the
    /// small δ-sized draws this workspace performs).
    ///
    /// # Panics
    ///
    /// Panics when `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} from {length}");
        let mut chosen: Vec<usize> = Vec::with_capacity(amount);
        for j in (length - amount)..length {
            let t = rng.gen_range(0..=j);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        IndexVec(chosen)
    }
}

/// Random slice operations (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = Lcg(5);
        for _ in 0..200 {
            let v = index::sample(&mut rng, 7, 3).into_vec();
            assert_eq!(v.len(), 3);
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "distinct: {v:?}");
            assert!(v.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn sample_full_population() {
        let mut rng = Lcg(9);
        let mut v = index::sample(&mut rng, 4, 4).into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = Lcg(2);
        let mut xs = [1, 2, 3, 4, 5];
        assert!(xs.choose(&mut rng).is_some());
        let orig = xs;
        xs.shuffle(&mut rng);
        let mut sorted = xs;
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
