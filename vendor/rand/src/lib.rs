//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the small slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_bool`, `gen_range`),
//! [`seq::index::sample`] and [`seq::SliceRandom`].  The implementation is
//! original (no upstream code); streams are deterministic per seed but are
//! **not** bit-compatible with crates.io `rand` — everything in this
//! workspace derives its expectations from these streams, so only internal
//! consistency matters.

pub mod seq;

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible directly by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $next:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via 128-bit multiply (negligible bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    /// One value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
        if p >= 1.0 {
            return true;
        }
        // Compare against a 53-bit uniform; exact enough for p in [0, 1).
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The commonly imported names.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(0..10);
            assert!(a < 10);
            let b: i8 = rng.gen_range(-1i8..=1);
            assert!((-1..=1).contains(&b));
            let c: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&c));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Lcg(11);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
