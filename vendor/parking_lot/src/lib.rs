//! Offline vendored facade over `std::sync` with the `parking_lot` API
//! shape used by this workspace: a [`Mutex`] whose `lock()` returns the
//! guard directly (no `Result`). Poisoning is transparently ignored —
//! matching `parking_lot` semantics, a panicked holder does not wedge
//! the lock for everyone else.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`]; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
