//! Offline vendored facade over `std::sync` with the `parking_lot` API
//! shape used by this workspace: a [`Mutex`] whose `lock()` returns the
//! guard directly (no `Result`) and a [`Condvar`] whose `wait_for`
//! re-acquires through the caller's guard slot. Poisoning is
//! transparently ignored — matching `parking_lot` semantics, a panicked
//! holder does not wedge the lock for everyone else.

use std::sync::PoisonError;
use std::time::Duration;

/// Guard returned by [`Mutex::lock`]; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed
/// rather than a notification.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the `parking_lot` calling convention:
/// `wait_for` takes the guard by `&mut` and leaves it re-acquired.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases the guard's lock and blocks until notified or
    /// `timeout` elapses; the lock is re-acquired before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // std's `wait_timeout` consumes the guard and hands back a new
        // one for the same mutex; move it through the caller's slot so
        // the signature matches `parking_lot`. `wait_timeout` itself
        // does not unwind, so the slot is never left holding a moved-out
        // guard.
        unsafe {
            let taken = std::ptr::read(guard);
            let (reacquired, result) = self
                .0
                .wait_timeout(taken, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
            WaitTimeoutResult(result.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_times_out_and_wakes() {
        use std::time::Duration;
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
        assert!(!*g);
        drop(g);

        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let waker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                *shared.0.lock() = true;
                shared.1.notify_all();
            })
        };
        let mut g = shared.0.lock();
        while !*g {
            shared.1.wait_for(&mut g, Duration::from_millis(1));
        }
        drop(g);
        waker.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
