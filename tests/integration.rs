//! Cross-crate integration tests: the full algorithm, workloads,
//! baselines and theory bounds working together end to end.

use dlb::baselines::{NoBalance, RandomScatter, Rsu91};
use dlb::core::{imbalance_stats, Cluster, ExchangePolicy, LoadBalancer, Params, SimpleCluster};
use dlb::net::{PartnerMode, TopoCluster, Topology};
use dlb::theory::TheoremBounds;
use dlb::workload::patterns::{MovingHotspot, OneProducer, ProducerConsumerSplit};
use dlb::workload::phase::PhaseWorkload;
use dlb::workload::trace::EventTrace;
use dlb::workload::{drive, Workload};

/// The paper's §7 experiment end to end: 64 processors, 500 steps, full
/// algorithm, all invariants checked afterwards, quality within the
/// qualitative claims.
#[test]
fn paper_section7_end_to_end() {
    let params = Params::paper_section7(64);
    let mut cluster = Cluster::new(params, 17);
    let mut workload = PhaseWorkload::paper_section7(3);
    let mut late_ratios = Vec::new();
    drive(&mut cluster, &mut workload, 500, |t, c| {
        if t >= 250 {
            let stats = imbalance_stats(&c.loads());
            if stats.mean >= 10.0 {
                late_ratios.push(stats.max_over_mean);
            }
        }
    });
    cluster
        .check_invariants()
        .expect("invariants hold after 500 steps");
    assert!(!late_ratios.is_empty());
    let mean_ratio = late_ratios.iter().sum::<f64>() / late_ratios.len() as f64;
    assert!(
        mean_ratio < 1.5,
        "well balanced: mean max/mean = {mean_ratio}"
    );
    assert_eq!(cluster.metrics().consume_failed, 0);
}

/// The same recorded trace drives every strategy; totals must agree
/// because generation/consumption opportunities are identical only in
/// events, not outcomes — so instead we assert each strategy conserves
/// its own ledger and the full algorithm balances best.
#[test]
fn strategies_on_identical_trace() {
    let n = 32;
    let mut wl = PhaseWorkload::new(n, 300, Default::default(), 5);
    assert_eq!(wl.n(), 32);
    let trace = EventTrace::record(&mut wl, 300);

    let run = |balancer: &mut dyn LoadBalancer| -> (f64, u64) {
        let mut replay = trace.replay();
        let mut events = Vec::new();
        let mut ratio = 0.0;
        let mut samples = 0usize;
        for t in 0..300 {
            replay.events_at(t, &mut events);
            balancer.step(&events);
            if t >= 100 && t % 20 == 0 {
                let stats = imbalance_stats(&balancer.loads());
                if stats.mean >= 5.0 {
                    ratio += stats.max_over_mean;
                    samples += 1;
                }
            }
        }
        let m = balancer.metrics();
        assert_eq!(
            balancer.loads().iter().sum::<u64>(),
            m.generated - m.consumed,
            "{} conserves packets",
            balancer.name()
        );
        (ratio / samples.max(1) as f64, m.generated)
    };

    let params = Params::paper_section7(n);
    let mut full = Cluster::new(params, 1);
    let mut simple = SimpleCluster::new(params, 1);
    let mut rsu = Rsu91::new(n, 1);
    let mut scatter = RandomScatter::new(n, 1);
    let mut none = NoBalance::new(n);

    let (r_full, _) = run(&mut full);
    let (r_simple, _) = run(&mut simple);
    let (r_rsu, _) = run(&mut rsu);
    let (r_scatter, _) = run(&mut scatter);
    let (r_none, _) = run(&mut none);

    full.check_invariants().expect("full invariants");
    assert!(r_full < r_rsu, "full ({r_full}) beats rsu91 ({r_rsu})");
    assert!(
        r_full < r_scatter,
        "full ({r_full}) beats scatter ({r_scatter})"
    );
    assert!(r_full < r_none, "full ({r_full}) beats none ({r_none})");
    assert!(
        r_simple < r_none,
        "simple ({r_simple}) beats none ({r_none})"
    );
}

/// Theorem 4's bound holds for expected loads estimated over runs, for an
/// adversarial split workload (half producers, half consumers).
#[test]
fn theorem4_on_adversarial_split() {
    let n = 16;
    let params = Params::new(n, 2, 1.3, 4).expect("valid");
    let bounds = TheoremBounds::for_params(params.algo());
    let runs = 12;
    let mut means = vec![0.0f64; n];
    for seed in 0..runs {
        let mut cluster = Cluster::new(params, seed);
        let mut workload = ProducerConsumerSplit::new(n, 60);
        drive(&mut cluster, &mut workload, 400, |_, _| {});
        cluster.check_invariants().expect("invariants");
        for (m, &l) in means.iter_mut().zip(cluster.loads().iter()) {
            *m += l as f64;
        }
    }
    for m in &mut means {
        *m /= runs as f64;
    }
    for (i, &ei) in means.iter().enumerate() {
        for (j, &ej) in means.iter().enumerate() {
            if i != j {
                assert!(
                    bounds.theorem4_holds(ei, ej, params.c_borrow(), 0.15),
                    "pair ({i},{j}): {ei} vs bound {}",
                    bounds.theorem4_upper(ej, params.c_borrow())
                );
            }
        }
    }
}

/// A moving hotspot: the balancer adapts as the generating processor
/// wanders (the §1 adaptivity requirement).
#[test]
fn adapts_to_moving_hotspot() {
    let n = 16;
    let params = Params::new(n, 2, 1.2, 4).expect("valid");
    let mut cluster = Cluster::new(params, 9);
    let mut workload = MovingHotspot::new(n, 50, 0.2, 4);
    let mut worst = 1.0f64;
    drive(&mut cluster, &mut workload, 800, |t, c| {
        if t >= 200 && t % 25 == 0 {
            let stats = imbalance_stats(&c.loads());
            if stats.mean >= 10.0 {
                worst = worst.max(stats.max_over_mean);
            }
        }
    });
    cluster.check_invariants().expect("invariants");
    assert!(worst < 2.0, "hotspot tracked: worst ratio {worst}");
}

/// Aggressive exchange policy: same end-to-end workload, ledger still
/// conserved globally, comparable balance quality.
#[test]
fn aggressive_policy_end_to_end() {
    let params = Params::paper_section7(16).with_exchange(ExchangePolicy::Aggressive);
    let mut cluster = Cluster::new(params, 23);
    let mut workload = PhaseWorkload::new(
        16,
        400,
        dlb::workload::phase::PhaseConfig::paper_section7(),
        8,
    );
    drive(&mut cluster, &mut workload, 400, |_, _| {});
    cluster
        .check_invariants()
        .expect("aggressive policy keeps ledger");
}

/// The topology engine and the plain simple cluster implement the same
/// algorithm when the topology is complete: same trigger rule, so
/// balance-op counts should be in the same ballpark on the same trace.
#[test]
fn topo_complete_matches_simple_shape() {
    let n = 16;
    let params = Params::paper_section7(n);
    let mut wl = OneProducer::new(n, 0);
    let trace = EventTrace::record(&mut wl, 2000);

    let mut simple = SimpleCluster::new(params, 3);
    let mut topo = TopoCluster::new(
        params,
        Topology::Complete { n },
        PartnerMode::GlobalRandom,
        3,
    );
    let mut events = Vec::new();
    let mut replay = trace.replay();
    for t in 0..2000 {
        replay.events_at(t, &mut events);
        simple.step(&events);
        topo.step(&events);
    }
    let (a, b) = (simple.metrics().balance_ops, topo.metrics().balance_ops);
    let rel = (a as f64 - b as f64).abs() / a as f64;
    assert!(rel < 0.35, "balance ops comparable: {a} vs {b}");
    assert_eq!(
        simple.loads().iter().sum::<u64>(),
        topo.loads().iter().sum::<u64>()
    );
}

/// The branch & bound application layer finds verified optima while the
/// runtime balances the subproblem pools (the paper's [7, 8] workloads).
#[test]
fn branch_and_bound_applications_end_to_end() {
    use dlb::bnb::{knapsack::Knapsack, nqueens::NQueens, tsp::Tsp, Solver};
    let solver = Solver::with_workers(4);

    let tsp = Tsp::random(11, 2);
    assert_eq!(
        solver.solve(&tsp).best_value,
        Some(tsp.optimum_by_held_karp())
    );

    let ks = Knapsack::random(17, 35, 3);
    assert_eq!(solver.solve(&ks).best_value, Some(ks.optimum_by_dp()));

    let (count, stats) = solver.count_solutions(&NQueens::new(8));
    assert_eq!(count, 92);
    assert!(stats.total_processed() > 92);
}

/// The asynchronous protocol at latency 1 approaches the synchronous
/// simulator's balance quality on the same workload intensity.
#[test]
fn async_low_latency_matches_sync_quality() {
    use dlb::net::{AsyncConfig, AsyncNetwork};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    let n = 16;
    let params = Params::new(n, 2, 1.3, 4).expect("valid");

    // Async at latency 1.
    let mut net = AsyncNetwork::new(AsyncConfig::reliable(params, 1, 3));
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut async_ratio = 0.0;
    let mut samples = 0usize;
    for t in 0..3_000u64 {
        let actions: Vec<i8> = (0..n)
            .map(|_| if rng.gen_bool(0.6) { 1 } else { -1 })
            .collect();
        net.tick(t, &actions);
        if t >= 1_000 && t % 50 == 0 {
            let stats = imbalance_stats(&net.loads());
            if stats.mean >= 5.0 {
                async_ratio += stats.max_over_mean;
                samples += 1;
            }
        }
    }
    net.quiesce();
    net.check_conservation().expect("conservation");
    let async_ratio = async_ratio / samples.max(1) as f64;

    // Synchronous simple cluster, same intensity.
    let mut sync = SimpleCluster::new(params, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut sync_ratio = 0.0;
    let mut samples = 0usize;
    for t in 0..3_000usize {
        let events: Vec<dlb::core::LoadEvent> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    dlb::core::LoadEvent::Generate
                } else {
                    dlb::core::LoadEvent::Consume
                }
            })
            .collect();
        sync.step(&events);
        if t >= 1_000 && t % 50 == 0 {
            let stats = imbalance_stats(&sync.loads());
            if stats.mean >= 5.0 {
                sync_ratio += stats.max_over_mean;
                samples += 1;
            }
        }
    }
    let sync_ratio = sync_ratio / samples.max(1) as f64;
    assert!(
        (async_ratio - sync_ratio).abs() < 0.25,
        "async {async_ratio} vs sync {sync_ratio}"
    );
}

/// Heterogeneous speeds: the weighted balancer drains a shared pool so
/// that processing finishes together, unlike the uniform balancer.
#[test]
fn weighted_balancer_tracks_speeds() {
    use dlb::core::WeightedCluster;
    let n = 6;
    let params = Params::new(n, 2, 1.2, 4).expect("valid");
    let speeds = vec![1u64, 1, 2, 2, 6, 6];
    let mut cluster = WeightedCluster::new(params, speeds.clone(), 11);
    let mut events = vec![dlb::core::LoadEvent::Idle; n];
    events[0] = dlb::core::LoadEvent::Generate;
    for _ in 0..4_000 {
        cluster.step(&events);
    }
    assert!(
        cluster.normalized_imbalance() < 1.5,
        "{:?}",
        cluster.normalized_loads()
    );
    let loads = cluster.loads();
    assert!(loads[4] + loads[5] > 3 * (loads[0] + loads[1]), "{loads:?}");
}

/// Determinism across the whole stack: same seeds, same curves.
#[test]
fn full_stack_determinism() {
    let run = || {
        let params = Params::paper_section7(16);
        let mut cluster = Cluster::new(params, 5);
        let mut workload = PhaseWorkload::new(
            16,
            200,
            dlb::workload::phase::PhaseConfig::paper_section7(),
            6,
        );
        let mut trail = Vec::new();
        drive(&mut cluster, &mut workload, 200, |_, c| {
            trail.push(c.loads())
        });
        trail
    };
    assert_eq!(run(), run());
}
