//! Integration tests of the threaded message-passing runtime: packet
//! conservation under concurrency, dynamic spawning, and agreement with
//! the discrete simulator on the qualitative claims.

use dlb::net::{RuntimeConfig, ThreadedRuntime};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn heavy_dynamic_tree_conserves_and_balances() {
    // Irregular tree: nodes spawn 0–3 children depending on a hash of
    // their id, with real per-node work.
    let spawned = AtomicU64::new(1);
    let config = RuntimeConfig {
        workers: 6,
        delta: 2,
        f: 1.4,
        seed: 5,
    };
    let stats = ThreadedRuntime::run(config, vec![(0u64, 14u32)], |_, (id, depth), out| {
        let mut acc = id;
        for i in 0..2_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        if depth > 0 {
            let kids = (acc % 3) as u32; // 0..=2 children
            for k in 0..kids {
                out.push((id * 3 + k as u64 + 1, depth - 1));
                spawned.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    assert_eq!(stats.total_processed(), spawned.load(Ordering::Relaxed));
    assert!(stats.balance_ops > 0);
}

#[test]
fn work_conservation_with_many_workers() {
    for workers in [2usize, 4, 12] {
        let config = RuntimeConfig {
            workers,
            delta: 1,
            f: 1.5,
            seed: 7,
        };
        let counter = AtomicU64::new(0);
        let stats = ThreadedRuntime::run(config, (0..500u32).collect(), |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500, "{workers} workers");
        assert_eq!(stats.total_processed(), 500);
        assert_eq!(stats.processed.len(), workers);
    }
}

#[test]
fn large_flat_batch_is_spread_evenly() {
    let config = RuntimeConfig {
        workers: 8,
        delta: 2,
        f: 1.3,
        seed: 11,
    };
    let stats = ThreadedRuntime::run(config, (0..8_000u32).collect(), |_, x, _| {
        let mut acc = x as u64;
        for i in 0..1_000u64 {
            acc = acc.wrapping_mul(2862933555777941757).wrapping_add(i);
        }
        std::hint::black_box(acc);
    });
    assert_eq!(stats.total_processed(), 8_000);
    // Per-worker spread is only meaningful with real parallelism; on a
    // single core the OS scheduler decides who runs, not the balancer.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores >= 4 {
        assert!(
            stats.processing_imbalance() < 2.5,
            "flat batch should spread: {:?}",
            stats.processed
        );
    }
}

#[test]
fn producer_consumer_chain() {
    // A linear chain (each packet spawns exactly one successor) is the
    // worst case for balancing: only one packet exists at a time, so the
    // run must still terminate promptly and correctly.
    let config = RuntimeConfig {
        workers: 4,
        delta: 1,
        f: 1.2,
        seed: 3,
    };
    let stats = ThreadedRuntime::run(config, vec![2_000u32], |_, n, out| {
        if n > 0 {
            out.push(n - 1);
        }
    });
    assert_eq!(stats.total_processed(), 2_001);
}
