//! Property-based tests (proptest) on the core invariants: the balance
//! primitive, the trigger predicates, the full cluster's structural
//! invariants under arbitrary event sequences, and the theory layer.

use dlb::core::balance::{distribute_capped, distribute_classes, even_shares, spread};
use dlb::core::batch::{step_batch, BatchEvent};
use dlb::core::{Cluster, ExchangePolicy, LoadBalancer, LoadEvent, Params};
use dlb::faults::{CrashEvent, CrashMode, FaultPlan, PartitionEvent};
use dlb::net::{AsyncConfig, AsyncNetwork};
use dlb::theory::operators::{fix, fix_limit, g_op};
use proptest::prelude::*;

proptest! {
    /// `even_shares` conserves the total, spreads ≤ 1 and is sorted
    /// descending (larger shares first).
    #[test]
    fn even_shares_properties(total in 0u64..10_000, m in 1usize..20) {
        let shares = even_shares(total, m);
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
        prop_assert!(spread(&shares) <= 1);
        prop_assert!(shares.windows(2).all(|w| w[0] >= w[1]));
    }

    /// The snake distribution meets both appendix constraints for any
    /// class totals: per-class spread ≤ 1 and grand-total spread ≤ 1.
    #[test]
    fn distribute_classes_properties(
        totals in prop::collection::vec(0u64..500, 1..40),
        m in 1usize..9,
    ) {
        let mut running = vec![0u64; m];
        let out = distribute_classes(&totals, m, &mut running);
        for (j, shares) in out.iter().enumerate() {
            prop_assert_eq!(shares.iter().sum::<u64>(), totals[j]);
            prop_assert!(spread(shares) <= 1, "class {} spread {:?}", j, shares);
        }
        let grand: Vec<u64> = (0..m).map(|s| out.iter().map(|sh| sh[s]).sum()).collect();
        prop_assert!(spread(&grand) <= 1, "grand {:?}", grand);
        prop_assert_eq!(&grand, &running);
    }

    /// The capped distribution respects caps, conserves the total and is
    /// maximally even: a member can only lag another by 2+ if its cap is
    /// exhausted.
    #[test]
    fn distribute_capped_properties(caps in prop::collection::vec(0u64..20, 1..10), frac in 0.0f64..1.0) {
        let capacity: u64 = caps.iter().sum();
        let total = (capacity as f64 * frac) as u64;
        let out = distribute_capped(total, &caps);
        prop_assert_eq!(out.iter().sum::<u64>(), total);
        for (o, c) in out.iter().zip(caps.iter()) {
            prop_assert!(o <= c);
        }
        for a in 0..out.len() {
            for b in 0..out.len() {
                if out[a] + 1 < out[b] {
                    prop_assert_eq!(out[a], caps[a], "member {} starved below {} without cap", a, b);
                }
            }
        }
    }

    /// Grow and shrink triggers are mutually exclusive and fire exactly
    /// on the factor-f thresholds.
    #[test]
    fn triggers_exclusive(cur in 0u64..100_000, last in 0u64..100_000, f_scaled in 0u32..10) {
        let f = 1.0 + f_scaled as f64 / 10.0;
        let delta = 2usize;
        prop_assume!(f < delta as f64 + 1.0);
        let params = Params::new(8, delta, f, 4).unwrap();
        let grow = params.grow_triggered(cur, last);
        let shrink = params.shrink_triggered(cur, last);
        prop_assert!(!(grow && shrink));
        if grow { prop_assert!(cur > last); }
        if shrink { prop_assert!(cur < last); }
    }

    /// FIX is a fixed point of G, bounded by the Theorem 2 limit, and
    /// monotonically increasing in f.
    #[test]
    fn fix_properties(n in 3usize..2000, delta in 1usize..8, f_scaled in 0u32..80) {
        prop_assume!(delta < n);
        let f = 1.0 + f_scaled as f64 / 100.0;
        prop_assume!(f < delta as f64 + 1.0);
        let fx = fix(n, delta, f);
        prop_assert!(fx >= 1.0 - 1e-9);
        prop_assert!(fx <= fix_limit(delta, f) + 1e-9);
        prop_assert!((g_op(n, delta, f, fx) - fx).abs() < 1e-6 * fx.max(1.0));
        let f2 = f + 0.05;
        if f2 < delta as f64 + 1.0 {
            prop_assert!(fix(n, delta, f2) >= fx - 1e-9, "FIX monotone in f");
        }
    }

    /// The full cluster's structural invariants survive arbitrary event
    /// sequences, parameters and exchange policies.
    #[test]
    fn cluster_invariants_random_walk(
        seed in 0u64..1000,
        n in 3usize..9,
        delta_raw in 1usize..4,
        f_scaled in 0u32..8,
        c_borrow in 1usize..6,
        aggressive in any::<bool>(),
        steps in prop::collection::vec(prop::collection::vec(0u8..3, 3..9), 1..60),
    ) {
        let delta = delta_raw.min(n - 1);
        let f = 1.0 + f_scaled as f64 / 10.0;
        prop_assume!(f < delta as f64 + 1.0);
        let mut params = Params::new(n, delta, f, c_borrow).unwrap();
        if aggressive {
            params = params.with_exchange(ExchangePolicy::Aggressive);
        }
        let mut cluster = Cluster::new(params, seed);
        for row in &steps {
            let events: Vec<LoadEvent> = (0..n)
                .map(|i| match row[i % row.len()] {
                    0 => LoadEvent::Generate,
                    1 => LoadEvent::Consume,
                    _ => LoadEvent::Idle,
                })
                .collect();
            cluster.step(&events);
        }
        prop_assert!(cluster.check_invariants().is_ok(),
            "{:?}", cluster.check_invariants());
    }

    /// The exact moment recursion's mean ratio equals the operator
    /// iteration `G^t(1)` for arbitrary valid parameters.
    #[test]
    fn moments_match_operator(p in 2usize..40, delta_raw in 1usize..5, f_scaled in 0u32..8, t in 1usize..60) {
        let delta = delta_raw.min(p);
        let f = 1.0 + f_scaled as f64 / 10.0;
        prop_assume!(f < delta as f64 + 1.0);
        let n = p + 1;
        let algo = dlb::theory::AlgoParams::new(n, delta, f).unwrap();
        let mut st = dlb::theory::moments::MomentState::balanced(p, delta, f, 1.0);
        st.advance(t);
        let expected = algo.g_iter(1.0, t);
        prop_assert!((st.ratio() - expected).abs() < 1e-9 * expected);
    }

    /// Random circulant topologies are connected and undirected.
    #[test]
    fn circulant_topology_properties(n in 3usize..60, k in 1usize..4, seed in 0u64..100) {
        let topo = dlb::net::Topology::random_circulant(n, k, seed);
        prop_assert!(topo.is_connected());
        for v in 0..n {
            for u in topo.neighbors(v) {
                prop_assert!(u < n && u != v);
                prop_assert!(topo.neighbors(u).contains(&v));
            }
        }
    }

    /// Load is conserved by the simple cluster under arbitrary events.
    #[test]
    fn simple_cluster_conservation(
        seed in 0u64..500,
        events_code in prop::collection::vec(0u8..3, 30..300),
    ) {
        let n = 6;
        let params = Params::paper_section7(n);
        let mut cluster = dlb::core::SimpleCluster::new(params, seed);
        for chunk in events_code.chunks(n) {
            if chunk.len() < n { break; }
            let events: Vec<LoadEvent> = chunk.iter().map(|&c| match c {
                0 => LoadEvent::Generate,
                1 => LoadEvent::Consume,
                _ => LoadEvent::Idle,
            }).collect();
            cluster.step(&events);
        }
        prop_assert!(cluster.check_invariants().is_ok());
    }

    /// The asynchronous message protocol conserves packets and releases
    /// every lock for arbitrary action sequences, latencies and control
    /// losses.
    #[test]
    fn async_network_conserves_and_stays_live(
        seed in 0u64..200,
        latency in 1u64..12,
        loss_pct in 0u32..50,
        plan in prop::collection::vec(prop::collection::vec(-1i8..=1, 6), 5..60),
    ) {
        let n = 6;
        let params = Params::new(n, 2, 1.3, 4).unwrap();
        let mut cfg = AsyncConfig::reliable(params, latency, seed);
        cfg.control_loss = loss_pct as f64 / 100.0;
        let mut net = AsyncNetwork::new(cfg);
        for (t, row) in plan.iter().enumerate() {
            net.tick(t as u64, row);
        }
        net.quiesce();
        prop_assert!(net.check_conservation().is_ok(), "{:?}", net.check_conservation());
        prop_assert_eq!(net.locked_count(), 0);
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Extended conservation — `Σ loads + pooled + in_flight + lost =
    /// generated − consumed` — holds after every tick for *arbitrary*
    /// fault plans (loss on both message classes, duplication, jitter,
    /// crashes in both modes, partitions), and quiescence releases every
    /// lock and drains every message.
    #[test]
    fn arbitrary_fault_plans_conserve_and_unlock(
        seed in 0u64..200,
        fault_seed in 0u64..1000,
        latency in 1u64..8,
        loss_pct in 0u32..40,
        transfer_pct in 0u32..40,
        dup_pct in 0u32..30,
        jitter in 0u64..6,
        frozen in any::<bool>(),
        crashes_raw in prop::collection::vec((0u32..6, 0u64..150, 0u64..150), 0..3),
        partition_raw in prop::collection::vec((0u64..120, 1u64..80, 1u32..63), 0..2),
        rows in prop::collection::vec(prop::collection::vec(-1i8..=1, 6), 5..50),
    ) {
        let n = 6;
        let params = Params::new(n, 2, 1.3, 4).unwrap();
        let plan = FaultPlan {
            seed: fault_seed,
            loss: loss_pct as f64 / 100.0,
            transfer_loss: transfer_pct as f64 / 100.0,
            duplication: dup_pct as f64 / 100.0,
            jitter,
            crash_mode: if frozen { CrashMode::Frozen } else { CrashMode::Lost },
            // recover offset 0 encodes "never recovers".
            crashes: crashes_raw
                .iter()
                .map(|&(proc, at, rec)| CrashEvent {
                    proc: proc as usize,
                    at,
                    recover_at: (rec > 0).then_some(at + rec),
                })
                .collect(),
            partitions: partition_raw
                .iter()
                .map(|&(from, dur, bits)| PartitionEvent {
                    from,
                    until: from + dur,
                    group: (0..n).filter(|&p| bits >> p & 1 == 1).collect(),
                })
                .collect(),
        };
        prop_assume!(plan.validate(n).is_ok());
        let cfg = AsyncConfig::reliable(params, latency, seed);
        let mut net = AsyncNetwork::with_faults(cfg, plan).unwrap();
        for (t, row) in rows.iter().enumerate() {
            net.tick(t as u64, row);
            prop_assert!(net.check_conservation().is_ok(),
                "at tick {}: {:?}", t, net.check_conservation());
        }
        net.quiesce();
        prop_assert!(net.check_conservation().is_ok(), "{:?}", net.check_conservation());
        prop_assert_eq!(net.locked_count(), 0, "leaked lock after quiescence");
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// The synchronous cluster under an arbitrary crash mask conserves
    /// load and freezes exactly the masked processors.
    #[test]
    fn masked_sync_cluster_conserves(
        seed in 0u64..200,
        mask_bits in 0u32..63,
        rows in prop::collection::vec(prop::collection::vec(0u8..3, 6), 5..60),
    ) {
        let n = 6;
        let params = Params::paper_section7(n);
        let mut cluster = dlb::core::SimpleCluster::with_initial_load(params, seed, 20);
        let down: Vec<bool> = (0..n).map(|p| mask_bits >> p & 1 == 1).collect();
        let frozen_loads: Vec<(usize, u64)> =
            (0..n).filter(|&p| down[p]).map(|p| (p, cluster.load(p))).collect();
        for row in &rows {
            let events: Vec<LoadEvent> = row
                .iter()
                .map(|&c| match c {
                    0 => LoadEvent::Generate,
                    1 => LoadEvent::Consume,
                    _ => LoadEvent::Idle,
                })
                .collect();
            cluster.step_masked(&events, &down);
        }
        prop_assert!(cluster.check_invariants().is_ok());
        for (p, load) in frozen_loads {
            prop_assert_eq!(cluster.load(p), load, "down processor {} drifted", p);
        }
    }

    /// §2's batch decomposition: total generation equals the batch sum,
    /// consumption never exceeds it, and cluster invariants hold.
    #[test]
    fn batch_steps_decompose_correctly(
        seed in 0u64..100,
        batches in prop::collection::vec((0u32..4, 0u32..4), 5),
        rounds in 1usize..12,
    ) {
        let n = 5;
        let params = Params::paper_section7(n);
        let mut cluster = Cluster::new(params, seed);
        let events: Vec<BatchEvent> = batches
            .iter()
            .map(|&(g, c)| BatchEvent { generate: g, consume: c })
            .collect();
        for _ in 0..rounds {
            step_batch(&mut cluster, &events);
        }
        let total_gen: u64 =
            batches.iter().map(|&(g, _)| g as u64).sum::<u64>() * rounds as u64;
        prop_assert_eq!(cluster.metrics().generated, total_gen);
        prop_assert!(cluster.check_invariants().is_ok());
    }

    /// Snapshot/restore is the identity on behaviour for any prefix.
    #[test]
    fn snapshot_roundtrip_identity(
        seed in 0u64..100,
        prefix in prop::collection::vec(prop::collection::vec(0u8..3, 4), 1..30),
        suffix in prop::collection::vec(prop::collection::vec(0u8..3, 4), 1..20),
    ) {
        let n = 4;
        let params = Params::paper_section7(n);
        let mut original = Cluster::new(params, seed);
        let to_events = |row: &Vec<u8>| -> Vec<LoadEvent> {
            row.iter()
                .map(|&c| match c {
                    0 => LoadEvent::Generate,
                    1 => LoadEvent::Consume,
                    _ => LoadEvent::Idle,
                })
                .collect()
        };
        for row in &prefix {
            original.step(&to_events(row));
        }
        let snap = original.snapshot();
        let mut restored = Cluster::restore(&snap).unwrap();
        for row in &suffix {
            let ev = to_events(row);
            original.step(&ev);
            restored.step(&ev);
        }
        prop_assert_eq!(original.loads(), restored.loads());
        prop_assert_eq!(original.metrics(), restored.metrics());
    }
}
