//! Process-lifetime worker pool with a deterministic, index-ordered
//! [`par_map`].
//!
//! Originally part of `dlb-experiments::parallel` (PR 4), promoted to its
//! own leaf crate so `dlb-core` can run conflict-free balance waves on
//! the same pool without a dependency cycle (`dlb-experiments` depends on
//! `dlb-core`).  Both layers of parallelism — runs across the pool via
//! the experiment harness, waves inside a run via the engines — share
//! this single pool, so a `--jobs J` × `--step-jobs S` combination never
//! oversubscribes: the pool holds one job at a time, and calls made from
//! inside a pool worker run inline on that thread.
//!
//! Two invariants make the parallelism invisible to the results:
//!
//! 1. **In-order reduction** — [`par_map`] returns the per-index results
//!    in index order regardless of which worker finished first, so a
//!    caller folding them (including non-associative `f64` sums) gets
//!    bit-identical aggregates for every `jobs` value, including 1.
//! 2. **Nesting runs inline** — a `par_map` call from a thread already
//!    executing pool work maps sequentially on that thread, so nesting
//!    cannot deadlock and still returns index-ordered results.
//!
//! Worker threads are spawned once (grown lazily to the largest
//! `jobs − 1` ever requested) and *park on a condvar* between jobs, so an
//! idle pool costs nothing and a [`par_map`] call costs a couple of mutex
//! operations rather than `jobs` thread spawns.  Within a job, idle
//! workers claim indices from a shared atomic cursor, so uneven item
//! times do not serialise the tail.  The calling thread participates as
//! one of the `jobs` workers.  Concurrent top-level calls serialise on a
//! submission lock.
//!
//! No external crate is needed; the pool is ~100 lines of `std`.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Worker count used when `--jobs` is not given: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// True on pool workers and on a caller while it executes its own
    /// share of a job: nested `par_map` calls from such threads run
    /// inline instead of re-entering the (single-job) pool.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The job a worker executes: a lifetime-erased borrow of the caller's
/// work closure.  Validity is guaranteed by the submission protocol —
/// the caller does not return from [`par_map`] until every worker that
/// claimed this reference has dropped out of it (`running == 0`).
#[derive(Clone, Copy)]
struct TaskRef(&'static (dyn Fn() + Sync));

struct PoolState {
    /// Bumped once per submitted job; a worker only claims a task whose
    /// generation differs from the last one it executed.
    generation: u64,
    /// The current job, or `None` between jobs / after the caller
    /// closed submission.
    task: Option<TaskRef>,
    /// How many more workers may still join the current job (keeps a
    /// large pool from exceeding a smaller `--jobs` request).
    slots_open: usize,
    /// Workers currently inside the current job's closure.
    running: usize,
    /// Worker threads spawned so far (they never exit).
    spawned: usize,
    /// Set when a worker's closure panicked; re-raised by the caller.
    panicked: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The caller parks here until `running` drains to zero.
    done_cv: Condvar,
    /// Serialises top-level `par_map` calls (the pool holds one job).
    submit: Mutex<()>,
}

/// Poison-tolerant lock: a panic inside a caller-supplied closure can
/// poison the submission lock while `par_map` unwinds; the pool's own
/// invariants never depend on poisoning, so we keep going.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    fn new() -> Arc<Pool> {
        Arc::new(Pool {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                slots_open: 0,
                running: 0,
                spawned: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
        })
    }

    fn global() -> &'static Arc<Pool> {
        static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
        POOL.get_or_init(Pool::new)
    }

    /// Grows the pool to at least `needed` parked workers.
    fn ensure_workers(self: &Arc<Self>, needed: usize) {
        let mut st = lock(&self.state);
        while st.spawned < needed {
            st.spawned += 1;
            let pool = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("dlb-par-{}", st.spawned))
                .spawn(move || pool.worker_loop())
                .expect("spawn pool worker");
        }
    }

    fn worker_loop(&self) {
        IN_POOL.with(|flag| flag.set(true));
        let mut last_gen = 0u64;
        loop {
            let task = {
                let mut st = lock(&self.state);
                loop {
                    if st.generation != last_gen && st.slots_open > 0 {
                        if let Some(task) = st.task {
                            last_gen = st.generation;
                            st.slots_open -= 1;
                            st.running += 1;
                            break task;
                        }
                    }
                    st = self
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| (task.0)()));
            let mut st = lock(&self.state);
            if outcome.is_err() {
                st.panicked = true;
            }
            st.running -= 1;
            if st.running == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// Maps `f` over `0..count` on `jobs` workers (the calling thread plus
/// `jobs − 1` pooled threads), returning results in index order.
///
/// `jobs <= 1` runs inline on the calling thread; any higher value
/// produces the *same* `Vec` (same values, same order), so sequential
/// and parallel paths share one code path and cannot drift apart.
pub fn par_map<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs == 1 || IN_POOL.with(|flag| flag.get()) {
        return (0..count).map(f).collect();
    }

    let pool = Pool::global();
    let _submit = lock(&pool.submit);
    pool.ensure_workers(jobs - 1);

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        let value = f(i);
        *lock(&slots[i]) = Some(value);
    };

    // Publish the job.  The reference is lifetime-erased; see `TaskRef`
    // for why this is sound.
    {
        let work_ref: &(dyn Fn() + Sync) = &work;
        let task = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work_ref)
        });
        let mut st = lock(&pool.state);
        st.generation += 1;
        st.task = Some(task);
        st.slots_open = jobs - 1;
        pool.work_cv.notify_all();
    }

    // Participate as one of the `jobs` workers.  IN_POOL makes nested
    // par_map calls from inside `f` run inline (re-entering the
    // single-job pool from here would deadlock on the submission lock).
    IN_POOL.with(|flag| flag.set(true));
    let own = catch_unwind(AssertUnwindSafe(&work));
    IN_POOL.with(|flag| flag.set(false));

    // Close submission and wait for every worker that claimed the task
    // to leave it; only then may the borrow of `work`/`slots` end.
    let worker_panicked = {
        let mut st = lock(&pool.state);
        st.task = None;
        st.slots_open = 0;
        while st.running > 0 {
            st = pool
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        std::mem::take(&mut st.panicked)
    };
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    assert!(!worker_panicked, "a par_map worker panicked");

    slots
        .into_iter()
        .map(|slot| {
            lock(&slot)
                .take()
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for jobs in [1, 2, 4, 9] {
            let out = par_map(jobs, 37, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_map_float_fold_is_bit_identical_across_jobs() {
        // The exact guarantee the experiments rely on: folding the
        // returned Vec in order gives bit-identical f64 sums.
        let fold = |jobs: usize| -> f64 {
            par_map(jobs, 100, |i| ((i as f64) * 0.37).sin())
                .into_iter()
                .fold(0.0, |acc, x| acc + x)
        };
        let seq = fold(1).to_bits();
        for jobs in [2, 3, 8] {
            assert_eq!(seq, fold(jobs).to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn repeated_calls_reuse_the_pool() {
        // Exercises worker re-claiming across generations: the pool is
        // spawned once and every later call must drain correctly.
        for round in 0..50u64 {
            let out = par_map(4, 16, |i| i as u64 + round);
            assert_eq!(out, (0..16).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_par_map_runs_inline_and_stays_ordered() {
        let out = par_map(4, 4, |i| par_map(4, 3, |j| i * 10 + j));
        let expect: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..3).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn shrinking_jobs_respects_the_limit() {
        // Grow the pool with a wide call, then check a narrow call still
        // admits at most jobs−1 pooled workers (slots_open budget).
        let _ = par_map(8, 32, |i| i);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = par_map(2, 24, |i| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            concurrent.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out, (0..24).collect::<Vec<_>>());
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "jobs=2 ran {} ways parallel",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn panicking_closure_propagates_and_pool_survives() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(3, 20, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool must still be usable afterwards.
        assert_eq!(par_map(3, 5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
