//! Substrate for the SPAA'93 reproduction: the "parallel machine" the
//! algorithm runs on.
//!
//! The paper assumes a distributed-memory processor network in which a
//! balancing operation costs constant time (arguing that wormhole routing
//! makes transfer distance negligible).  This crate supplies that machine
//! in three forms:
//!
//! * [`topology`] — interconnect graphs (complete, ring, 2-D torus,
//!   hypercube, de Bruijn, star, circulant) with hop-distance queries, so
//!   the communication the paper argues away can actually be *measured*;
//! * [`engine`] — a topology-aware balancer and synchronous simulation
//!   engine with hop-weighted communication accounting, including the
//!   "balance with topology neighbours only" mode the paper lists as
//!   future work (locality);
//! * [`desim`] — an asynchronous discrete-event simulator of the §5
//!   message protocol with latency, fault injection (`dlb-faults`) and a
//!   hardened timeout/retry state machine;
//! * [`runtime`] — a real threaded message-passing runtime: one OS thread
//!   per processor, work packets in per-worker queues, balancing by the
//!   paper's trigger rule, with injected crash/rejoin and queue
//!   redistribution, used by the branch-and-bound example;
//! * [`rng`] — deterministic per-entity ChaCha streams.

pub mod desim;
pub mod engine;
pub mod equeue;
pub mod rng;
pub mod runtime;
pub mod topology;

pub use desim::{AsyncConfig, AsyncNetwork, AsyncStats};
pub use engine::{CommStats, PartnerMode, TopoCluster};
pub use equeue::CalendarQueue;
pub use runtime::{RuntimeConfig, RuntimeStats, ThreadedRuntime};
pub use topology::Topology;
