//! A bucketed (calendar) event queue keyed on the delivery tick.
//!
//! The asynchronous simulator (`desim`) delivers almost every event a
//! small constant distance into the future (`now + latency`, plus
//! timeout echoes a few multiples further out).  A binary heap pays
//! `O(log n)` per operation and a cache miss per sift; this queue pays
//! `O(1)` per push and amortised `O(1)` per pop by hashing events into a
//! ring of per-tick FIFO buckets covering the window
//! `[cur, cur + capacity)`.  Events beyond the window (e.g. a fault
//! plan's crash schedule, pushed at construction time) wait in a small
//! overflow heap and migrate into the ring when the cursor reaches them.
//!
//! # Ordering contract
//!
//! [`CalendarQueue::pop_due`] yields events in `(time, push order)`
//! order — exactly the `(time, seq)` order of the heap implementation it
//! replaces, **provided pushes are globally FIFO-stamped**, which they
//! are here: the queue stamps every push with a monotone counter, and
//! per-tick buckets are FIFO, so two events on the same tick pop in push
//! order.  The property test below checks this against a plain
//! `BinaryHeap` model for arbitrary push/pop interleavings.

use std::collections::{BinaryHeap, VecDeque};

/// An overflow event waiting outside the bucket window; ordered by
/// `(time, stamp)` so the earliest-pushed event of the earliest tick
/// migrates first.
struct Far<T> {
    time: u64,
    stamp: u64,
    item: T,
}

impl<T> PartialEq for Far<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.stamp) == (other.time, other.stamp)
    }
}

impl<T> Eq for Far<T> {}

impl<T> PartialOrd for Far<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Far<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.stamp).cmp(&(other.time, other.stamp))
    }
}

/// A calendar queue over items of type `T`; see the module docs.
pub struct CalendarQueue<T> {
    /// Ring of per-tick FIFO buckets; `buckets[time & mask]` holds the
    /// events of tick `time` while `time` is inside the window.
    buckets: Vec<VecDeque<T>>,
    mask: u64,
    /// Lowest tick that may still hold an event.  Only ever advances.
    cur: u64,
    /// Events inside the bucket window.
    in_window: usize,
    /// Total events (window + overflow).
    len: usize,
    /// Events at ticks `>= cur + capacity`.
    overflow: BinaryHeap<std::cmp::Reverse<Far<T>>>,
    /// Monotone push stamp backing the FIFO-within-tick contract.
    stamp: u64,
}

impl<T> CalendarQueue<T> {
    /// A queue whose bucket ring covers `capacity` ticks (rounded up to
    /// a power of two).  Events further out than that still work — they
    /// wait in the overflow heap — so the capacity is a performance
    /// knob, not a limit.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        CalendarQueue {
            buckets: (0..cap).map(|_| VecDeque::new()).collect(),
            mask: cap as u64 - 1,
            cur: 0,
            in_window: 0,
            len: 0,
            overflow: BinaryHeap::new(),
            stamp: 0,
        }
    }

    /// A queue with the default window (1024 ticks — comfortably wider
    /// than the simulator's largest timeout echo at common latencies).
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `item` for delivery at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before an already-delivered tick (the
    /// simulator never schedules into the past).
    pub fn push(&mut self, time: u64, item: T) {
        assert!(time >= self.cur, "event scheduled into the past");
        self.stamp += 1;
        self.len += 1;
        if time - self.cur <= self.mask {
            self.buckets[(time & self.mask) as usize].push_back(item);
            self.in_window += 1;
        } else {
            self.overflow.push(std::cmp::Reverse(Far {
                time,
                stamp: self.stamp,
                item,
            }));
        }
    }

    /// Pops the earliest event if it is due at or before `t`; `None`
    /// when the queue is empty or the next event is later than `t`.
    /// Ties on the same tick pop in push order.
    pub fn pop_due(&mut self, t: u64) -> Option<(u64, T)> {
        loop {
            if self.len == 0 {
                return None;
            }
            if self.in_window == 0 {
                // Everything lives in the overflow: jump the cursor to
                // the earliest far tick and pull its window in.
                let next = self.overflow.peek().expect("len > 0").0.time;
                if next > t {
                    return None;
                }
                self.cur = next;
                self.migrate();
                continue;
            }
            // Scan the ring from the cursor; window events sit within
            // `capacity` ticks of it, so the scan is bounded and the
            // cursor advances monotonically (amortised O(1) per tick).
            loop {
                let idx = (self.cur & self.mask) as usize;
                if !self.buckets[idx].is_empty() {
                    if self.cur > t {
                        return None;
                    }
                    let item = self.buckets[idx].pop_front().expect("checked");
                    self.in_window -= 1;
                    self.len -= 1;
                    return Some((self.cur, item));
                }
                if self.cur >= t {
                    return None;
                }
                self.cur += 1;
                self.migrate();
            }
        }
    }

    /// Moves overflow events whose tick entered the window into their
    /// buckets.  Heap order is `(time, stamp)`, and every overflow event
    /// was pushed before any directly-bucketed event of the same tick
    /// (the tick was out of the window back then), so FIFO per tick is
    /// preserved.
    fn migrate(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if top.0.time - self.cur > self.mask {
                break;
            }
            let far = self.overflow.pop().expect("peeked").0;
            self.buckets[(far.time & self.mask) as usize].push_back(far.item);
            self.in_window += 1;
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;

    /// Drains both queues fully and compares the pop sequences.
    fn drain_matches(pushes: &[(u64, u32)]) {
        let mut cal = CalendarQueue::with_capacity(64);
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        for (stamp, &(time, id)) in pushes.iter().enumerate() {
            cal.push(time, id);
            heap.push(Reverse((time, stamp as u64, id)));
        }
        let mut got = Vec::new();
        while let Some((time, id)) = cal.pop_due(u64::MAX) {
            got.push((time, id));
        }
        let mut want = Vec::new();
        while let Some(Reverse((time, _, id))) = heap.pop() {
            want.push((time, id));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn fifo_within_a_tick() {
        drain_matches(&[(5, 1), (5, 2), (3, 3), (5, 4), (3, 5)]);
    }

    #[test]
    fn far_events_overflow_and_come_back() {
        // Window 64: events at 10_000 overflow, then migrate once the
        // cursor gets there.
        drain_matches(&[(10_000, 1), (1, 2), (10_000, 3), (70, 4), (9_999, 5)]);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = CalendarQueue::with_capacity(16);
        q.push(4, "a");
        q.push(9, "b");
        assert_eq!(q.pop_due(3), None);
        assert_eq!(q.pop_due(4), Some((4, "a")));
        assert_eq!(q.pop_due(8), None);
        assert_eq!(q.pop_due(100), Some((9, "b")));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn pushing_into_the_past_panics() {
        let mut q = CalendarQueue::with_capacity(16);
        q.push(10, ());
        q.pop_due(20);
        q.push(5, ());
    }

    proptest! {
        /// Interleaved pushes (relative to the advancing clock) and
        /// horizon-bounded pops match the binary-heap model event for
        /// event.
        #[test]
        fn matches_heap_under_interleaving(
            ops in prop::collection::vec(
                // (advance the clock by, delay of a pushed event, pop?)
                (0u64..20, 0u64..300, any::<bool>()), 1..200)
        ) {
            let mut cal = CalendarQueue::with_capacity(32);
            let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
            let mut now = 0u64;
            let mut stamp = 0u64;
            for (id, &(advance, delay, pop)) in ops.iter().enumerate() {
                now += advance;
                if pop {
                    let got = cal.pop_due(now);
                    let due = heap.peek().is_some_and(|Reverse((t, _, _))| *t <= now);
                    let want = if due {
                        heap.pop().map(|Reverse((t, _, id))| (t, id))
                    } else {
                        None
                    };
                    prop_assert_eq!(got, want);
                } else {
                    stamp += 1;
                    cal.push(now + delay, id);
                    heap.push(Reverse((now + delay, stamp, id)));
                }
            }
            // Drain the rest.
            while let Some(Reverse((t, _, id))) = heap.pop() {
                prop_assert_eq!(cal.pop_due(u64::MAX), Some((t, id)));
            }
            prop_assert!(cal.is_empty());
        }
    }
}
