//! Deterministic per-entity random streams.
//!
//! Every processor/worker gets its own ChaCha8 stream derived from a
//! master seed and its identity, so simulations are reproducible
//! regardless of thread interleaving or iteration order.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Derives an independent stream for entity `id` from a master `seed`
/// (SplitMix64 finalisation keeps nearby ids uncorrelated).
pub fn stream(seed: u64, id: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(mix(seed, id))
}

fn mix(seed: u64, id: u64) -> u64 {
    // SplitMix64 step on seed + id·φ (the added constant keeps the
    // all-zero input away from the zero fixed point).
    let mut z = seed
        .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream(1, 2);
        let mut b = stream(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_differ_across_ids_and_seeds() {
        let mut base = stream(1, 0);
        let mut other_id = stream(1, 1);
        let mut other_seed = stream(2, 0);
        let x = base.next_u64();
        assert_ne!(x, other_id.next_u64());
        assert_ne!(x, other_seed.next_u64());
    }

    #[test]
    fn mix_avalanche() {
        // Adjacent ids map far apart.
        assert_ne!(mix(0, 0), mix(0, 1));
        assert!(mix(0, 0).count_ones() > 8);
    }
}
