//! Asynchronous discrete-event simulation of the balancer as a real
//! message protocol.
//!
//! §2 assumes a balancing operation completes atomically in constant
//! time.  On a real machine it is a message exchange: the initiator
//! locks itself, asks `δ` partners for their load, partners grant or
//! refuse (they may be engaged in another operation), the initiator
//! computes the even shares and orders transfers, packets travel with
//! latency, and everyone unlocks.  This module implements that protocol
//! over an event queue with a configurable per-message `latency`, so the
//! experiments can measure how the balance quality degrades as the
//! network gets slower relative to the load dynamics — the gap between
//! the paper's model and a real machine.
//!
//! Protocol (per balancing attempt):
//!
//! 1. trigger → initiator locks itself, sends `LoadRequest` to `δ`
//!    random partners;
//! 2. each partner replies `LoadReply { granted, load }`; it grants iff
//!    it is not itself locked (and locks itself for the op);
//! 3. when all replies are in, the initiator computes ±1 shares over
//!    itself and the granting partners and sends each a
//!    `TransferOrder { new_share }`; partners in surplus ship the excess
//!    (`Transfer`) to the initiator, deficit partners are topped up by
//!    the initiator from the collected pool, then unlocked;
//! 4. if every partner refused, the attempt counts as *aborted*.
//!
//! # Fault model
//!
//! The protocol is hardened against a seeded [`FaultInjector`]
//! (see `dlb-faults`) that may drop or duplicate control messages, drop
//! load-carrying transfers, add latency jitter, cut links along
//! scheduled partitions, and crash processors (losing or freezing their
//! load) with optional recovery.  Recovery machinery:
//!
//! * **Reply timeout + bounded retries** — an initiator that has not
//!   heard all replies after `4·latency` re-requests the silent
//!   partners, with exponential backoff, up to [`MAX_RETRIES`] times;
//!   after that the missing replies are written off as refusals, so a
//!   lost reply never leaks the initiator's lock (abort-and-unlock).
//! * **Settle timeout** — missing surplus shipments (their
//!   `TransferOrder` was lost, or the member died) are written off.
//! * **Lock lease** — a partner that granted an operation but never
//!   heard back unlocks itself after `8·latency`.
//! * **Duplicate suppression** — replies are counted at most once per
//!   partner and a `TransferOrder` is honoured only while the member is
//!   still locked for that exact operation, so duplicated or stale
//!   control messages cannot double-ship packets or steal a lock.
//!
//! Packets in flight belong to no processor, packets pooled by an
//! initiator mid-operation belong to the operation, and faults may
//! destroy packets (dropped transfers, crashes in [`CrashMode::Lost`]);
//! every destroyed packet is moved to an explicit `lost` ledger.
//! Conservation therefore reads
//! `Σ loads + pooled + in_flight + lost = generated − consumed`, and it
//! holds between any two events, not just at quiescence (tested, and
//! property-tested against arbitrary fault plans).

use crate::equeue::CalendarQueue;
use crate::rng::stream;
use dlb_core::{Metrics, Params};
use dlb_faults::{CrashMode, FaultInjector, FaultPlan, MessageClass, MessageFate};
use rand::prelude::*;
use rand::seq::index::sample;
use rand_chacha::ChaCha8Rng;

/// How often an initiator re-requests silent partners before writing
/// them off as refusals.
pub const MAX_RETRIES: u32 = 2;

/// Configuration of the asynchronous network.
#[derive(Debug, Clone, Copy)]
pub struct AsyncConfig {
    /// Algorithm parameters (n, δ, f; the borrow machinery is not used —
    /// this simulates the practical variant).
    pub params: Params,
    /// Message latency in time units (a generate/consume tick is 1).
    pub latency: u64,
    /// Master seed.
    pub seed: u64,
    /// Probability that a *control* message (request/reply/order) is
    /// lost.  Transfers are never dropped by this knob (use a
    /// [`FaultPlan`] with `transfer_loss` for that); lost control
    /// messages are recovered by the initiator timeout.
    pub control_loss: f64,
}

impl AsyncConfig {
    /// A reliable network (no control-message loss).
    pub fn reliable(params: Params, latency: u64, seed: u64) -> Self {
        AsyncConfig {
            params,
            latency,
            seed,
            control_loss: 0.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Payload {
    /// Initiator asks a partner to join a balancing operation.
    LoadRequest { op: u64 },
    /// Partner's answer (its load is meaningful only when granted).
    LoadReply { op: u64, granted: bool, load: u64 },
    /// Initiator tells a member its target share.
    TransferOrder { op: u64, new_share: u64 },
    /// `amount` packets moving between processors.
    Transfer {
        op: u64,
        amount: u64,
        final_for_sender: bool,
    },
    /// Initiator-side timeout: silent partners are re-requested (bounded
    /// retries with backoff) and finally written off as refusals.
    ReplyTimeout { op: u64 },
    /// Initiator-side timeout for the transfer phase: missing surplus
    /// shipments are written off (their `TransferOrder` was lost; the
    /// member never moved any packets).
    SettleTimeout { op: u64 },
    /// Partner-side lock lease: a partner that granted an operation but
    /// never heard back unlocks itself.
    LeaseExpiry { op: u64 },
    /// Fault schedule: the processor goes down.
    Crash,
    /// Fault schedule: the processor rejoins.
    Recover,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    to: usize,
    from: usize,
    payload: Payload,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct OpState {
    /// Operation id (guards against stale messages).
    id: u64,
    /// All partners the operation requested.
    partners: Vec<usize>,
    /// Partners whose reply has been counted (duplicate suppression).
    replied: Vec<usize>,
    /// Members that granted (initiator excluded).
    granted: Vec<(usize, u64)>,
    /// Replies still outstanding.
    awaiting_replies: usize,
    /// Surplus transfers the initiator still waits for.
    awaiting_transfers: usize,
    /// Pool collected from surplus members (plus own surplus).
    pool: u64,
    /// Deficit members to top up once the pool is complete.
    deficits: Vec<(usize, u64)>,
    /// The initiator's own target share.
    own_share: u64,
    /// Reply-phase retransmissions performed so far.
    attempt: u32,
}

#[derive(Debug, Clone, Default)]
struct ProcState {
    load: u64,
    l_old: u64,
    /// Locked while participating in some operation.
    locked: bool,
    /// Which operation holds the lock when locked as a *partner*.
    locked_for: Option<u64>,
    /// Active operation if this processor is an initiator.
    op: Option<OpState>,
    /// Crashed (fault injection): takes no actions, handles no messages.
    down: bool,
}

/// Statistics of an asynchronous run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Completed balancing operations.
    pub completed_ops: u64,
    /// Attempts aborted because every partner refused.
    pub aborted_ops: u64,
    /// Messages sent.
    pub messages: u64,
    /// Packets that travelled in `Transfer` messages.
    pub packets_moved: u64,
    /// Messages dropped by failure injection (loss, partitions, dead
    /// destinations).
    pub lost_messages: u64,
    /// Operations salvaged by a timeout (reply write-off, settle
    /// write-off, lease expiry).
    pub timeout_recoveries: u64,
    /// Reply-phase retransmissions to silent partners.
    pub retries: u64,
    /// Control messages delivered twice by fault injection.
    pub duplicated_messages: u64,
    /// Processor crashes applied.
    pub crashes: u64,
    /// Processor recoveries applied.
    pub recoveries: u64,
}

impl std::ops::AddAssign for AsyncStats {
    fn add_assign(&mut self, other: AsyncStats) {
        self.completed_ops += other.completed_ops;
        self.aborted_ops += other.aborted_ops;
        self.messages += other.messages;
        self.packets_moved += other.packets_moved;
        self.lost_messages += other.lost_messages;
        self.timeout_recoveries += other.timeout_recoveries;
        self.retries += other.retries;
        self.duplicated_messages += other.duplicated_messages;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
    }
}

/// The asynchronous network simulator (practical variant, message-level).
pub struct AsyncNetwork {
    config: AsyncConfig,
    procs: Vec<ProcState>,
    /// Delivery queue: a calendar queue keyed on the delivery tick.
    /// `seq` is strictly monotone across every push site, so the queue's
    /// FIFO-within-tick order equals the old heap's `(time, seq)` order.
    queue: CalendarQueue<Event>,
    now: u64,
    seq: u64,
    in_flight: u64,
    /// Packets destroyed by faults (dropped transfers, crashed load).
    lost: u64,
    next_op: u64,
    rng: ChaCha8Rng,
    injector: Option<FaultInjector>,
    metrics: Metrics,
    stats: AsyncStats,
    sink: Option<dlb_trace::SharedSink>,
}

impl AsyncNetwork {
    /// An empty asynchronous network with no fault injection.
    pub fn new(config: AsyncConfig) -> Self {
        AsyncNetwork {
            config,
            procs: vec![ProcState::default(); config.params.n()],
            queue: CalendarQueue::new(),
            now: 0,
            seq: 0,
            in_flight: 0,
            lost: 0,
            next_op: 0,
            rng: stream(config.seed, u64::MAX),
            injector: None,
            metrics: Metrics::new(),
            stats: AsyncStats::default(),
            sink: None,
        }
    }

    /// Attaches a trace sink; events are stamped with simulated time.
    /// The fault injector (if any) gets a handle too, so message-level
    /// faults appear in the same trace.
    pub fn set_trace_sink(&mut self, sink: dlb_trace::SharedSink) {
        if let Some(inj) = self.injector.as_mut() {
            inj.set_trace_sink(sink.clone());
        }
        self.sink = Some(sink);
    }

    fn trace_on(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.enabled())
    }

    fn emit(&self, event: dlb_trace::TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// Emits the metrics counters accrued since `before` as a
    /// `StepDelta` stamped `step`.
    fn emit_step_delta(&self, before: &Metrics, step: u64) {
        let delta = self.metrics.delta_from(before);
        let counters: Vec<(String, u64)> = delta
            .nonzero_fields()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        if !counters.is_empty() {
            self.emit(dlb_trace::TraceEvent::StepDelta { step, counters });
        }
    }

    /// An asynchronous network executing a [`FaultPlan`].
    ///
    /// Crash and recovery times from the plan are scheduled as events in
    /// the simulation's own queue, so they interleave deterministically
    /// with message deliveries.
    pub fn with_faults(config: AsyncConfig, plan: FaultPlan) -> Result<Self, String> {
        let injector = FaultInjector::new(plan, config.params.n())?;
        let mut net = AsyncNetwork::new(config);
        for c in injector.crashes() {
            net.seq += 1;
            net.queue.push(
                c.at,
                Event {
                    time: c.at,
                    seq: net.seq,
                    to: c.proc,
                    from: c.proc,
                    payload: Payload::Crash,
                },
            );
            if let Some(r) = c.recover_at {
                net.seq += 1;
                net.queue.push(
                    r,
                    Event {
                        time: r,
                        seq: net.seq,
                        to: c.proc,
                        from: c.proc,
                        payload: Payload::Recover,
                    },
                );
            }
        }
        net.injector = Some(injector);
        Ok(net)
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current loads (packets in flight excluded).
    pub fn loads(&self) -> Vec<u64> {
        self.procs.iter().map(|p| p.load).collect()
    }

    /// Packets currently inside `Transfer` messages.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Packets currently pooled by initiators mid-operation.
    pub fn pooled(&self) -> u64 {
        self.procs
            .iter()
            .filter_map(|p| p.op.as_ref())
            .map(|st| st.pool)
            .sum()
    }

    /// Packets destroyed by fault injection (dropped transfers, crashed
    /// load in [`CrashMode::Lost`]).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Activity counters (generate/consume/migration bookkeeping).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &AsyncStats {
        &self.stats
    }

    /// Fault-injection statistics, if a plan is active.
    pub fn fault_stats(&self) -> Option<dlb_faults::FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// Number of processors currently locked (diagnostics/liveness tests).
    pub fn locked_count(&self) -> usize {
        self.procs.iter().filter(|p| p.locked).count()
    }

    /// Number of processors currently down.
    pub fn down_count(&self) -> usize {
        self.procs.iter().filter(|p| p.down).count()
    }

    /// Conservation check:
    /// `loads + pooled + in-flight + lost = generated − consumed`.
    /// Holds between any two events, not just at quiescence.
    pub fn check_conservation(&self) -> Result<(), String> {
        let total: u64 = self.procs.iter().map(|p| p.load).sum();
        let pooled = self.pooled();
        let expect = self.metrics.generated - self.metrics.consumed;
        if total + pooled + self.in_flight + self.lost != expect {
            return Err(format!(
                "loads {total} + pooled {pooled} + in flight {} + lost {} \
                 != generated - consumed = {expect}",
                self.in_flight, self.lost
            ));
        }
        Ok(())
    }

    /// Advances time to `t`, delivering all messages due on the way, then
    /// applies one generate (`+1`) / consume (`−1`) / idle (`0`) tick to
    /// every processor.  Crashed processors take no actions.
    pub fn tick(&mut self, t: u64, actions: &[i8]) {
        assert!(t >= self.now, "time must not run backwards");
        assert_eq!(actions.len(), self.procs.len(), "one action per processor");
        let tracing = self.trace_on();
        let before = if tracing {
            self.metrics
        } else {
            Metrics::new()
        };
        self.drain_until(t);
        self.now = t;
        for (i, &a) in actions.iter().enumerate() {
            if self.procs[i].down {
                continue;
            }
            match a {
                1 => {
                    self.procs[i].load += 1;
                    self.metrics.generated += 1;
                    self.maybe_trigger(i);
                }
                -1 => {
                    if self.procs[i].load > 0 {
                        self.procs[i].load -= 1;
                        self.metrics.consumed += 1;
                        self.maybe_trigger(i);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                0 => {}
                other => panic!("invalid action {other}; use -1, 0, 1"),
            }
        }
        if tracing {
            self.emit_step_delta(&before, t);
        }
    }

    /// Delivers every outstanding message (call at the end of a run).
    pub fn quiesce(&mut self) {
        let tracing = self.trace_on();
        let before = if tracing {
            self.metrics
        } else {
            Metrics::new()
        };
        self.drain_until(u64::MAX);
        if tracing {
            // Settle-phase activity after the last tick still counts.
            self.emit_step_delta(&before, self.now);
        }
    }

    /// Whether any recovery machinery (timeouts, leases) is needed.
    fn faulty(&self) -> bool {
        self.config.control_loss > 0.0 || self.injector.is_some()
    }

    fn drain_until(&mut self, t: u64) {
        while let Some((time, ev)) = self.queue.pop_due(t) {
            self.now = time;
            self.handle(ev);
        }
    }

    fn send(&mut self, from: usize, to: usize, payload: Payload) {
        self.seq += 1;
        self.stats.messages += 1;
        self.metrics.messages += 1;
        let is_transfer = matches!(payload, Payload::Transfer { .. });
        // Legacy control-plane loss knob (kept for the latency studies):
        // control messages may be lost; transfers always survive it.
        if !is_transfer
            && self.config.control_loss > 0.0
            && self.rng.gen_bool(self.config.control_loss)
        {
            self.stats.lost_messages += 1;
            return;
        }
        // Fault plan: loss, duplication, jitter, partitions.
        let mut extra_delay = 0;
        let mut duplicate = false;
        if let Some(inj) = self.injector.as_mut() {
            let class = if is_transfer {
                MessageClass::Transfer
            } else {
                MessageClass::Control
            };
            match inj.on_send(self.now, from, to, class) {
                MessageFate::Drop => {
                    self.stats.lost_messages += 1;
                    if let Payload::Transfer { amount, .. } = payload {
                        // The packets die in transit: move them from the
                        // in-flight ledger to the lost ledger.
                        self.in_flight -= amount.min(self.in_flight);
                        self.lost += amount;
                    }
                    return;
                }
                MessageFate::Deliver {
                    extra_delay: d,
                    duplicate: dup,
                } => {
                    extra_delay = d;
                    duplicate = dup;
                }
            }
        }
        let time = self.now + self.config.latency + extra_delay;
        self.queue.push(
            time,
            Event {
                time,
                seq: self.seq,
                to,
                from,
                payload,
            },
        );
        if duplicate {
            self.seq += 1;
            self.stats.duplicated_messages += 1;
            self.queue.push(
                time + 1,
                Event {
                    time: time + 1,
                    seq: self.seq,
                    to,
                    from,
                    payload,
                },
            );
        }
    }

    fn schedule_self(&mut self, to: usize, delay: u64, payload: Payload) {
        self.seq += 1;
        let ev = Event {
            time: self.now + delay,
            seq: self.seq,
            to,
            from: to,
            payload,
        };
        self.queue.push(ev.time, ev);
    }

    fn reply_timeout_delay(&self, attempt: u32) -> u64 {
        // 4 one-way latencies, doubling per retransmission.
        (4 * self.config.latency.max(1)) << attempt
    }

    fn maybe_trigger(&mut self, i: usize) {
        let p = &self.procs[i];
        if p.locked || p.down {
            return;
        }
        let params = &self.config.params;
        if !(params.grow_triggered(p.load, p.l_old) || params.shrink_triggered(p.load, p.l_old)) {
            return;
        }
        // Start an operation: lock, pick δ partners, request loads.
        let n = params.n();
        let delta = params.delta();
        let partners: Vec<usize> = sample(&mut self.rng, n - 1, delta)
            .iter()
            .map(|x| if x >= i { x + 1 } else { x })
            .collect();
        if self.trace_on() {
            let p = &self.procs[i];
            self.emit(dlb_trace::TraceEvent::BalanceInitiated {
                step: self.now,
                initiator: i as u64,
                partners: partners.iter().map(|&x| x as u64).collect(),
                trigger: p.load as f64 / p.l_old.max(1) as f64,
            });
        }
        let op = self.next_op;
        self.next_op += 1;
        self.procs[i].locked = true;
        self.procs[i].op = Some(OpState {
            id: op,
            partners: partners.clone(),
            replied: Vec::new(),
            granted: Vec::new(),
            awaiting_replies: partners.len(),
            awaiting_transfers: 0,
            pool: 0,
            deficits: Vec::new(),
            own_share: 0,
            attempt: 0,
        });
        for partner in partners {
            self.send(i, partner, Payload::LoadRequest { op });
        }
        if self.faulty() {
            // Recovery timeout for the reply phase.
            self.schedule_self(i, self.reply_timeout_delay(0), Payload::ReplyTimeout { op });
        }
    }

    fn crash_mode(&self) -> CrashMode {
        self.injector
            .as_ref()
            .map_or(CrashMode::Lost, |i| i.crash_mode())
    }

    fn handle(&mut self, ev: Event) {
        match ev.payload {
            Payload::Crash => {
                self.stats.crashes += 1;
                if self.trace_on() {
                    self.emit(dlb_trace::TraceEvent::FaultInjected {
                        step: self.now,
                        proc: ev.to as u64,
                        kind: "crash".to_string(),
                    });
                }
                let mode = self.crash_mode();
                let me = &mut self.procs[ev.to];
                me.down = true;
                // An interrupted own operation: the pooled packets fall
                // back onto the processor before the crash mode applies.
                if let Some(st) = me.op.take() {
                    me.load += st.pool;
                }
                me.locked = false;
                me.locked_for = None;
                if mode == CrashMode::Lost {
                    self.lost += me.load;
                    me.load = 0;
                }
                // Partners this processor had locked recover via their
                // lock lease; initiators waiting on it recover via their
                // reply/settle timeouts.
            }
            Payload::Recover => {
                self.stats.recoveries += 1;
                if self.trace_on() {
                    self.emit(dlb_trace::TraceEvent::CrashRecovered {
                        step: self.now,
                        proc: ev.to as u64,
                    });
                }
                let me = &mut self.procs[ev.to];
                me.down = false;
                me.locked = false;
                me.locked_for = None;
                me.op = None;
                me.l_old = me.load;
            }
            Payload::LoadRequest { op } => {
                if self.procs[ev.to].down {
                    return; // dead processors answer nothing
                }
                let me = &mut self.procs[ev.to];
                // A retransmission for an op we already granted is
                // re-acknowledged without re-locking; anything else is
                // granted iff we are free.
                let already = me.locked_for == Some(op);
                let granted = already || !me.locked;
                if granted && !already {
                    me.locked = true;
                    me.locked_for = Some(op);
                }
                let load = self.procs[ev.to].load;
                self.send(ev.to, ev.from, Payload::LoadReply { op, granted, load });
                if granted && !already && self.faulty() {
                    // Lease: self-unlock if the operation dies upstream.
                    self.schedule_self(
                        ev.to,
                        8 * self.config.latency.max(1),
                        Payload::LeaseExpiry { op },
                    );
                }
            }
            Payload::SettleTimeout { op } => {
                let initiator = ev.to;
                let waiting = self.procs[initiator]
                    .op
                    .as_ref()
                    .is_some_and(|st| st.id == op && st.awaiting_transfers > 0);
                if waiting {
                    // Lost TransferOrders: the members never shipped, so
                    // nothing is in flight from them — just write them off.
                    self.stats.timeout_recoveries += 1;
                    if let Some(st) = self.procs[initiator].op.as_mut() {
                        st.awaiting_transfers = 0;
                    }
                    self.try_settle(initiator, op);
                }
            }
            Payload::LeaseExpiry { op } => {
                let me = &mut self.procs[ev.to];
                if me.locked && me.locked_for == Some(op) {
                    me.locked = false;
                    me.locked_for = None;
                    me.l_old = me.load;
                    self.stats.timeout_recoveries += 1;
                }
            }
            Payload::ReplyTimeout { op } => {
                let initiator = ev.to;
                let still_waiting = self.procs[initiator]
                    .op
                    .as_ref()
                    .is_some_and(|st| st.id == op && st.awaiting_replies > 0);
                if !still_waiting {
                    return;
                }
                let attempt = self.procs[initiator].op.as_ref().expect("checked").attempt;
                if attempt < MAX_RETRIES {
                    // Bounded retry: re-request every silent partner and
                    // arm the next timeout with exponential backoff.
                    self.stats.retries += 1;
                    let st = self.procs[initiator].op.as_mut().expect("checked");
                    st.attempt = attempt + 1;
                    let silent: Vec<usize> = st
                        .partners
                        .iter()
                        .copied()
                        .filter(|p| !st.replied.contains(p))
                        .collect();
                    for partner in silent {
                        self.send(initiator, partner, Payload::LoadRequest { op });
                    }
                    let delay = self.reply_timeout_delay(attempt + 1);
                    self.schedule_self(initiator, delay, Payload::ReplyTimeout { op });
                    return;
                }
                // Retries exhausted: write off the missing replies as
                // refusals and move on (abort-and-unlock — the lock never
                // outlives the bounded retry window).
                self.stats.timeout_recoveries += 1;
                let st = self.procs[initiator].op.as_mut().expect("checked");
                st.awaiting_replies = 1; // the synthetic final reply below
                self.handle(Event {
                    time: ev.time,
                    seq: ev.seq,
                    to: initiator,
                    from: initiator,
                    payload: Payload::LoadReply {
                        op,
                        granted: false,
                        load: 0,
                    },
                });
            }
            Payload::LoadReply { op, granted, load } => {
                let initiator = ev.to;
                if self.procs[initiator].down {
                    return;
                }
                let stale = self.procs[initiator]
                    .op
                    .as_ref()
                    .is_none_or(|st| st.id != op);
                if stale {
                    return; // reply for a finished (timed-out) operation
                }
                let Some(mut st) = self.procs[initiator].op.take() else {
                    return;
                };
                // Duplicate suppression: count one reply per partner
                // (injected duplicates and retry-induced re-replies).
                if ev.from != initiator {
                    if st.replied.contains(&ev.from) {
                        self.procs[initiator].op = Some(st);
                        return;
                    }
                    st.replied.push(ev.from);
                }
                st.awaiting_replies -= 1;
                if granted {
                    st.granted.push((ev.from, load));
                }
                if st.awaiting_replies > 0 {
                    self.procs[initiator].op = Some(st);
                    return;
                }
                if st.granted.is_empty() {
                    // Everyone refused: abort with randomised backoff —
                    // without it, processors with identical load histories
                    // retrigger in lockstep and livelock forever (the
                    // thundering-herd failure mode the atomic model hides).
                    self.stats.aborted_ops += 1;
                    self.finish_op(initiator);
                    let jitter = self
                        .rng
                        .gen_range(0..=self.config.params.delta() as u64 + 1);
                    self.procs[initiator].l_old += jitter;
                    return;
                }
                // Compute ±1 shares over the initiator + granting members
                // from the *reported* loads.  Every member answers with
                // exactly one Transfer (possibly of 0 packets), so the
                // initiator simply counts them down.
                let own = self.procs[initiator].load;
                let total: u64 = own + st.granted.iter().map(|&(_, l)| l).sum::<u64>();
                let m = st.granted.len() + 1;
                let shares = dlb_core::balance::even_shares(total, m);
                st.own_share = shares[0];
                st.awaiting_transfers = st.granted.len();
                for (&(member, reported), &share) in st.granted.iter().zip(shares[1..].iter()) {
                    self.send(
                        initiator,
                        member,
                        Payload::TransferOrder {
                            op,
                            new_share: share,
                        },
                    );
                    if share > reported {
                        st.deficits.push((member, share - reported));
                    }
                }
                // The initiator's own surplus goes straight into the pool.
                if own > st.own_share {
                    let excess = own - st.own_share;
                    self.procs[initiator].load -= excess;
                    st.pool += excess;
                }
                self.procs[initiator].op = Some(st);
                if self.faulty() {
                    self.schedule_self(
                        initiator,
                        4 * self.config.latency.max(1),
                        Payload::SettleTimeout { op },
                    );
                }
                self.try_settle(initiator, op);
            }
            Payload::TransferOrder { op, new_share } => {
                if self.procs[ev.to].down {
                    return; // the initiator's settle timeout writes us off
                }
                // A member ships its surplus (clamped to what it actually
                // has — its load may have changed since it reported) and
                // unlocks; a possible top-up arrives later and is accepted
                // whether or not the member is locked.  The order is
                // honoured only while the member is still locked for this
                // exact operation: a duplicated or stale order (after a
                // lease expiry, or for an op the member re-granted) must
                // neither ship packets twice nor steal the lock.
                let me = &mut self.procs[ev.to];
                if me.locked_for != Some(op) {
                    return;
                }
                let excess = me.load.saturating_sub(new_share);
                me.load -= excess;
                me.locked = false;
                me.locked_for = None;
                me.l_old = me.load;
                if excess > 0 {
                    self.in_flight += excess;
                    self.stats.packets_moved += excess;
                    self.metrics.packets_migrated += excess;
                    if self.trace_on() {
                        self.emit(dlb_trace::TraceEvent::PacketsMigrated {
                            step: self.now,
                            initiator: ev.to as u64,
                            count: excess,
                        });
                    }
                }
                self.send(
                    ev.to,
                    ev.from,
                    Payload::Transfer {
                        op,
                        amount: excess,
                        final_for_sender: true,
                    },
                );
            }
            Payload::Transfer {
                op,
                amount,
                final_for_sender,
            } => {
                self.in_flight -= amount.min(self.in_flight);
                if self.procs[ev.to].down {
                    // Packets arriving at a dead processor follow the
                    // crash mode: destroyed, or frozen onto its queue.
                    match self.crash_mode() {
                        CrashMode::Lost => self.lost += amount,
                        CrashMode::Frozen => self.procs[ev.to].load += amount,
                    }
                    return;
                }
                let collecting =
                    final_for_sender && self.procs[ev.to].op.as_ref().is_some_and(|st| st.id == op);
                if collecting {
                    // The initiator pools the surplus until redistribution.
                    let st = self.procs[ev.to].op.as_mut().expect("checked above");
                    st.pool += amount;
                    st.awaiting_transfers = st.awaiting_transfers.saturating_sub(1);
                    self.try_settle(ev.to, op);
                } else {
                    // Plain delivery (deficit top-up, or a stale transfer
                    // for a finished op): the packets just arrive.
                    let me = &mut self.procs[ev.to];
                    me.load += amount;
                    if !me.locked {
                        me.l_old = me.load;
                    }
                }
            }
        }
    }

    /// If all surplus transfers arrived, redistribute the pool to the
    /// deficit members and finish.
    fn try_settle(&mut self, initiator: usize, op: u64) {
        let Some(st) = self.procs[initiator].op.as_ref() else {
            return;
        };
        if st.awaiting_replies > 0 || st.awaiting_transfers > 0 {
            return;
        }
        let st = self.procs[initiator].op.take().expect("checked above");
        let mut pool = st.pool;
        for &(member, need) in &st.deficits {
            let give = need.min(pool);
            pool -= give;
            if give > 0 {
                self.in_flight += give;
                self.stats.packets_moved += give;
                self.metrics.packets_migrated += give;
                if self.trace_on() {
                    self.emit(dlb_trace::TraceEvent::PacketsMigrated {
                        step: self.now,
                        initiator: initiator as u64,
                        count: give,
                    });
                }
                self.send(
                    initiator,
                    member,
                    Payload::Transfer {
                        op,
                        amount: give,
                        final_for_sender: false,
                    },
                );
            }
        }
        // Anything left over (rounding, stale loads) stays local.
        self.procs[initiator].load += pool;
        self.stats.completed_ops += 1;
        self.metrics.balance_ops += 1;
        self.finish_op(initiator);
    }

    fn finish_op(&mut self, initiator: usize) {
        let me = &mut self.procs[initiator];
        me.op = None;
        me.locked = false;
        me.locked_for = None;
        me.l_old = me.load;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::imbalance_stats;
    use dlb_faults::CrashEvent;

    fn config(n: usize, latency: u64) -> AsyncConfig {
        AsyncConfig::reliable(Params::new(n, 2, 1.3, 4).unwrap(), latency, 7)
    }

    fn run_one_producer(n: usize, latency: u64, steps: u64) -> AsyncNetwork {
        let mut net = AsyncNetwork::new(config(n, latency));
        let mut actions = vec![0i8; n];
        actions[0] = 1;
        for t in 0..steps {
            net.tick(t, &actions);
        }
        net.quiesce();
        net
    }

    fn run_with_plan(n: usize, latency: u64, steps: u64, plan: FaultPlan) -> AsyncNetwork {
        let mut net = AsyncNetwork::with_faults(config(n, latency), plan).unwrap();
        let mut actions = vec![1i8; n];
        for t in 0..steps {
            net.tick(t, &actions);
            net.check_conservation().unwrap();
        }
        actions.fill(-1);
        for t in steps..2 * steps {
            net.tick(t, &actions);
            net.check_conservation().unwrap();
        }
        net.quiesce();
        net
    }

    #[test]
    fn conservation_with_latency() {
        for latency in [1u64, 4, 16] {
            let net = run_one_producer(8, latency, 2_000);
            net.check_conservation().unwrap();
            assert_eq!(net.in_flight(), 0, "quiesced network has nothing in flight");
            assert_eq!(net.loads().iter().sum::<u64>(), 2_000);
        }
    }

    #[test]
    fn low_latency_balances_producer() {
        let net = run_one_producer(8, 1, 4_000);
        let stats = imbalance_stats(&net.loads());
        assert!(stats.max_over_mean < 2.0, "{stats:?}");
        assert!(net.stats().completed_ops > 0);
    }

    #[test]
    fn higher_latency_degrades_quality() {
        // Compare the *time-averaged* imbalance during the run: a slow
        // network reacts later, so the producer's excess persists longer.
        // (The final snapshot after quiescing converges to the fix point
        // for any latency and is too noisy to compare.)
        let avg_ratio = |latency: u64| {
            let mut net = AsyncNetwork::new(config(16, latency));
            let mut actions = vec![0i8; 16];
            actions[0] = 1;
            let steps = 4_000u64;
            let mut acc = 0.0;
            for t in 0..steps {
                net.tick(t, &actions);
                acc += imbalance_stats(&net.loads()).max_over_mean;
            }
            acc / steps as f64
        };
        let fast = avg_ratio(1);
        let slow = avg_ratio(64);
        assert!(
            slow > fast,
            "latency 64 avg ratio {slow} vs latency 1 avg ratio {fast}"
        );
    }

    #[test]
    fn conflicts_cause_aborts_but_no_losses() {
        // Every processor generates every tick: triggers collide and many
        // partners are locked, so some attempts abort.
        let n = 8;
        let mut net = AsyncNetwork::new(config(n, 4));
        let actions = vec![1i8; n];
        for t in 0..3_000 {
            net.tick(t, &actions);
        }
        net.quiesce();
        net.check_conservation().unwrap();
        assert!(
            net.stats().aborted_ops > 0,
            "contended run should abort some ops"
        );
        assert!(net.stats().completed_ops > 0);
    }

    #[test]
    fn consume_drains_without_negative_loads() {
        let n = 6;
        let mut net = AsyncNetwork::new(config(n, 2));
        let mut actions = vec![1i8; n];
        for t in 0..500 {
            net.tick(t, &actions);
        }
        actions.fill(-1);
        for t in 500..2_500 {
            net.tick(t, &actions);
        }
        net.quiesce();
        net.check_conservation().unwrap();
    }

    #[test]
    fn lossy_control_plane_recovers_and_conserves() {
        // 20% of control messages vanish: timeouts must keep the protocol
        // live and packet conservation exact.
        let mut cfg = config(8, 4);
        cfg.control_loss = 0.2;
        let mut net = AsyncNetwork::new(cfg);
        let mut actions = vec![0i8; 8];
        actions[0] = 1;
        actions[1] = 1;
        for t in 0..4_000 {
            net.tick(t, &actions);
        }
        net.quiesce();
        net.check_conservation().unwrap();
        assert_eq!(net.loads().iter().sum::<u64>(), 8_000);
        let s = net.stats();
        assert!(s.lost_messages > 0, "injection active");
        assert!(s.timeout_recoveries > 0, "timeouts fired: {s:?}");
        assert!(s.completed_ops > 0, "work still balanced: {s:?}");
        // Liveness: every lock was eventually released.
        assert_eq!(net.locked_count(), 0, "no processor stuck locked");
    }

    #[test]
    fn heavy_loss_keeps_liveness() {
        let mut cfg = config(16, 8);
        cfg.control_loss = 0.5;
        let mut net = AsyncNetwork::new(cfg);
        let mut actions = vec![1i8; 16];
        for t in 0..2_000 {
            net.tick(t, &actions);
        }
        actions.fill(-1);
        for t in 2_000..4_000 {
            net.tick(t, &actions);
        }
        net.quiesce();
        net.check_conservation().unwrap();
        assert_eq!(net.locked_count(), 0, "all locks released despite 50% loss");
    }

    #[test]
    fn lossless_config_never_times_out() {
        let net = run_one_producer(8, 2, 1_000);
        assert_eq!(net.stats().lost_messages, 0);
        assert_eq!(net.stats().timeout_recoveries, 0);
        assert_eq!(net.stats().retries, 0);
    }

    #[test]
    fn benign_fault_plan_matches_plain_network() {
        // A present-but-empty plan must not change the simulated physics:
        // same loads as the injector-free network.
        let plain = run_one_producer(8, 2, 2_000);
        let mut net = AsyncNetwork::with_faults(config(8, 2), FaultPlan::reliable()).unwrap();
        let mut actions = vec![0i8; 8];
        actions[0] = 1;
        for t in 0..2_000 {
            net.tick(t, &actions);
        }
        net.quiesce();
        assert_eq!(net.loads(), plain.loads());
        assert_eq!(net.lost(), 0);
    }

    #[test]
    fn injected_loss_recovers_with_retries() {
        let plan = FaultPlan {
            seed: 5,
            loss: 0.25,
            ..FaultPlan::default()
        };
        let net = run_with_plan(8, 4, 1_500, plan);
        let s = net.stats();
        assert!(s.lost_messages > 0, "{s:?}");
        assert!(
            s.retries > 0,
            "silent partners should be re-requested: {s:?}"
        );
        assert!(s.completed_ops > 0, "{s:?}");
        assert_eq!(net.locked_count(), 0, "no leaked locks");
        net.check_conservation().unwrap();
    }

    #[test]
    fn dropped_transfers_land_in_the_lost_ledger() {
        let plan = FaultPlan {
            seed: 2,
            transfer_loss: 0.3,
            ..FaultPlan::default()
        };
        let net = run_with_plan(8, 2, 1_000, plan);
        assert!(net.lost() > 0, "some transfers must have died");
        assert_eq!(net.in_flight(), 0);
        net.check_conservation().unwrap();
        assert_eq!(net.locked_count(), 0);
    }

    #[test]
    fn duplication_never_double_ships() {
        let plan = FaultPlan {
            seed: 3,
            duplication: 0.5,
            ..FaultPlan::default()
        };
        let net = run_with_plan(8, 3, 1_500, plan);
        assert!(net.stats().duplicated_messages > 0);
        assert_eq!(net.lost(), 0, "duplication alone destroys nothing");
        net.check_conservation().unwrap();
        assert_eq!(net.locked_count(), 0);
    }

    #[test]
    fn crash_lost_moves_load_to_the_lost_ledger() {
        let plan = FaultPlan {
            crash_mode: CrashMode::Lost,
            crashes: vec![CrashEvent {
                proc: 2,
                at: 500,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let mut net = AsyncNetwork::with_faults(config(6, 2), plan).unwrap();
        let actions = vec![1i8; 6];
        for t in 0..1_000 {
            net.tick(t, &actions);
            net.check_conservation().unwrap();
        }
        net.quiesce();
        net.check_conservation().unwrap();
        assert_eq!(net.stats().crashes, 1);
        assert!(net.lost() > 0, "the crashed processor held load");
        assert_eq!(net.loads()[2], 0, "lost-mode crash empties the queue");
        assert_eq!(net.locked_count(), 0);
    }

    #[test]
    fn crash_frozen_preserves_load_and_rejoins() {
        let plan = FaultPlan {
            crash_mode: CrashMode::Frozen,
            crashes: vec![CrashEvent {
                proc: 1,
                at: 300,
                recover_at: Some(700),
            }],
            ..FaultPlan::default()
        };
        let mut net = AsyncNetwork::with_faults(config(6, 2), plan).unwrap();
        let actions = vec![1i8; 6];
        for t in 0..1_500 {
            net.tick(t, &actions);
            net.check_conservation().unwrap();
        }
        net.quiesce();
        net.check_conservation().unwrap();
        assert_eq!(net.lost(), 0, "frozen crashes destroy nothing");
        assert_eq!(net.stats().crashes, 1);
        assert_eq!(net.stats().recoveries, 1);
        assert_eq!(net.down_count(), 0, "processor rejoined");
        // The rejoined processor keeps generating after recovery, so it
        // holds load again.
        assert!(net.loads()[1] > 0);
        assert_eq!(net.locked_count(), 0);
    }

    #[test]
    fn partition_cuts_heal_and_conserve() {
        let plan = FaultPlan {
            partitions: vec![dlb_faults::PartitionEvent {
                from: 200,
                until: 600,
                group: vec![0, 1, 2],
            }],
            ..FaultPlan::default()
        };
        let net = run_with_plan(6, 2, 800, plan);
        net.check_conservation().unwrap();
        assert_eq!(net.locked_count(), 0);
        assert_eq!(
            net.lost(),
            0,
            "partitions delay transfers, never destroy them"
        );
    }

    #[test]
    fn everything_at_once_stays_sound() {
        let plan = FaultPlan {
            seed: 11,
            loss: 0.15,
            transfer_loss: 0.05,
            duplication: 0.1,
            jitter: 3,
            crash_mode: CrashMode::Lost,
            crashes: vec![
                CrashEvent {
                    proc: 0,
                    at: 400,
                    recover_at: Some(900),
                },
                CrashEvent {
                    proc: 3,
                    at: 700,
                    recover_at: None,
                },
            ],
            partitions: vec![dlb_faults::PartitionEvent {
                from: 100,
                until: 300,
                group: vec![4, 5],
            }],
        };
        let net = run_with_plan(8, 3, 1_200, plan);
        net.check_conservation().unwrap();
        assert_eq!(
            net.locked_count(),
            0,
            "no leaked locks under combined faults"
        );
        assert!(net.stats().completed_ops > 0, "protocol stayed live");
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let plan = FaultPlan {
            seed: 9,
            loss: 0.2,
            jitter: 2,
            ..FaultPlan::default()
        };
        let run = || {
            let net = run_with_plan(8, 2, 1_000, plan.clone());
            (net.loads(), *net.stats(), net.lost())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "time must not run backwards")]
    fn time_is_monotone() {
        let mut net = AsyncNetwork::new(config(4, 1));
        net.tick(5, &[0, 0, 0, 0]);
        net.tick(4, &[0, 0, 0, 0]);
    }
}
