//! A real threaded message-passing runtime executing the SPAA'93
//! balancing rule on live work packets.
//!
//! One OS thread per "processor"; each holds a queue of work packets of a
//! user type `T` and processes them with a user handler that may spawn
//! new packets (dynamic workload generation, §2).  After every queue
//! change the worker applies the paper's trigger: if its queue length has
//! grown or shrunk by the factor `f` since the last balancing it
//! participated in, it locks itself plus `δ` random partners (in index
//! order, so no deadlock) and equalises the queues (±1).  An idle worker
//! with a non-empty system keeps initiating balancing operations — the
//! "every processor has some load at any time" guarantee of §1.
//!
//! This is the substrate the paper's applications (best-first branch &
//! bound [7, 8]) ran on; `examples/branch_and_bound.rs` drives it.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::rng::stream;
use rand::prelude::*;
use rand::seq::index::sample;

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of worker threads ("processors").
    pub workers: usize,
    /// Balancing neighbourhood size `δ`.
    pub delta: usize,
    /// Trigger factor `f` (`1 < f < δ + 1` recommended).
    pub f: f64,
    /// Master seed for the per-worker random streams.
    pub seed: u64,
}

impl RuntimeConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("need at least one worker".into());
        }
        if self.delta == 0 || self.delta >= self.workers.max(2) {
            return Err(format!(
                "delta = {} must satisfy 1 <= delta < workers = {}",
                self.delta, self.workers
            ));
        }
        if !(self.f >= 1.0 && self.f.is_finite()) {
            return Err(format!("f = {} must be finite and >= 1", self.f));
        }
        Ok(())
    }
}

/// Counters reported after a run.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Packets processed by each worker.
    pub processed: Vec<u64>,
    /// Balancing operations performed (across all workers).
    pub balance_ops: u64,
    /// Packets moved between queues by balancing.
    pub packets_moved: u64,
}

impl RuntimeStats {
    /// Total packets processed.
    pub fn total_processed(&self) -> u64 {
        self.processed.iter().sum()
    }

    /// max/mean of the per-worker processed counts (1.0 when perfectly
    /// even).
    pub fn processing_imbalance(&self) -> f64 {
        let mean = self.total_processed() as f64 / self.processed.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        *self.processed.iter().max().expect("non-empty") as f64 / mean
    }
}

struct WorkerState<T> {
    queue: VecDeque<T>,
    l_old: u64,
}

/// The threaded runtime.
pub struct ThreadedRuntime;

impl ThreadedRuntime {
    /// Processes `initial` work packets (and everything they spawn) to
    /// completion; `handler(worker, packet, spawn)` may push follow-up
    /// packets into `spawn`.
    ///
    /// Returns per-worker statistics.  Worker scheduling is
    /// non-deterministic, but packet conservation is exact: the run ends
    /// only when every packet has been processed.
    pub fn run<T, F>(config: RuntimeConfig, initial: Vec<T>, handler: F) -> RuntimeStats
    where
        T: Send,
        F: Fn(usize, T, &mut Vec<T>) + Sync,
    {
        config.validate().expect("valid runtime configuration");
        let n = config.workers;
        let outstanding = AtomicI64::new(initial.len() as i64);
        let balance_ops = AtomicU64::new(0);
        let packets_moved = AtomicU64::new(0);
        let processed: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();

        let workers: Vec<Mutex<WorkerState<T>>> = {
            let mut queues: Vec<VecDeque<T>> = (0..n).map(|_| VecDeque::new()).collect();
            for (k, item) in initial.into_iter().enumerate() {
                queues[k % n].push_back(item);
            }
            queues
                .into_iter()
                .map(|queue| {
                    let l_old = queue.len() as u64;
                    Mutex::new(WorkerState { queue, l_old })
                })
                .collect()
        };

        std::thread::scope(|scope| {
            for id in 0..n {
                let workers = &workers;
                let outstanding = &outstanding;
                let balance_ops = &balance_ops;
                let packets_moved = &packets_moved;
                let processed = &processed;
                let handler = &handler;
                scope.spawn(move || {
                    let mut rng = stream(config.seed, id as u64);
                    let mut spawn_buf: Vec<T> = Vec::new();
                    loop {
                        if outstanding.load(Ordering::SeqCst) == 0 {
                            return;
                        }
                        // Pop one local packet, applying the shrink
                        // trigger under the same lock.
                        let popped = {
                            let mut st = workers[id].lock();
                            st.queue.pop_front()
                        };
                        match popped {
                            Some(item) => {
                                spawn_buf.clear();
                                handler(id, item, &mut spawn_buf);
                                processed[id].fetch_add(1, Ordering::Relaxed);
                                let spawned = spawn_buf.len() as i64;
                                {
                                    let mut st = workers[id].lock();
                                    st.queue.extend(spawn_buf.drain(..));
                                }
                                outstanding.fetch_add(spawned - 1, Ordering::SeqCst);
                                Self::maybe_balance(
                                    config,
                                    id,
                                    workers,
                                    &mut rng,
                                    balance_ops,
                                    packets_moved,
                                    false,
                                );
                            }
                            None => {
                                // Idle: force a balancing attempt to pull
                                // work, then back off briefly.
                                Self::maybe_balance(
                                    config,
                                    id,
                                    workers,
                                    &mut rng,
                                    balance_ops,
                                    packets_moved,
                                    true,
                                );
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });

        RuntimeStats {
            processed: processed.iter().map(|p| p.load(Ordering::Relaxed)).collect(),
            balance_ops: balance_ops.load(Ordering::Relaxed),
            packets_moved: packets_moved.load(Ordering::Relaxed),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn maybe_balance<T: Send>(
        config: RuntimeConfig,
        id: usize,
        workers: &[Mutex<WorkerState<T>>],
        rng: &mut impl Rng,
        balance_ops: &AtomicU64,
        packets_moved: &AtomicU64,
        force: bool,
    ) {
        let n = workers.len();
        // Trigger check against the own queue (racy read is fine — the
        // balance itself re-reads under locks).
        let (len, l_old) = {
            let st = workers[id].lock();
            (st.queue.len() as u64, st.l_old)
        };
        let grow = len > l_old && len as f64 >= config.f * l_old as f64 * (1.0 - 1e-9);
        let shrink = len < l_old && len as f64 <= l_old as f64 / config.f * (1.0 + 1e-9);
        if !(force || grow || shrink) {
            return;
        }

        let mut members: Vec<usize> = vec![id];
        members.extend(
            sample(rng, n - 1, config.delta).iter().map(|x| if x >= id { x + 1 } else { x }),
        );
        members.sort_unstable(); // lock order prevents deadlock
        let mut guards: Vec<_> = members.iter().map(|&m| workers[m].lock()).collect();

        let total: usize = guards.iter().map(|g| g.queue.len()).sum();
        let m = guards.len();
        let base = total / m;
        let extras = total % m;
        let shares: Vec<usize> = (0..m).map(|s| base + usize::from(s < extras)).collect();

        let mut buffer: Vec<T> = Vec::new();
        for (g, &share) in guards.iter_mut().zip(shares.iter()) {
            while g.queue.len() > share {
                buffer.push(g.queue.pop_back().expect("len checked"));
            }
        }
        packets_moved.fetch_add(buffer.len() as u64, Ordering::Relaxed);
        for (g, &share) in guards.iter_mut().zip(shares.iter()) {
            while g.queue.len() < share {
                g.queue.push_back(buffer.pop().expect("total conserved"));
            }
        }
        debug_assert!(buffer.is_empty());
        for g in guards.iter_mut() {
            let len = g.queue.len() as u64;
            g.l_old = len;
        }
        balance_ops.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn config(workers: usize) -> RuntimeConfig {
        RuntimeConfig { workers, delta: 1, f: 1.3, seed: 42 }
    }

    #[test]
    fn config_validation() {
        assert!(config(4).validate().is_ok());
        assert!(RuntimeConfig { workers: 0, ..config(4) }.validate().is_err());
        assert!(RuntimeConfig { delta: 0, ..config(4) }.validate().is_err());
        assert!(RuntimeConfig { delta: 4, ..config(4) }.validate().is_err());
        assert!(RuntimeConfig { f: f64::NAN, ..config(4) }.validate().is_err());
    }

    #[test]
    fn processes_every_packet_exactly_once() {
        let counter = TestCounter::new(0);
        let stats = ThreadedRuntime::run(config(4), (0..1000u32).collect(), |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.total_processed(), 1000);
    }

    #[test]
    fn dynamic_tree_workload_completes_and_spreads() {
        // A binary task tree of depth 12 spawned from one root: 2^13 − 1
        // packets, all generated dynamically on whatever worker holds the
        // parent.  Each task carries real work — with free tasks a worker
        // drains its queue faster than balancing can spread it.
        let stats = ThreadedRuntime::run(config(8), vec![12u32], |_, depth, spawn| {
            let mut acc = 0u64;
            for i in 0..4_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            if depth > 0 {
                spawn.push(depth - 1);
                spawn.push(depth - 1);
            }
        });
        assert_eq!(stats.total_processed(), (1 << 13) - 1);
        // Balancing must have spread the dynamically generated work.
        assert!(stats.balance_ops > 0);
        // Spread assertions need real parallelism; on a single core the
        // OS scheduler, not the balancer, decides who runs.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cores >= 4 {
            let idle_workers = stats.processed.iter().filter(|&&p| p == 0).count();
            assert_eq!(idle_workers, 0, "every worker got work: {:?}", stats.processed);
            assert!(
                stats.processing_imbalance() < 3.0,
                "imbalance {} too high: {:?}",
                stats.processing_imbalance(),
                stats.processed
            );
        }
    }

    #[test]
    fn empty_initial_work_returns_immediately() {
        let stats = ThreadedRuntime::run(config(3), Vec::<u8>::new(), |_, _, _| {});
        assert_eq!(stats.total_processed(), 0);
    }

    #[test]
    fn single_worker_runs_serially() {
        let cfg = RuntimeConfig { workers: 2, delta: 1, f: 2.0, seed: 1 };
        let stats = ThreadedRuntime::run(cfg, vec![5u32], |_, depth, spawn| {
            if depth > 0 {
                spawn.push(depth - 1);
            }
        });
        assert_eq!(stats.total_processed(), 6);
    }
}
