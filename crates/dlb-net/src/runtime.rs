//! A real threaded message-passing runtime executing the SPAA'93
//! balancing rule on live work packets.
//!
//! One OS thread per "processor"; each holds a queue of work packets of a
//! user type `T` and processes them with a user handler that may spawn
//! new packets (dynamic workload generation, §2).  After every queue
//! change the worker applies the paper's trigger: if its queue length has
//! grown or shrunk by the factor `f` since the last balancing it
//! participated in, it locks itself plus `δ` random partners (in index
//! order, so no deadlock) and equalises the queues (±1).  An idle worker
//! with a non-empty system keeps initiating balancing operations — the
//! "every processor has some load at any time" guarantee of §1.
//!
//! This is the substrate the paper's applications (best-first branch &
//! bound [7, 8]) ran on; `examples/branch_and_bound.rs` drives it.
//!
//! # Fault injection
//!
//! [`ThreadedRuntime::run_with_faults`] executes a `dlb-faults`
//! [`FaultPlan`]'s crash schedule.  Crash/recovery times are measured on
//! a logical clock that advances by one per processed packet (wall-clock
//! time would be non-deterministic and machine-dependent).  A crashed
//! worker stops processing; what happens to its queue follows the plan's
//! [`CrashMode`]:
//!
//! * [`CrashMode::Lost`] — the dying worker discards its queue; the
//!   packets are counted in [`RuntimeStats::lost_packets`] and the run
//!   completes without them.
//! * [`CrashMode::Frozen`] — survivors *take over* the dead worker's
//!   queue when a balancing operation detects the death (queue
//!   redistribution), so every packet is still processed.  ("Frozen"
//!   load would deadlock a run-to-completion runtime, so detection
//!   hands the queue to the living.)
//!
//! A recovered worker rejoins empty-handed and refills through normal
//! balancing.  Message loss/duplication/jitter do not apply here — the
//! runtime's "messages" are mutex-protected queue operations that cannot
//! be dropped; the asynchronous simulator (`desim`) covers those faults.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

use crate::rng::stream;
use dlb_faults::{CrashMode, FaultInjector, FaultPlan};
use dlb_trace::{merge_by_clock, SharedSink, TraceEvent};
use rand::prelude::*;
use rand::seq::index::sample;

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of worker threads ("processors").
    pub workers: usize,
    /// Balancing neighbourhood size `δ`.
    pub delta: usize,
    /// Trigger factor `f` (`1 < f < δ + 1` recommended).
    pub f: f64,
    /// Master seed for the per-worker random streams.
    pub seed: u64,
}

impl RuntimeConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("need at least one worker".into());
        }
        if self.delta == 0 || self.delta >= self.workers.max(2) {
            return Err(format!(
                "delta = {} must satisfy 1 <= delta < workers = {}",
                self.delta, self.workers
            ));
        }
        if !(self.f >= 1.0 && self.f.is_finite()) {
            return Err(format!("f = {} must be finite and >= 1", self.f));
        }
        Ok(())
    }
}

/// Counters reported after a run.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Packets processed by each worker.
    pub processed: Vec<u64>,
    /// Balancing operations performed (across all workers).
    pub balance_ops: u64,
    /// Packets moved between queues by balancing.
    pub packets_moved: u64,
    /// Worker crashes applied by fault injection.
    pub crashes: u64,
    /// Worker recoveries applied by fault injection.
    pub recoveries: u64,
    /// Packets taken over from dead workers' queues ([`CrashMode::Frozen`]).
    pub redistributed_packets: u64,
    /// Packets destroyed by [`CrashMode::Lost`] crashes.
    pub lost_packets: u64,
}

impl RuntimeStats {
    /// Total packets processed.
    pub fn total_processed(&self) -> u64 {
        self.processed.iter().sum()
    }

    /// max/mean of the per-worker processed counts (1.0 when perfectly
    /// even).
    pub fn processing_imbalance(&self) -> f64 {
        let mean = self.total_processed() as f64 / self.processed.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        *self.processed.iter().max().expect("non-empty") as f64 / mean
    }
}

/// One worker's private, clock-stamped trace event buffer.
type TraceBuf = Mutex<Vec<(u64, TraceEvent)>>;

struct WorkerState<T> {
    queue: VecDeque<T>,
    l_old: u64,
}

/// Everything the worker threads share; bundling it keeps the
/// balancing-path signatures sane.
struct Shared<'a, T> {
    workers: &'a [Mutex<WorkerState<T>>],
    injector: &'a FaultInjector,
    /// Logical clock for the crash schedule: total packets processed.
    clock: &'a AtomicU64,
    outstanding: &'a AtomicI64,
    balance_ops: &'a AtomicU64,
    packets_moved: &'a AtomicU64,
    redistributed: &'a AtomicU64,
    lost: &'a AtomicU64,
    crashes: &'a AtomicU64,
    recoveries: &'a AtomicU64,
    processed: &'a [AtomicU64],
    /// Per-worker trace buffers (one per node, locked independently so
    /// tracing never serialises the workers).  `None` when untraced.
    trace: Option<&'a [TraceBuf]>,
    /// Parking spot for workers with nothing to do (idle or crashed).
    /// Busy-waiting instead starves the productive workers of CPU on
    /// small machines — concurrent runtimes (e.g. the dlb-bnb test
    /// suite) then livelock each other.
    parking: &'a (Mutex<()>, Condvar),
}

impl<T> Shared<'_, T> {
    /// Stamps `event` with the logical `clock` and appends it to worker
    /// `id`'s private buffer.  No-op when tracing is off.
    fn emit(&self, id: usize, clock: u64, event: TraceEvent) {
        if let Some(bufs) = self.trace {
            bufs[id].lock().push((clock, event));
        }
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Wakes every parked worker — called when new packets appear, when
    /// balancing moved packets into possibly-parked workers' queues, and
    /// when the run completes.
    fn wake_all(&self) {
        self.parking.1.notify_all();
    }

    /// Parks the calling worker until woken or `timeout`.  The timeout
    /// bounds the cost of the benign notify/park race (wakers do not
    /// hold the parking mutex while updating state), so a missed wakeup
    /// delays a worker by at most `timeout` instead of losing it.
    fn park(&self, timeout: Duration) {
        let mut guard = self.parking.0.lock();
        if self.outstanding.load(Ordering::SeqCst) == 0 {
            return;
        }
        self.parking.1.wait_for(&mut guard, timeout);
    }
}

/// The threaded runtime.
pub struct ThreadedRuntime;

impl ThreadedRuntime {
    /// Processes `initial` work packets (and everything they spawn) to
    /// completion; `handler(worker, packet, spawn)` may push follow-up
    /// packets into `spawn`.
    ///
    /// Returns per-worker statistics.  Worker scheduling is
    /// non-deterministic, but packet conservation is exact: the run ends
    /// only when every packet has been processed.
    pub fn run<T, F>(config: RuntimeConfig, initial: Vec<T>, handler: F) -> RuntimeStats
    where
        T: Send,
        F: Fn(usize, T, &mut Vec<T>) + Sync,
    {
        Self::run_with_faults(config, initial, FaultPlan::reliable(), handler)
    }

    /// Like [`ThreadedRuntime::run`], but executing the crash schedule
    /// of a [`FaultPlan`] (see the module docs for the fault model).
    ///
    /// The run ends when every surviving packet has been processed:
    /// `total_processed + lost_packets` equals the number of packets
    /// ever created.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the fault plan is invalid.
    pub fn run_with_faults<T, F>(
        config: RuntimeConfig,
        initial: Vec<T>,
        plan: FaultPlan,
        handler: F,
    ) -> RuntimeStats
    where
        T: Send,
        F: Fn(usize, T, &mut Vec<T>) + Sync,
    {
        Self::run_inner(config, initial, plan, handler, None)
    }

    /// Like [`ThreadedRuntime::run_with_faults`], but recording trace
    /// events into `sink`.
    ///
    /// Each worker buffers its events privately, stamped with the
    /// logical clock (total packets processed); after the run the
    /// per-node buffers are merged deterministically by
    /// [`dlb_trace::merge_by_clock`] — ordered by `(clock, worker,
    /// emission order)` — and written to the sink in one pass.  The
    /// *merge* is deterministic; which events occur still depends on OS
    /// scheduling, as the module docs explain.
    pub fn run_traced<T, F>(
        config: RuntimeConfig,
        initial: Vec<T>,
        plan: FaultPlan,
        handler: F,
        sink: SharedSink,
    ) -> RuntimeStats
    where
        T: Send,
        F: Fn(usize, T, &mut Vec<T>) + Sync,
    {
        Self::run_inner(config, initial, plan, handler, Some(sink))
    }

    fn run_inner<T, F>(
        config: RuntimeConfig,
        initial: Vec<T>,
        plan: FaultPlan,
        handler: F,
        sink: Option<SharedSink>,
    ) -> RuntimeStats
    where
        T: Send,
        F: Fn(usize, T, &mut Vec<T>) + Sync,
    {
        config.validate().expect("valid runtime configuration");
        let injector = FaultInjector::new(plan, config.workers).expect("valid fault plan");
        let n = config.workers;
        let outstanding = AtomicI64::new(initial.len() as i64);
        let clock = AtomicU64::new(0);
        let balance_ops = AtomicU64::new(0);
        let packets_moved = AtomicU64::new(0);
        let redistributed = AtomicU64::new(0);
        let lost = AtomicU64::new(0);
        let crashes = AtomicU64::new(0);
        let recoveries = AtomicU64::new(0);
        let processed: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();

        let workers: Vec<Mutex<WorkerState<T>>> = {
            let mut queues: Vec<VecDeque<T>> = (0..n).map(|_| VecDeque::new()).collect();
            for (k, item) in initial.into_iter().enumerate() {
                queues[k % n].push_back(item);
            }
            queues
                .into_iter()
                .map(|queue| {
                    let l_old = queue.len() as u64;
                    Mutex::new(WorkerState { queue, l_old })
                })
                .collect()
        };

        let parking = (Mutex::new(()), Condvar::new());
        let trace_bufs: Option<Vec<TraceBuf>> = sink
            .as_ref()
            .filter(|s| s.enabled())
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect());

        let shared = Shared {
            workers: &workers,
            injector: &injector,
            clock: &clock,
            outstanding: &outstanding,
            balance_ops: &balance_ops,
            packets_moved: &packets_moved,
            redistributed: &redistributed,
            lost: &lost,
            crashes: &crashes,
            recoveries: &recoveries,
            processed: &processed,
            trace: trace_bufs.as_deref(),
            parking: &parking,
        };

        std::thread::scope(|scope| {
            for id in 0..n {
                let shared = &shared;
                let handler = &handler;
                scope.spawn(move || Self::worker_loop(config, id, shared, handler));
            }
        });

        if let (Some(sink), Some(bufs)) = (&sink, trace_bufs) {
            let per_node: Vec<Vec<(u64, TraceEvent)>> =
                bufs.into_iter().map(|m| m.into_inner()).collect();
            for event in merge_by_clock(per_node) {
                sink.record(&event);
            }
            sink.flush();
        }

        RuntimeStats {
            processed: processed
                .iter()
                .map(|p| p.load(Ordering::Relaxed))
                .collect(),
            balance_ops: balance_ops.load(Ordering::Relaxed),
            packets_moved: packets_moved.load(Ordering::Relaxed),
            crashes: crashes.load(Ordering::Relaxed),
            recoveries: recoveries.load(Ordering::Relaxed),
            redistributed_packets: redistributed.load(Ordering::Relaxed),
            lost_packets: lost.load(Ordering::Relaxed),
        }
    }

    fn worker_loop<T, F>(config: RuntimeConfig, id: usize, shared: &Shared<'_, T>, handler: &F)
    where
        T: Send,
        F: Fn(usize, T, &mut Vec<T>) + Sync,
    {
        let mut rng = stream(config.seed, id as u64);
        let mut spawn_buf: Vec<T> = Vec::new();
        let mut was_down = false;
        loop {
            if shared.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            let now = shared.clock.load(Ordering::SeqCst);
            if shared.injector.is_down(now, id) {
                if !was_down {
                    was_down = true;
                    shared.crashes.fetch_add(1, Ordering::Relaxed);
                    shared.emit(
                        id,
                        now,
                        TraceEvent::FaultInjected {
                            step: now,
                            proc: id as u64,
                            kind: "crash".to_string(),
                        },
                    );
                    if shared.injector.crash_mode() == CrashMode::Lost {
                        // Fail-stop with state loss: the queue dies with
                        // the worker.
                        let dropped = {
                            let mut st = shared.workers[id].lock();
                            let k = st.queue.len();
                            st.queue.clear();
                            st.l_old = 0;
                            k
                        };
                        if dropped > 0 {
                            shared.lost.fetch_add(dropped as u64, Ordering::Relaxed);
                            let left = shared
                                .outstanding
                                .fetch_add(-(dropped as i64), Ordering::SeqCst)
                                - dropped as i64;
                            if left == 0 {
                                shared.wake_all();
                            }
                        }
                    }
                }
                // Sleep out the down window; the logical clock that ends
                // it only advances when other workers process packets, so
                // re-check on a timeout rather than spinning.
                shared.park(Duration::from_millis(1));
                continue;
            }
            if was_down {
                // Rejoin: start from whatever the queue holds now (empty
                // unless the system is mid-heal) and re-baseline l_old.
                was_down = false;
                shared.recoveries.fetch_add(1, Ordering::Relaxed);
                shared.emit(
                    id,
                    now,
                    TraceEvent::CrashRecovered {
                        step: now,
                        proc: id as u64,
                    },
                );
                let mut st = shared.workers[id].lock();
                let len = st.queue.len() as u64;
                st.l_old = len;
            }
            // Pop one local packet, applying the shrink trigger under the
            // same lock.
            let popped = {
                let mut st = shared.workers[id].lock();
                st.queue.pop_front()
            };
            match popped {
                Some(item) => {
                    spawn_buf.clear();
                    handler(id, item, &mut spawn_buf);
                    shared.processed[id].fetch_add(1, Ordering::Relaxed);
                    shared.clock.fetch_add(1, Ordering::SeqCst);
                    let spawned = spawn_buf.len() as i64;
                    {
                        let mut st = shared.workers[id].lock();
                        st.queue.extend(spawn_buf.drain(..));
                    }
                    let left =
                        shared.outstanding.fetch_add(spawned - 1, Ordering::SeqCst) + (spawned - 1);
                    if spawned > 0 || left == 0 {
                        // New packets for idle workers to pull — or the
                        // run is over and everyone should notice.
                        shared.wake_all();
                    }
                    Self::maybe_balance(config, id, shared, &mut rng, false);
                }
                None => {
                    // Idle: force a balancing attempt to pull work, then
                    // park until queues change (or briefly, to re-check).
                    if !Self::maybe_balance(config, id, shared, &mut rng, true) {
                        shared.park(Duration::from_millis(1));
                    }
                }
            }
        }
    }

    /// Runs the trigger check and, when it fires (or `force` is set), a
    /// locked balance over the member group.  Returns whether any
    /// packets moved — an idle caller that pulled nothing can park.
    fn maybe_balance<T: Send>(
        config: RuntimeConfig,
        id: usize,
        shared: &Shared<'_, T>,
        rng: &mut impl Rng,
        force: bool,
    ) -> bool {
        let n = shared.workers.len();
        // Trigger check against the own queue (racy read is fine — the
        // balance itself re-reads under locks).
        let (len, l_old) = {
            let st = shared.workers[id].lock();
            (st.queue.len() as u64, st.l_old)
        };
        let grow = len > l_old && len as f64 >= config.f * l_old as f64 * (1.0 - 1e-9);
        let shrink = len < l_old && len as f64 <= l_old as f64 / config.f * (1.0 + 1e-9);
        if !(force || grow || shrink) {
            return false;
        }

        let mut members: Vec<usize> = vec![id];
        members.extend(sample(rng, n - 1, config.delta).iter().map(|x| {
            if x >= id {
                x + 1
            } else {
                x
            }
        }));
        members.sort_unstable(); // lock order prevents deadlock
        if shared.tracing() {
            shared.emit(
                id,
                shared.clock.load(Ordering::SeqCst),
                TraceEvent::BalanceInitiated {
                    step: shared.clock.load(Ordering::SeqCst),
                    initiator: id as u64,
                    partners: members
                        .iter()
                        .filter(|&&m| m != id)
                        .map(|&m| m as u64)
                        .collect(),
                    trigger: len as f64 / l_old.max(1) as f64,
                },
            );
        }
        let mut guards: Vec<_> = members.iter().map(|&m| shared.workers[m].lock()).collect();

        // Death detection under the locks: dead members never receive a
        // share; in Frozen mode their queue is taken over (redistributed
        // to the living), in Lost mode it is left for the owner to
        // discard.
        let now = shared.clock.load(Ordering::SeqCst);
        let takeover = shared.injector.crash_mode() == CrashMode::Frozen;
        let mut buffer: Vec<T> = Vec::new();
        let mut taken = 0u64;
        let mut alive: Vec<usize> = Vec::with_capacity(members.len());
        for (k, &m) in members.iter().enumerate() {
            if m == id || !shared.injector.is_down(now, m) {
                alive.push(k);
            } else if takeover {
                while let Some(item) = guards[k].queue.pop_back() {
                    buffer.push(item);
                    taken += 1;
                }
                guards[k].l_old = 0;
            }
        }
        if taken > 0 {
            shared.redistributed.fetch_add(taken, Ordering::Relaxed);
        }

        let total: usize =
            alive.iter().map(|&k| guards[k].queue.len()).sum::<usize>() + buffer.len();
        let m = alive.len();
        let base = total / m;
        let extras = total % m;
        let shares: Vec<usize> = (0..m).map(|s| base + usize::from(s < extras)).collect();

        for (&k, &share) in alive.iter().zip(shares.iter()) {
            while guards[k].queue.len() > share {
                buffer.push(guards[k].queue.pop_back().expect("len checked"));
            }
        }
        let moved = buffer.len() as u64;
        shared.packets_moved.fetch_add(moved, Ordering::Relaxed);
        if moved > 0 && shared.tracing() {
            shared.emit(
                id,
                now,
                TraceEvent::PacketsMigrated {
                    step: now,
                    initiator: id as u64,
                    count: moved,
                },
            );
        }
        for (&k, &share) in alive.iter().zip(shares.iter()) {
            while guards[k].queue.len() < share {
                guards[k]
                    .queue
                    .push_back(buffer.pop().expect("total conserved"));
            }
        }
        debug_assert!(buffer.is_empty());
        for &k in &alive {
            let len = guards[k].queue.len() as u64;
            guards[k].l_old = len;
        }
        shared.balance_ops.fetch_add(1, Ordering::Relaxed);
        drop(guards);
        if moved > 0 {
            // Some members may be parked with freshly filled queues.
            shared.wake_all();
        }
        moved > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_faults::CrashEvent;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn config(workers: usize) -> RuntimeConfig {
        RuntimeConfig {
            workers,
            delta: 1,
            f: 1.3,
            seed: 42,
        }
    }

    #[test]
    fn config_validation() {
        assert!(config(4).validate().is_ok());
        assert!(RuntimeConfig {
            workers: 0,
            ..config(4)
        }
        .validate()
        .is_err());
        assert!(RuntimeConfig {
            delta: 0,
            ..config(4)
        }
        .validate()
        .is_err());
        assert!(RuntimeConfig {
            delta: 4,
            ..config(4)
        }
        .validate()
        .is_err());
        assert!(RuntimeConfig {
            f: f64::NAN,
            ..config(4)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn processes_every_packet_exactly_once() {
        let counter = TestCounter::new(0);
        let stats = ThreadedRuntime::run(config(4), (0..1000u32).collect(), |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.total_processed(), 1000);
    }

    #[test]
    fn dynamic_tree_workload_completes_and_spreads() {
        // A binary task tree of depth 12 spawned from one root: 2^13 − 1
        // packets, all generated dynamically on whatever worker holds the
        // parent.  Each task carries real work — with free tasks a worker
        // drains its queue faster than balancing can spread it.
        let stats = ThreadedRuntime::run(config(8), vec![12u32], |_, depth, spawn| {
            let mut acc = 0u64;
            for i in 0..4_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            if depth > 0 {
                spawn.push(depth - 1);
                spawn.push(depth - 1);
            }
        });
        assert_eq!(stats.total_processed(), (1 << 13) - 1);
        // Balancing must have spread the dynamically generated work.
        assert!(stats.balance_ops > 0);
        // Spread assertions need real parallelism; on a single core the
        // OS scheduler, not the balancer, decides who runs.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cores >= 4 {
            let idle_workers = stats.processed.iter().filter(|&&p| p == 0).count();
            assert_eq!(
                idle_workers, 0,
                "every worker got work: {:?}",
                stats.processed
            );
            assert!(
                stats.processing_imbalance() < 3.0,
                "imbalance {} too high: {:?}",
                stats.processing_imbalance(),
                stats.processed
            );
        }
    }

    #[test]
    fn empty_initial_work_returns_immediately() {
        let stats = ThreadedRuntime::run(config(3), Vec::<u8>::new(), |_, _, _| {});
        assert_eq!(stats.total_processed(), 0);
    }

    #[test]
    fn single_worker_runs_serially() {
        let cfg = RuntimeConfig {
            workers: 2,
            delta: 1,
            f: 2.0,
            seed: 1,
        };
        let stats = ThreadedRuntime::run(cfg, vec![5u32], |_, depth, spawn| {
            if depth > 0 {
                spawn.push(depth - 1);
            }
        });
        assert_eq!(stats.total_processed(), 6);
    }

    #[test]
    fn frozen_crash_redistributes_and_completes() {
        // Worker 1 dies immediately and never recovers; survivors must
        // take over its share of the 800 packets and finish all of them.
        let plan = FaultPlan {
            crash_mode: CrashMode::Frozen,
            crashes: vec![CrashEvent {
                proc: 1,
                at: 0,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let stats =
            ThreadedRuntime::run_with_faults(config(4), (0..800u32).collect(), plan, |_, _, _| {});
        assert_eq!(
            stats.total_processed(),
            800,
            "every packet survives a frozen crash"
        );
        assert_eq!(stats.lost_packets, 0);
        assert_eq!(stats.processed[1], 0, "the dead worker processed nothing");
        assert!(stats.crashes >= 1);
    }

    #[test]
    fn lost_crash_discards_the_queue_but_terminates() {
        let plan = FaultPlan {
            crash_mode: CrashMode::Lost,
            crashes: vec![CrashEvent {
                proc: 0,
                at: 0,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let stats =
            ThreadedRuntime::run_with_faults(config(4), (0..800u32).collect(), plan, |_, _, _| {});
        // Conservation: every packet was either processed or destroyed by
        // the crash.
        assert_eq!(stats.total_processed() + stats.lost_packets, 800);
        assert_eq!(stats.processed[0], 0, "the dead worker processed nothing");
        assert!(stats.crashes >= 1);
    }

    #[test]
    fn traced_run_mirrors_stats_and_merges_in_clock_order() {
        let buf = dlb_trace::BufferSink::new();
        let stats = ThreadedRuntime::run_traced(
            config(4),
            vec![10u32],
            FaultPlan::reliable(),
            |_, depth, spawn| {
                std::hint::black_box((0..500u64).sum::<u64>());
                if depth > 0 {
                    spawn.push(depth - 1);
                    spawn.push(depth - 1);
                }
            },
            buf.handle(),
        );
        let events = buf.take();
        let balance_events = events
            .iter()
            .filter(|e| matches!(e, dlb_trace::TraceEvent::BalanceInitiated { .. }))
            .count() as u64;
        assert_eq!(balance_events, stats.balance_ops);
        let moved: u64 = events
            .iter()
            .filter_map(|e| match e {
                dlb_trace::TraceEvent::PacketsMigrated { count, .. } => Some(*count),
                _ => None,
            })
            .sum();
        assert_eq!(moved, stats.packets_moved);
        // merge_by_clock output is non-decreasing in the logical clock.
        let steps: Vec<u64> = events.iter().filter_map(|e| e.step()).collect();
        assert!(steps.windows(2).all(|w| w[0] <= w[1]), "{steps:?}");
    }

    #[test]
    fn null_sink_traced_run_buffers_nothing() {
        let sink = dlb_trace::SharedSink::new(dlb_trace::NullSink);
        let stats = ThreadedRuntime::run_traced(
            config(2),
            (0..200u32).collect(),
            FaultPlan::reliable(),
            |_, _, _| {},
            sink,
        );
        assert_eq!(stats.total_processed(), 200);
    }

    #[test]
    fn traced_crash_emits_fault_events() {
        let plan = FaultPlan {
            crash_mode: CrashMode::Frozen,
            crashes: vec![CrashEvent {
                proc: 1,
                at: 0,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let buf = dlb_trace::BufferSink::new();
        let stats = ThreadedRuntime::run_traced(
            config(4),
            (0..800u32).collect(),
            plan,
            |_, _, _| {},
            buf.handle(),
        );
        let events = buf.take();
        let faults = events
            .iter()
            .filter(|e| matches!(e, dlb_trace::TraceEvent::FaultInjected { .. }))
            .count() as u64;
        assert_eq!(faults, stats.crashes);
    }

    #[test]
    fn crashed_worker_rejoins_and_works_again() {
        // Worker 2 is down for the middle of the run (logical clock in
        // processed packets), then rejoins; the run still completes every
        // packet.
        let plan = FaultPlan {
            crash_mode: CrashMode::Frozen,
            crashes: vec![CrashEvent {
                proc: 2,
                at: 10,
                recover_at: Some(1_800),
            }],
            ..FaultPlan::default()
        };
        let stats = ThreadedRuntime::run_with_faults(
            config(4),
            (0..2_000u32).collect(),
            plan,
            |_, _, _| {
                std::hint::black_box((0..2_000u64).sum::<u64>());
            },
        );
        assert_eq!(stats.total_processed(), 2_000);
        assert_eq!(stats.lost_packets, 0);
        // The crash must have taken effect somewhere: either the worker
        // itself observed the down window, or a survivor detected the
        // death and took the queue over.  (Which one wins is a scheduling
        // race — on a loaded machine the worker thread may only get CPU
        // after the window closed.)
        assert!(
            stats.crashes >= 1 || stats.redistributed_packets > 0,
            "{stats:?}"
        );
    }
}
