//! Interconnect topologies.
//!
//! The SPAA'93 algorithm itself is topology-oblivious (partners are drawn
//! globally at random), but its *communication cost* is not: a packet
//! moved between processors traverses `distance(a, b)` links.  These
//! graphs let the experiments measure the traffic the paper's constant-
//! cost assumption hides, and support the locality mode of
//! [`crate::engine::TopoCluster`].

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// An undirected interconnect on processors `0 .. n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Every pair connected (distance ≤ 1).
    Complete { n: usize },
    /// A cycle.
    Ring { n: usize },
    /// A `w × h` torus (wrap-around grid); processor `i` sits at
    /// `(i % w, i / w)`.
    Torus2D { w: usize, h: usize },
    /// A `dim`-dimensional hypercube on `2^dim` processors.
    Hypercube { dim: u32 },
    /// The binary de Bruijn graph on `2^dim` processors: `v` is adjacent
    /// to `2v mod n`, `2v+1 mod n` and their inverses (the network of the
    /// paper's own parallel machine [13] uses de Bruijn-like shuffles).
    DeBruijn { dim: u32 },
    /// A star: processor 0 is the centre (the pathological centralised
    /// case §1 argues against).
    Star { n: usize },
    /// A circulant graph: `i` adjacent to `i ± o (mod n)` for each offset
    /// `o` (a deterministic stand-in for random regular graphs).
    Circulant { n: usize, offsets: Vec<usize> },
    /// A `w × h` grid *without* wrap-around (boundary effects included).
    Grid2D { w: usize, h: usize },
    /// A complete binary tree on `2^(depth+1) − 1` processors, root 0,
    /// children of `v` at `2v+1` and `2v+2`.
    BinaryTree { depth: u32 },
}

impl Topology {
    /// Number of processors.
    pub fn n(&self) -> usize {
        match *self {
            Topology::Complete { n } | Topology::Ring { n } | Topology::Star { n } => n,
            Topology::Torus2D { w, h } | Topology::Grid2D { w, h } => w * h,
            Topology::Hypercube { dim } | Topology::DeBruijn { dim } => 1usize << dim,
            Topology::Circulant { n, .. } => n,
            Topology::BinaryTree { depth } => (1usize << (depth + 1)) - 1,
        }
    }

    /// Neighbours of `v` (no self-loops, deduplicated, sorted).
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let n = self.n();
        assert!(v < n, "vertex {v} out of range (n = {n})");
        let mut out: Vec<usize> = match *self {
            Topology::Complete { n } => (0..n).filter(|&u| u != v).collect(),
            Topology::Ring { n } => {
                if n <= 1 {
                    vec![]
                } else {
                    vec![(v + 1) % n, (v + n - 1) % n]
                }
            }
            Topology::Torus2D { w, h } => {
                let (x, y) = (v % w, v / w);
                vec![
                    (x + 1) % w + y * w,
                    (x + w - 1) % w + y * w,
                    x + ((y + 1) % h) * w,
                    x + ((y + h - 1) % h) * w,
                ]
            }
            Topology::Hypercube { dim } => (0..dim).map(|b| v ^ (1 << b)).collect(),
            Topology::DeBruijn { dim } => {
                let n = 1usize << dim;
                vec![(2 * v) % n, (2 * v + 1) % n, v >> 1, (v >> 1) | (n >> 1)]
            }
            Topology::Star { n } => {
                if v == 0 {
                    (1..n).collect()
                } else {
                    vec![0]
                }
            }
            Topology::Circulant { n, ref offsets } => offsets
                .iter()
                .flat_map(|&o| [(v + o) % n, (v + n - o % n) % n])
                .collect(),
            Topology::Grid2D { w, h } => {
                let (x, y) = (v % w, v / w);
                let mut out = Vec::with_capacity(4);
                if x + 1 < w {
                    out.push(v + 1);
                }
                if x > 0 {
                    out.push(v - 1);
                }
                if y + 1 < h {
                    out.push(v + w);
                }
                if y > 0 {
                    out.push(v - w);
                }
                out
            }
            Topology::BinaryTree { .. } => {
                let mut out = Vec::with_capacity(3);
                if v > 0 {
                    out.push((v - 1) / 2);
                }
                for child in [2 * v + 1, 2 * v + 2] {
                    if child < n {
                        out.push(child);
                    }
                }
                out
            }
        };
        out.sort_unstable();
        out.dedup();
        out.retain(|&u| u != v);
        out
    }

    /// BFS hop distances from `src` to every vertex (`u32::MAX` if
    /// unreachable).
    pub fn distances_from(&self, src: usize) -> Vec<u32> {
        let n = self.n();
        let mut dist = vec![u32::MAX; n];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            for u in self.neighbors(v) {
                if dist[u] == u32::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Hop distance between two vertices.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.distances_from(a)[b]
    }

    /// Largest finite hop distance in the graph.
    pub fn diameter(&self) -> u32 {
        (0..self.n())
            .map(|v| {
                self.distances_from(v)
                    .into_iter()
                    .filter(|&d| d != u32::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Mean hop distance over ordered distinct pairs.
    pub fn mean_distance(&self) -> f64 {
        let n = self.n();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0u64;
        let mut count = 0u64;
        for v in 0..n {
            for (u, &d) in self.distances_from(v).iter().enumerate() {
                if u != v && d != u32::MAX {
                    sum += d as u64;
                    count += 1;
                }
            }
        }
        sum as f64 / count as f64
    }

    /// True if every vertex can reach every other.
    pub fn is_connected(&self) -> bool {
        self.n() == 0 || self.distances_from(0).iter().all(|&d| d != u32::MAX)
    }

    /// A uniformly random connected circulant with `k` offsets, as a
    /// deterministic substitute for random regular graphs.  `k` is capped
    /// at the number of distinct offsets available (`⌊n/2⌋`).
    pub fn random_circulant(n: usize, k: usize, seed: u64) -> Topology {
        assert!(n >= 3, "need at least 3 vertices");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Offset 1 guarantees connectivity; the rest are random among the
        // distinct offsets 2..=n/2.
        let k = k.clamp(1, n / 2);
        let mut offsets = vec![1usize];
        while offsets.len() < k {
            let o = rng.gen_range(2..=n / 2);
            if !offsets.contains(&o) {
                offsets.push(o);
            }
        }
        Topology::Circulant { n, offsets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_distances() {
        let t = Topology::Complete { n: 8 };
        assert_eq!(t.n(), 8);
        assert_eq!(t.neighbors(3).len(), 7);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn ring_distances() {
        let t = Topology::Ring { n: 10 };
        assert_eq!(t.distance(0, 5), 5);
        assert_eq!(t.distance(0, 7), 3, "wraps the short way");
        assert_eq!(t.diameter(), 5);
    }

    #[test]
    fn torus_neighbors_and_diameter() {
        let t = Topology::Torus2D { w: 4, h: 4 };
        assert_eq!(t.n(), 16);
        assert_eq!(t.neighbors(0), vec![1, 3, 4, 12]);
        assert_eq!(t.diameter(), 4); // 2 + 2
    }

    #[test]
    fn hypercube_structure() {
        let t = Topology::Hypercube { dim: 4 };
        assert_eq!(t.n(), 16);
        assert_eq!(t.neighbors(0), vec![1, 2, 4, 8]);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.distance(0b0000, 0b1111), 4);
    }

    #[test]
    fn debruijn_logarithmic_diameter() {
        let t = Topology::DeBruijn { dim: 6 };
        assert_eq!(t.n(), 64);
        assert!(t.is_connected());
        assert!(
            t.diameter() <= 6,
            "diameter {} should be <= dim",
            t.diameter()
        );
    }

    #[test]
    fn star_routes_through_center() {
        let t = Topology::Star { n: 6 };
        assert_eq!(t.distance(1, 2), 2);
        assert_eq!(t.distance(0, 5), 1);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn circulant_connected_and_symmetric() {
        let t = Topology::random_circulant(33, 3, 7);
        assert!(t.is_connected());
        for v in 0..33 {
            for u in t.neighbors(v) {
                assert!(t.neighbors(u).contains(&v), "undirected: {u} <-> {v}");
            }
        }
    }

    #[test]
    fn all_topologies_connected() {
        let topos = [
            Topology::Complete { n: 9 },
            Topology::Ring { n: 9 },
            Topology::Torus2D { w: 3, h: 3 },
            Topology::Hypercube { dim: 3 },
            Topology::DeBruijn { dim: 3 },
            Topology::Star { n: 9 },
            Topology::random_circulant(9, 2, 1),
        ];
        for t in topos {
            assert!(t.is_connected(), "{t:?}");
            assert_eq!(
                t.n(),
                if matches!(t, Topology::Hypercube { .. } | Topology::DeBruijn { .. }) {
                    8
                } else {
                    9
                }
            );
        }
    }

    #[test]
    fn grid_has_no_wraparound() {
        let t = Topology::Grid2D { w: 4, h: 3 };
        assert_eq!(t.n(), 12);
        assert_eq!(t.neighbors(0), vec![1, 4], "corner has two neighbours");
        assert_eq!(t.distance(0, 3), 3, "no wrap along the row");
        let torus = Topology::Torus2D { w: 4, h: 3 };
        assert!(
            t.diameter() > torus.diameter(),
            "grid diameter exceeds torus"
        );
    }

    #[test]
    fn binary_tree_structure() {
        let t = Topology::BinaryTree { depth: 3 };
        assert_eq!(t.n(), 15);
        assert_eq!(t.neighbors(0), vec![1, 2], "root");
        assert_eq!(t.neighbors(3), vec![1, 7, 8], "internal node");
        assert_eq!(t.neighbors(14), vec![6], "leaf");
        assert!(t.is_connected());
        assert_eq!(t.diameter(), 6, "leaf to leaf through the root");
    }

    #[test]
    fn mean_distance_reasonable() {
        let ring = Topology::Ring { n: 16 };
        let hyper = Topology::Hypercube { dim: 4 };
        assert!(ring.mean_distance() > hyper.mean_distance());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbors_validates_vertex() {
        Topology::Ring { n: 4 }.neighbors(4);
    }
}
