//! Topology-aware balancing and communication accounting.
//!
//! [`TopoCluster`] runs the practical SPAA'93 balancer on an explicit
//! [`Topology`], in one of two partner modes:
//!
//! * [`PartnerMode::GlobalRandom`] — the paper's analyzed model: partners
//!   drawn uniformly from the whole network; packets pay the real hop
//!   distance (which the paper's constant-cost assumption waves away, and
//!   this engine measures);
//! * [`PartnerMode::Neighbors`] — partners drawn from the initiator's
//!   topology neighbours only (the locality variant the paper names as
//!   further research).
//!
//! Communication is accounted by greedily matching surplus to deficit
//! members of each balance group and weighting every moved packet by the
//! hop distance it travels.

use crate::topology::Topology;
use dlb_core::balance::even_shares_into;
use dlb_core::{LoadBalancer, LoadEvent, Metrics, Params};
use dlb_pool::par_map;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Scratch buffers for executing one balance operation; one set per
/// executing thread (thread-local on pool workers).
#[derive(Default)]
struct TopoScratch {
    shares: Vec<u64>,
    surplus: Vec<(usize, u64)>,
    deficit: Vec<(usize, u64)>,
}

thread_local! {
    static WAVE_SCRATCH: std::cell::RefCell<TopoScratch> =
        std::cell::RefCell::new(TopoScratch::default());
}

/// What one executed operation produced; folded into the metrics and
/// communication counters in trigger order.
#[derive(Clone, Copy, Default)]
struct OpOutcome {
    packets: u64,
    packet_hops: u64,
    control_hops: u64,
}

/// Raw view of the per-processor load vectors.  Operations in one wave
/// have disjoint member sets (enforced by the planner in
/// [`TopoCluster::flush_pending`]), so concurrent executors touch
/// disjoint entries.
struct LoadsView {
    loads: *mut u64,
    l_old: *mut u64,
}

unsafe impl Send for LoadsView {}
unsafe impl Sync for LoadsView {}

/// Executes one hop-accounted equalisation over `members` (initiator
/// first): the body of [`TopoCluster::full_balance`], shared by the
/// sequential path and the wave executor.  Consumes no RNG.
///
/// # Safety
///
/// No other thread may concurrently touch the loads of `members`.
unsafe fn execute_topo_balance(
    view: &LoadsView,
    members: &[usize],
    dist: &[Vec<u32>],
    s: &mut TopoScratch,
) -> OpOutcome {
    let initiator = members[0];
    let mut out = OpOutcome::default();
    for &m in &members[1..] {
        out.control_hops += 2 * dist[initiator][m] as u64;
    }
    let total: u64 = members.iter().map(|&m| *view.loads.add(m)).sum();
    even_shares_into(total, members.len(), &mut s.shares);

    // Surplus -> deficit greedy matching for hop accounting.
    s.surplus.clear();
    s.deficit.clear();
    for (&m, &share) in members.iter().zip(s.shares.iter()) {
        let load = *view.loads.add(m);
        if load > share {
            s.surplus.push((m, load - share));
        } else if share > load {
            s.deficit.push((m, share - load));
        }
    }
    let mut di = 0usize;
    for &(from, excess) in &s.surplus {
        let mut excess = excess;
        while excess > 0 && di < s.deficit.len() {
            let (to, need) = s.deficit[di];
            let x = excess.min(need);
            out.packets += x;
            out.packet_hops += x * dist[from][to] as u64;
            excess -= x;
            if need == x {
                di += 1;
            } else {
                s.deficit[di].1 = need - x;
            }
        }
    }
    for (&m, &share) in members.iter().zip(s.shares.iter()) {
        *view.loads.add(m) = share;
        *view.l_old.add(m) = share;
    }
    out
}

/// How balance partners are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartnerMode {
    /// Uniformly from all other processors (the paper's model).
    GlobalRandom,
    /// Uniformly from the initiator's topology neighbours.
    Neighbors,
}

/// Hop-weighted communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Balancing operations performed.
    pub ops: u64,
    /// Packets moved, each counted once.
    pub packets: u64,
    /// Packets × hop distance travelled.
    pub packet_hops: u64,
    /// Control messages × hop distance (one round trip per partner).
    pub control_hops: u64,
}

/// The practical balancer on an explicit topology with communication
/// accounting.
pub struct TopoCluster {
    params: Params,
    topology: Topology,
    mode: PartnerMode,
    loads: Vec<u64>,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    comm: CommStats,
    /// All-pairs hop distances, precomputed once.
    dist: Vec<Vec<u32>>,
    scratch_members: Vec<usize>,
    scratch_sample: Vec<usize>,
    scratch_exec: TopoScratch,
    /// Wave-executor parallelism; 1 executes every operation inline.
    step_jobs: usize,
    /// Flushes with fewer queued operations than this run sequentially
    /// (see [`LoadBalancer::set_wave_threshold`]).
    wave_threshold: usize,
    /// Member lists of deferred operations, flat, initiator first.
    pending_members: Vec<usize>,
    /// Member-list length per deferred operation (variable in
    /// [`PartnerMode::Neighbors`]).
    pending_lens: Vec<u32>,
    /// `pending_member[i]` — processor `i` belongs to a deferred
    /// operation, so its load is stale until the next flush.
    pending_member: Vec<bool>,
    /// Planner state: one past the last wave touching each processor.
    wave_mark: Vec<u32>,
    scratch_offsets: Vec<usize>,
    scratch_wave_of: Vec<u32>,
    scratch_wave_ops: Vec<usize>,
    scratch_outcomes: Vec<OpOutcome>,
}

impl TopoCluster {
    /// Creates the balancer; `params.n()` must equal the topology size.
    ///
    /// # Panics
    ///
    /// Panics on a size mismatch or a disconnected topology.
    pub fn new(params: Params, topology: Topology, mode: PartnerMode, seed: u64) -> Self {
        assert_eq!(params.n(), topology.n(), "params/topology size mismatch");
        assert!(topology.is_connected(), "topology must be connected");
        let n = topology.n();
        let dist = (0..n).map(|v| topology.distances_from(v)).collect();
        TopoCluster {
            params,
            topology,
            mode,
            loads: vec![0; n],
            l_old: vec![0; n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            comm: CommStats::default(),
            dist,
            scratch_members: Vec::new(),
            scratch_sample: Vec::new(),
            scratch_exec: TopoScratch::default(),
            step_jobs: 1,
            wave_threshold: dlb_core::DEFAULT_WAVE_THRESHOLD,
            pending_members: Vec::new(),
            pending_lens: Vec::new(),
            pending_member: vec![false; n],
            wave_mark: vec![0; n],
            scratch_offsets: Vec::new(),
            scratch_wave_of: Vec::new(),
            scratch_wave_ops: Vec::new(),
            scratch_outcomes: Vec::new(),
        }
    }

    /// Communication counters.
    pub fn comm(&self) -> &CommStats {
        &self.comm
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Hop distance between two processors (precomputed).
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist[a][b]
    }

    /// The vendored `rand::seq::index::sample` Floyd loop, inlined into a
    /// scratch buffer (identical RNG consumption, no allocation).
    fn draw_sample(&mut self, length: usize, amount: usize, raw: &mut Vec<usize>) {
        raw.clear();
        for j in (length - amount)..length {
            let t = self.rng.gen_range(0..=j);
            if raw.contains(&t) {
                raw.push(j);
            } else {
                raw.push(t);
            }
        }
    }

    /// Appends the initiator's balance partners to `out`.
    fn partners_into(&mut self, initiator: usize, out: &mut Vec<usize>) {
        let delta = self.params.delta();
        let mut raw = std::mem::take(&mut self.scratch_sample);
        match self.mode {
            PartnerMode::GlobalRandom => {
                let n = self.params.n();
                self.draw_sample(n - 1, delta, &mut raw);
                out.extend(raw.iter().map(|&x| if x >= initiator { x + 1 } else { x }));
            }
            PartnerMode::Neighbors => {
                // `neighbors` allocates its adjacency list — acceptable,
                // as it is the topology's public API and only the sampled
                // subset path is hot.
                let nbrs = self.topology.neighbors(initiator);
                if nbrs.len() <= delta {
                    out.extend_from_slice(&nbrs);
                } else {
                    self.draw_sample(nbrs.len(), delta, &mut raw);
                    out.extend(raw.iter().map(|&i| nbrs[i]));
                }
            }
        }
        self.scratch_sample = raw;
    }

    fn trigger_check(&mut self, i: usize) {
        let (cur, last) = (self.loads[i], self.l_old[i]);
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i);
        }
    }

    /// Draw phase of one balance operation: consumes RNG for partner
    /// selection, then either executes inline (`step_jobs == 1`) or
    /// defers the operation for the next conflict-free wave flush.
    /// Either way the observable results are identical — execution
    /// consumes no RNG and waves preserve trigger order per processor.
    fn full_balance(&mut self, initiator: usize) {
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        members.push(initiator);
        self.partners_into(initiator, &mut members);
        if self.step_jobs > 1 {
            self.pending_lens.push(members.len() as u32);
            for &m in &members {
                self.pending_members.push(m);
                self.pending_member[m] = true;
            }
            self.scratch_members = members;
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch_exec);
        let view = LoadsView {
            loads: self.loads.as_mut_ptr(),
            l_old: self.l_old.as_mut_ptr(),
        };
        let out = unsafe { execute_topo_balance(&view, &members, &self.dist, &mut scratch) };
        self.scratch_exec = scratch;
        self.fold_outcome(&members, out);
        self.scratch_members = members;
    }

    /// Accounts one executed operation; called in trigger order so the
    /// counters accumulate exactly as in sequential execution.
    fn fold_outcome(&mut self, members: &[usize], out: OpOutcome) {
        self.metrics.balance_ops += 1;
        self.comm.ops += 1;
        self.metrics.messages += members.len() as u64;
        self.comm.control_hops += out.control_hops;
        self.comm.packets += out.packets;
        self.comm.packet_hops += out.packet_hops;
        self.metrics.packets_migrated += out.packets;
    }

    /// Executes every deferred operation: plans conflict-free waves
    /// greedily in trigger order, runs each wave on the shared worker
    /// pool, then folds the outcomes back in trigger order.
    fn flush_pending(&mut self) {
        if self.pending_lens.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_members);
        let lens = std::mem::take(&mut self.pending_lens);
        let count = lens.len();
        for &p in &pending {
            self.pending_member[p] = false;
        }
        let step_jobs = self.step_jobs;
        let mut offsets = std::mem::take(&mut self.scratch_offsets);
        offsets.clear();
        let mut acc = 0usize;
        for &len in &lens {
            offsets.push(acc);
            acc += len as usize;
        }
        let mut outcomes = std::mem::take(&mut self.scratch_outcomes);
        outcomes.clear();
        let mut wave_of = std::mem::take(&mut self.scratch_wave_of);
        let mut wave_ops = std::mem::take(&mut self.scratch_wave_ops);
        if count < self.wave_threshold {
            // Tiny flush: wave planning and pool dispatch cost more than
            // they save, and sequential execution in trigger order is
            // exactly the per-processor order the waves reproduce — so
            // skip the machinery (bit-identical results either way).
            let mut scratch = std::mem::take(&mut self.scratch_exec);
            let view = LoadsView {
                loads: self.loads.as_mut_ptr(),
                l_old: self.l_old.as_mut_ptr(),
            };
            for k in 0..count {
                let members = &pending[offsets[k]..offsets[k] + lens[k] as usize];
                outcomes.push(unsafe {
                    execute_topo_balance(&view, members, &self.dist, &mut scratch)
                });
            }
            self.scratch_exec = scratch;
        } else {
            wave_of.clear();
            let mut waves = 0u32;
            for k in 0..count {
                let members = &pending[offsets[k]..offsets[k] + lens[k] as usize];
                let w = members
                    .iter()
                    .map(|&mm| self.wave_mark[mm])
                    .max()
                    .unwrap_or(0);
                for &mm in members {
                    self.wave_mark[mm] = w + 1;
                }
                wave_of.push(w);
                waves = waves.max(w + 1);
            }
            for &p in &pending {
                self.wave_mark[p] = 0;
            }
            outcomes.resize(count, OpOutcome::default());
            let view = LoadsView {
                loads: self.loads.as_mut_ptr(),
                l_old: self.l_old.as_mut_ptr(),
            };
            let dist = &self.dist;
            for w in 0..waves {
                wave_ops.clear();
                wave_ops.extend((0..count).filter(|&k| wave_of[k] == w));
                let view = &view;
                let pending = &pending;
                let wave_ops = &wave_ops;
                let offsets = &offsets;
                let lens = &lens;
                let results = par_map(step_jobs.min(wave_ops.len()), wave_ops.len(), |i| {
                    let k = wave_ops[i];
                    let members = &pending[offsets[k]..offsets[k] + lens[k] as usize];
                    WAVE_SCRATCH.with(|s| unsafe {
                        execute_topo_balance(view, members, dist, &mut s.borrow_mut())
                    })
                });
                for (i, out) in results.into_iter().enumerate() {
                    outcomes[wave_ops[i]] = out;
                }
            }
        }
        for (k, out) in outcomes.iter().enumerate() {
            let members = &pending[offsets[k]..offsets[k] + lens[k] as usize];
            self.fold_outcome(members, *out);
        }
        outcomes.clear();
        self.scratch_outcomes = outcomes;
        self.scratch_wave_of = wave_of;
        self.scratch_wave_ops = wave_ops;
        self.scratch_offsets = offsets;
        let (mut pending, mut lens) = (pending, lens);
        pending.clear();
        lens.clear();
        self.pending_members = pending;
        self.pending_lens = lens;
    }
}

impl LoadBalancer for TopoCluster {
    fn n(&self) -> usize {
        self.params.n()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            // A non-idle event reads this processor's load; if a
            // deferred operation touches it, settle the backlog first so
            // the read matches sequential execution.
            if self.pending_member[i] && !matches!(ev, LoadEvent::Idle) {
                self.flush_pending();
            }
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                    self.trigger_check(i);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                        self.trigger_check(i);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        // Deferred operations never cross a step boundary: observers
        // read loads and counters between steps.
        self.flush_pending();
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn set_step_jobs(&mut self, jobs: usize) {
        self.step_jobs = jobs.max(1);
    }

    fn set_wave_threshold(&mut self, threshold: usize) {
        self.wave_threshold = threshold;
    }

    fn name(&self) -> &'static str {
        match self.mode {
            PartnerMode::GlobalRandom => "spaa93-topo-global",
            PartnerMode::Neighbors => "spaa93-topo-neighbors",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::imbalance_stats;

    fn run_gen(mut cluster: TopoCluster, steps: usize) -> TopoCluster {
        let events = vec![LoadEvent::Generate; cluster.n()];
        for _ in 0..steps {
            cluster.step(&events);
        }
        cluster
    }

    #[test]
    fn complete_graph_packets_travel_one_hop() {
        let params = Params::paper_section7(8);
        let topo = Topology::Complete { n: 8 };
        let c = run_gen(
            TopoCluster::new(params, topo, PartnerMode::GlobalRandom, 1),
            200,
        );
        assert_eq!(
            c.comm().packet_hops,
            c.comm().packets,
            "all distances are 1"
        );
        assert!(c.comm().ops > 0);
    }

    fn run_one_producer(mut cluster: TopoCluster, steps: usize) -> TopoCluster {
        let mut events = vec![LoadEvent::Idle; cluster.n()];
        events[0] = LoadEvent::Generate;
        for _ in 0..steps {
            cluster.step(&events);
        }
        cluster
    }

    #[test]
    fn ring_global_pays_more_hops_than_neighbors() {
        let params = Params::new(16, 1, 1.1, 4).unwrap();
        let topo = Topology::Ring { n: 16 };
        let global = run_one_producer(
            TopoCluster::new(params, topo.clone(), PartnerMode::GlobalRandom, 2),
            400,
        );
        let local = run_one_producer(
            TopoCluster::new(params, topo, PartnerMode::Neighbors, 2),
            400,
        );
        let g_per_packet = global.comm().packet_hops as f64 / global.comm().packets.max(1) as f64;
        let l_per_packet = local.comm().packet_hops as f64 / local.comm().packets.max(1) as f64;
        assert!(
            g_per_packet > l_per_packet,
            "global {g_per_packet} hops/packet vs neighbour {l_per_packet}"
        );
        assert!(
            (l_per_packet - 1.0).abs() < 1e-9,
            "neighbour packets travel 1 hop"
        );
    }

    #[test]
    fn both_modes_balance_a_producer() {
        // Locality tradeoff: neighbour-only balancing spreads work
        // diffusively (slower, cheaper links), global random spreads fast.
        let params = Params::new(16, 2, 1.3, 4).unwrap();
        for (mode, bound) in [
            (PartnerMode::GlobalRandom, 3.0),
            (PartnerMode::Neighbors, 10.0),
        ] {
            let topo = Topology::Torus2D { w: 4, h: 4 };
            let cluster = run_one_producer(TopoCluster::new(params, topo, mode, 3), 3000);
            let stats = imbalance_stats(&cluster.loads());
            assert_eq!(stats.mean * 16.0, 3000.0);
            assert!(stats.max_over_mean < bound, "{mode:?}: {stats:?}");
            assert!(stats.max < 3000, "{mode:?} must shed load");
        }
    }

    #[test]
    fn conservation_under_mixed_events() {
        let params = Params::paper_section7(9);
        let topo = Topology::Torus2D { w: 3, h: 3 };
        let mut cluster = TopoCluster::new(params, topo, PartnerMode::Neighbors, 5);
        let events: Vec<LoadEvent> = (0..9)
            .map(|i| {
                if i % 2 == 0 {
                    LoadEvent::Generate
                } else {
                    LoadEvent::Consume
                }
            })
            .collect();
        for _ in 0..500 {
            cluster.step(&events);
        }
        let total: u64 = cluster.loads().iter().sum();
        let m = cluster.metrics();
        assert_eq!(total, m.generated - m.consumed);
    }

    #[test]
    fn step_jobs_is_bit_identical_in_both_modes() {
        for mode in [PartnerMode::GlobalRandom, PartnerMode::Neighbors] {
            let params = Params::paper_section7(16);
            let topo = Topology::Torus2D { w: 4, h: 4 };
            let events: Vec<LoadEvent> = (0..16)
                .map(|i| match i % 3 {
                    0 => LoadEvent::Generate,
                    1 => LoadEvent::Consume,
                    _ => LoadEvent::Idle,
                })
                .collect();
            let run = |jobs: usize, threshold: usize| {
                let mut c = TopoCluster::new(params, topo.clone(), mode, 7);
                c.set_step_jobs(jobs);
                c.set_wave_threshold(threshold);
                for _ in 0..400 {
                    c.step(&events);
                }
                (c.loads.clone(), c.l_old.clone(), *c.metrics(), *c.comm())
            };
            let seq = run(1, dlb_core::DEFAULT_WAVE_THRESHOLD);
            for jobs in [2, 4, 8] {
                // Threshold 0 forces waves; the default takes the
                // sequential fallback at this size.  Both must match.
                for threshold in [0, dlb_core::DEFAULT_WAVE_THRESHOLD] {
                    assert_eq!(
                        run(jobs, threshold),
                        seq,
                        "{mode:?} step_jobs={jobs} threshold={threshold}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_rejected() {
        let params = Params::paper_section7(8);
        TopoCluster::new(
            params,
            Topology::Ring { n: 9 },
            PartnerMode::GlobalRandom,
            0,
        );
    }
}
