//! Topology-aware balancing and communication accounting.
//!
//! [`TopoCluster`] runs the practical SPAA'93 balancer on an explicit
//! [`Topology`], in one of two partner modes:
//!
//! * [`PartnerMode::GlobalRandom`] — the paper's analyzed model: partners
//!   drawn uniformly from the whole network; packets pay the real hop
//!   distance (which the paper's constant-cost assumption waves away, and
//!   this engine measures);
//! * [`PartnerMode::Neighbors`] — partners drawn from the initiator's
//!   topology neighbours only (the locality variant the paper names as
//!   further research).
//!
//! Communication is accounted by greedily matching surplus to deficit
//! members of each balance group and weighting every moved packet by the
//! hop distance it travels.

use crate::topology::Topology;
use dlb_core::balance::even_shares_into;
use dlb_core::{LoadBalancer, LoadEvent, Metrics, Params};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// How balance partners are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartnerMode {
    /// Uniformly from all other processors (the paper's model).
    GlobalRandom,
    /// Uniformly from the initiator's topology neighbours.
    Neighbors,
}

/// Hop-weighted communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Balancing operations performed.
    pub ops: u64,
    /// Packets moved, each counted once.
    pub packets: u64,
    /// Packets × hop distance travelled.
    pub packet_hops: u64,
    /// Control messages × hop distance (one round trip per partner).
    pub control_hops: u64,
}

/// The practical balancer on an explicit topology with communication
/// accounting.
pub struct TopoCluster {
    params: Params,
    topology: Topology,
    mode: PartnerMode,
    loads: Vec<u64>,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    comm: CommStats,
    /// All-pairs hop distances, precomputed once.
    dist: Vec<Vec<u32>>,
    scratch_members: Vec<usize>,
    scratch_shares: Vec<u64>,
    scratch_surplus: Vec<(usize, u64)>,
    scratch_deficit: Vec<(usize, u64)>,
    scratch_sample: Vec<usize>,
}

impl TopoCluster {
    /// Creates the balancer; `params.n()` must equal the topology size.
    ///
    /// # Panics
    ///
    /// Panics on a size mismatch or a disconnected topology.
    pub fn new(params: Params, topology: Topology, mode: PartnerMode, seed: u64) -> Self {
        assert_eq!(params.n(), topology.n(), "params/topology size mismatch");
        assert!(topology.is_connected(), "topology must be connected");
        let n = topology.n();
        let dist = (0..n).map(|v| topology.distances_from(v)).collect();
        TopoCluster {
            params,
            topology,
            mode,
            loads: vec![0; n],
            l_old: vec![0; n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            comm: CommStats::default(),
            dist,
            scratch_members: Vec::new(),
            scratch_shares: Vec::new(),
            scratch_surplus: Vec::new(),
            scratch_deficit: Vec::new(),
            scratch_sample: Vec::new(),
        }
    }

    /// Communication counters.
    pub fn comm(&self) -> &CommStats {
        &self.comm
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Hop distance between two processors (precomputed).
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist[a][b]
    }

    /// The vendored `rand::seq::index::sample` Floyd loop, inlined into a
    /// scratch buffer (identical RNG consumption, no allocation).
    fn draw_sample(&mut self, length: usize, amount: usize, raw: &mut Vec<usize>) {
        raw.clear();
        for j in (length - amount)..length {
            let t = self.rng.gen_range(0..=j);
            if raw.contains(&t) {
                raw.push(j);
            } else {
                raw.push(t);
            }
        }
    }

    /// Appends the initiator's balance partners to `out`.
    fn partners_into(&mut self, initiator: usize, out: &mut Vec<usize>) {
        let delta = self.params.delta();
        let mut raw = std::mem::take(&mut self.scratch_sample);
        match self.mode {
            PartnerMode::GlobalRandom => {
                let n = self.params.n();
                self.draw_sample(n - 1, delta, &mut raw);
                out.extend(raw.iter().map(|&x| if x >= initiator { x + 1 } else { x }));
            }
            PartnerMode::Neighbors => {
                // `neighbors` allocates its adjacency list — acceptable,
                // as it is the topology's public API and only the sampled
                // subset path is hot.
                let nbrs = self.topology.neighbors(initiator);
                if nbrs.len() <= delta {
                    out.extend_from_slice(&nbrs);
                } else {
                    self.draw_sample(nbrs.len(), delta, &mut raw);
                    out.extend(raw.iter().map(|&i| nbrs[i]));
                }
            }
        }
        self.scratch_sample = raw;
    }

    fn trigger_check(&mut self, i: usize) {
        let (cur, last) = (self.loads[i], self.l_old[i]);
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i);
        }
    }

    fn full_balance(&mut self, initiator: usize) {
        self.metrics.balance_ops += 1;
        self.comm.ops += 1;
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        members.push(initiator);
        self.partners_into(initiator, &mut members);
        self.metrics.messages += members.len() as u64;
        for &m in &members[1..] {
            self.comm.control_hops += 2 * self.dist[initiator][m] as u64;
        }
        let total: u64 = members.iter().map(|&m| self.loads[m]).sum();
        let mut shares = std::mem::take(&mut self.scratch_shares);
        even_shares_into(total, members.len(), &mut shares);

        // Surplus -> deficit greedy matching for hop accounting.
        let mut surplus = std::mem::take(&mut self.scratch_surplus);
        let mut deficit = std::mem::take(&mut self.scratch_deficit);
        surplus.clear();
        deficit.clear();
        for (&m, &share) in members.iter().zip(shares.iter()) {
            if self.loads[m] > share {
                surplus.push((m, self.loads[m] - share));
            } else if share > self.loads[m] {
                deficit.push((m, share - self.loads[m]));
            }
        }
        let mut di = 0usize;
        for &(from, excess) in &surplus {
            let mut excess = excess;
            while excess > 0 && di < deficit.len() {
                let (to, need) = deficit[di];
                let x = excess.min(need);
                self.comm.packets += x;
                self.comm.packet_hops += x * self.dist[from][to] as u64;
                self.metrics.packets_migrated += x;
                excess -= x;
                if need == x {
                    di += 1;
                } else {
                    deficit[di].1 = need - x;
                }
            }
        }
        for (&m, &share) in members.iter().zip(shares.iter()) {
            self.loads[m] = share;
            self.l_old[m] = share;
        }
        self.scratch_surplus = surplus;
        self.scratch_deficit = deficit;
        self.scratch_shares = shares;
        self.scratch_members = members;
    }
}

impl LoadBalancer for TopoCluster {
    fn n(&self) -> usize {
        self.params.n()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                    self.trigger_check(i);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                        self.trigger_check(i);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        match self.mode {
            PartnerMode::GlobalRandom => "spaa93-topo-global",
            PartnerMode::Neighbors => "spaa93-topo-neighbors",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::imbalance_stats;

    fn run_gen(mut cluster: TopoCluster, steps: usize) -> TopoCluster {
        let events = vec![LoadEvent::Generate; cluster.n()];
        for _ in 0..steps {
            cluster.step(&events);
        }
        cluster
    }

    #[test]
    fn complete_graph_packets_travel_one_hop() {
        let params = Params::paper_section7(8);
        let topo = Topology::Complete { n: 8 };
        let c = run_gen(
            TopoCluster::new(params, topo, PartnerMode::GlobalRandom, 1),
            200,
        );
        assert_eq!(
            c.comm().packet_hops,
            c.comm().packets,
            "all distances are 1"
        );
        assert!(c.comm().ops > 0);
    }

    fn run_one_producer(mut cluster: TopoCluster, steps: usize) -> TopoCluster {
        let mut events = vec![LoadEvent::Idle; cluster.n()];
        events[0] = LoadEvent::Generate;
        for _ in 0..steps {
            cluster.step(&events);
        }
        cluster
    }

    #[test]
    fn ring_global_pays_more_hops_than_neighbors() {
        let params = Params::new(16, 1, 1.1, 4).unwrap();
        let topo = Topology::Ring { n: 16 };
        let global = run_one_producer(
            TopoCluster::new(params, topo.clone(), PartnerMode::GlobalRandom, 2),
            400,
        );
        let local = run_one_producer(
            TopoCluster::new(params, topo, PartnerMode::Neighbors, 2),
            400,
        );
        let g_per_packet = global.comm().packet_hops as f64 / global.comm().packets.max(1) as f64;
        let l_per_packet = local.comm().packet_hops as f64 / local.comm().packets.max(1) as f64;
        assert!(
            g_per_packet > l_per_packet,
            "global {g_per_packet} hops/packet vs neighbour {l_per_packet}"
        );
        assert!(
            (l_per_packet - 1.0).abs() < 1e-9,
            "neighbour packets travel 1 hop"
        );
    }

    #[test]
    fn both_modes_balance_a_producer() {
        // Locality tradeoff: neighbour-only balancing spreads work
        // diffusively (slower, cheaper links), global random spreads fast.
        let params = Params::new(16, 2, 1.3, 4).unwrap();
        for (mode, bound) in [
            (PartnerMode::GlobalRandom, 3.0),
            (PartnerMode::Neighbors, 10.0),
        ] {
            let topo = Topology::Torus2D { w: 4, h: 4 };
            let cluster = run_one_producer(TopoCluster::new(params, topo, mode, 3), 3000);
            let stats = imbalance_stats(&cluster.loads());
            assert_eq!(stats.mean * 16.0, 3000.0);
            assert!(stats.max_over_mean < bound, "{mode:?}: {stats:?}");
            assert!(stats.max < 3000, "{mode:?} must shed load");
        }
    }

    #[test]
    fn conservation_under_mixed_events() {
        let params = Params::paper_section7(9);
        let topo = Topology::Torus2D { w: 3, h: 3 };
        let mut cluster = TopoCluster::new(params, topo, PartnerMode::Neighbors, 5);
        let events: Vec<LoadEvent> = (0..9)
            .map(|i| {
                if i % 2 == 0 {
                    LoadEvent::Generate
                } else {
                    LoadEvent::Consume
                }
            })
            .collect();
        for _ in 0..500 {
            cluster.step(&events);
        }
        let total: u64 = cluster.loads().iter().sum();
        let m = cluster.metrics();
        assert_eq!(total, m.generated - m.consumed);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_rejected() {
        let params = Params::paper_section7(8);
        TopoCluster::new(
            params,
            Topology::Ring { n: 9 },
            PartnerMode::GlobalRandom,
            0,
        );
    }
}
