//! Dimension-exchange load balancing (the alternating-direction
//! first-order scheme analysed alongside diffusion in Berenbrink,
//! Friedetzky, Kling, Mallmann-Trenn, *Randomized Diffusion for
//! Indivisible Loads*, arXiv:1308.0148).
//!
//! The network is decomposed into perfect (or near-perfect) matchings —
//! the *dimensions* — and the balancer cycles through them, one matching
//! per step.  Each matched pair levels its load exactly: the heavier
//! endpoint sends `⌊(a − b)/2⌋` tokens to the lighter one.  On the
//! `d`-dimensional hypercube the matchings are the canonical bit-flip
//! pairings `v ↔ v ⊕ 2^k`; rings get the odd/even edge matchings, and
//! 2-D tori the four row/column matchings.  Fully deterministic.

use crate::apply_events;
use dlb_core::{LoadBalancer, LoadEvent, Metrics};
use dlb_net::Topology;
use dlb_trace::{SharedSink, TraceEvent};

/// Matching-based dimension-exchange balancer.
pub struct DimensionExchange {
    /// `phases[p][v]` = partner of `v` in matching `p` (or `v` itself
    /// when `v` is unmatched in that phase).
    phases: Vec<Vec<u32>>,
    loads: Vec<u64>,
    metrics: Metrics,
    sink: Option<SharedSink>,
    step: u64,
}

/// Pairs consecutive vertices of one cycle, starting at `parity`, and
/// writes the pairing into `partner`.
fn cycle_matching(ids: &[usize], parity: usize, partner: &mut [u32]) {
    let len = ids.len();
    if len < 2 {
        return;
    }
    for k in (parity..len).step_by(2) {
        let a = ids[k];
        let b = ids[(k + 1) % len];
        if a != b && partner[a] as usize == a && partner[b] as usize == b {
            partner[a] = b as u32;
            partner[b] = a as u32;
        }
    }
}

impl DimensionExchange {
    /// Dimension exchange on `topology`.
    ///
    /// # Panics
    /// If the topology is not a hypercube, ring, or 2-D torus — the
    /// families with a canonical matching decomposition.
    pub fn new(topology: Topology) -> Self {
        let n = topology.n();
        assert!(n >= 2, "need at least two processors");
        let identity = |n: usize| (0..n as u32).collect::<Vec<u32>>();
        let mut phases: Vec<Vec<u32>> = match topology {
            Topology::Hypercube { dim } => (0..dim)
                .map(|d| (0..n).map(|v| (v ^ (1 << d)) as u32).collect())
                .collect(),
            Topology::Ring { n } => {
                let ids: Vec<usize> = (0..n).collect();
                (0..2)
                    .map(|parity| {
                        let mut partner = identity(n);
                        cycle_matching(&ids, parity, &mut partner);
                        partner
                    })
                    .collect()
            }
            Topology::Torus2D { w, h } => {
                let mut phases = Vec::with_capacity(4);
                for parity in 0..2 {
                    let mut partner = identity(n);
                    for y in 0..h {
                        let row: Vec<usize> = (0..w).map(|x| y * w + x).collect();
                        cycle_matching(&row, parity, &mut partner);
                    }
                    phases.push(partner);
                }
                for parity in 0..2 {
                    let mut partner = identity(n);
                    for x in 0..w {
                        let col: Vec<usize> = (0..h).map(|y| y * w + x).collect();
                        cycle_matching(&col, parity, &mut partner);
                    }
                    phases.push(partner);
                }
                phases
            }
            other => panic!(
                "dimension exchange needs a hypercube, torus or ring topology, got {other:?}"
            ),
        };
        // Drop degenerate all-identity matchings (e.g. the second parity
        // of a 2-cycle) so every phase does work.
        phases.retain(|p| p.iter().enumerate().any(|(v, &u)| u as usize != v));
        assert!(!phases.is_empty(), "topology yields no usable matching");
        DimensionExchange {
            phases,
            loads: vec![0; n],
            metrics: Metrics::new(),
            sink: None,
            step: 0,
        }
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: Option<&[bool]>) {
        apply_events(&mut self.loads, &mut self.metrics, events, down);
        let DimensionExchange {
            phases,
            loads,
            metrics,
            sink,
            step,
        } = self;
        let alive = |v: usize| down.is_none_or(|d| !d[v]);
        let trace_on = sink.as_ref().is_some_and(|s| s.enabled());
        let partner = &phases[(*step % phases.len() as u64) as usize];
        for v in 0..loads.len() {
            let u = partner[v] as usize;
            // Each matched edge once (u == v covers unmatched vertices);
            // a pair with a crashed endpoint sits the phase out.
            if u <= v || !alive(v) || !alive(u) {
                continue;
            }
            let (a, b) = (loads[v], loads[u]);
            let give = a.abs_diff(b) / 2;
            let (hi, lo) = if a >= b { (v, u) } else { (u, v) };
            loads[hi] -= give;
            loads[lo] += give;
            metrics.balance_ops += 1;
            metrics.messages += 2;
            if give > 0 {
                metrics.packets_migrated += give;
                if trace_on {
                    if let Some(s) = sink.as_ref() {
                        s.record(&TraceEvent::PacketsMigrated {
                            step: *step,
                            initiator: hi as u64,
                            count: give,
                        });
                    }
                }
            }
        }
        *step += 1;
    }
}

impl LoadBalancer for DimensionExchange {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, None);
    }

    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, Some(down));
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "dimension-exchange"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::imbalance_stats;

    fn spike_events(n: usize) -> Vec<LoadEvent> {
        let mut ev = vec![LoadEvent::Idle; n];
        ev[0] = LoadEvent::Generate;
        ev
    }

    #[test]
    fn hypercube_matchings_flip_each_bit() {
        let b = DimensionExchange::new(Topology::Hypercube { dim: 3 });
        assert_eq!(b.phases.len(), 3);
        for (d, phase) in b.phases.iter().enumerate() {
            for (v, &partner) in phase.iter().enumerate() {
                assert_eq!(partner as usize, v ^ (1 << d));
            }
        }
    }

    #[test]
    fn matchings_are_involutions_over_edges() {
        for topo in [
            Topology::Ring { n: 7 },
            Topology::Ring { n: 8 },
            Topology::Torus2D { w: 3, h: 4 },
            Topology::Hypercube { dim: 4 },
        ] {
            let b = DimensionExchange::new(topo.clone());
            for phase in &b.phases {
                for v in 0..topo.n() {
                    let u = phase[v] as usize;
                    assert_eq!(phase[u] as usize, v, "{topo:?} not an involution");
                    if u != v {
                        assert!(
                            topo.neighbors(v).contains(&u),
                            "{topo:?} pairs non-neighbours {v},{u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flattens_a_hypercube_spike() {
        let mut b = DimensionExchange::new(Topology::Hypercube { dim: 4 });
        let ev = spike_events(16);
        for _ in 0..800 {
            b.step(&ev);
        }
        let idle = vec![LoadEvent::Idle; 16];
        for _ in 0..64 {
            b.step(&idle);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 800, "conservation");
        let stats = imbalance_stats(&loads);
        assert!(stats.max_over_mean < 1.2, "{loads:?}");
    }

    #[test]
    fn crashed_pairs_sit_out_the_phase() {
        let mut b = DimensionExchange::new(Topology::Ring { n: 6 });
        let ev = spike_events(6);
        for _ in 0..60 {
            b.step(&ev);
        }
        let down = vec![false, false, false, true, false, false];
        let frozen = b.loads()[3];
        for _ in 0..60 {
            b.step_masked(&ev, &down);
        }
        assert_eq!(b.loads()[3], frozen, "crashed load must not change");
        assert_eq!(b.loads().iter().sum::<u64>(), 120, "conservation");
    }
}
