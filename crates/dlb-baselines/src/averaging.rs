//! Dynamic averaging load balancing on arbitrary graphs (Berenbrink,
//! Hintze, Hosseinpour, Kaaser, Rau, *Dynamic Averaging Load Balancing
//! on Arbitrary Graphs*, arXiv:2302.12201).
//!
//! The protocol is pairwise averaging with indivisible tokens: when a
//! processor activates it picks a uniformly random neighbour and the
//! pair redistributes its combined load as evenly as possible (an odd
//! total leaves one token with a fair-coin winner, so neither endpoint
//! is systematically favoured).  Here every live processor activates
//! once per global step, in index order with in-place updates — the
//! synchronous-scan rendering of the paper's asynchronous clocks, which
//! keeps runs deterministic for a fixed seed.

use crate::adjacency::Adjacency;
use crate::apply_events;
use dlb_core::{LoadBalancer, LoadEvent, Metrics};
use dlb_net::Topology;
use dlb_trace::{SharedSink, TraceEvent};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Pairwise averaging with a random neighbour, every step.
pub struct DynamicAveraging {
    adj: Adjacency,
    loads: Vec<u64>,
    metrics: Metrics,
    rng: ChaCha8Rng,
    sink: Option<SharedSink>,
    step: u64,
}

impl DynamicAveraging {
    /// Averaging on `topology`, seeded for the partner/tie-break draws.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let adj = Adjacency::new(&topology);
        let n = adj.n();
        assert!(n >= 2, "need at least two processors");
        DynamicAveraging {
            adj,
            loads: vec![0; n],
            metrics: Metrics::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            sink: None,
            step: 0,
        }
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: Option<&[bool]>) {
        apply_events(&mut self.loads, &mut self.metrics, events, down);
        let DynamicAveraging {
            adj,
            loads,
            metrics,
            rng,
            sink,
            step,
        } = self;
        let alive = |v: usize| down.is_none_or(|d| !d[v]);
        let trace_on = sink.as_ref().is_some_and(|s| s.enabled());
        for i in 0..loads.len() {
            if !alive(i) {
                continue;
            }
            let neigh = adj.neighbors(i);
            if neigh.is_empty() {
                continue;
            }
            // Draw the partner uniformly among *live* neighbours; with no
            // mask (or an all-false one) this consumes exactly one draw
            // over the full neighbour list, so masked and unmasked runs
            // agree whenever nobody is down.
            let j = if down.is_none() {
                neigh[rng.gen_range(0..neigh.len())] as usize
            } else {
                let d_alive = neigh.iter().filter(|&&u| alive(u as usize)).count();
                if d_alive == 0 {
                    continue;
                }
                let k = rng.gen_range(0..d_alive);
                *neigh
                    .iter()
                    .filter(|&&u| alive(u as usize))
                    .nth(k)
                    .expect("k < d_alive") as usize
            };
            let (a, b) = (loads[i], loads[j]);
            let total = a + b;
            let mut new_i = total / 2;
            // An odd total leaves one indivisible token: fair coin.
            if total % 2 == 1 && rng.gen_bool(0.5) {
                new_i += 1;
            }
            let new_j = total - new_i;
            let moved = a.abs_diff(new_i);
            loads[i] = new_i;
            loads[j] = new_j;
            metrics.balance_ops += 1;
            metrics.messages += 2;
            if moved > 0 {
                metrics.packets_migrated += moved;
                if trace_on {
                    if let Some(s) = sink.as_ref() {
                        s.record(&TraceEvent::PacketsMigrated {
                            step: *step,
                            initiator: i as u64,
                            count: moved,
                        });
                    }
                }
            }
        }
        *step += 1;
    }
}

impl LoadBalancer for DynamicAveraging {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, None);
    }

    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, Some(down));
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "dynamic-averaging"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::imbalance_stats;

    fn spike_events(n: usize) -> Vec<LoadEvent> {
        let mut ev = vec![LoadEvent::Idle; n];
        ev[0] = LoadEvent::Generate;
        ev
    }

    #[test]
    fn averaging_flattens_a_spike() {
        let mut b = DynamicAveraging::new(Topology::Hypercube { dim: 3 }, 9);
        let ev = spike_events(8);
        for _ in 0..400 {
            b.step(&ev);
        }
        let idle = vec![LoadEvent::Idle; 8];
        for _ in 0..60 {
            b.step(&idle);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 400, "conservation");
        let stats = imbalance_stats(&loads);
        assert!(stats.max_over_mean < 1.25, "{loads:?}");
        assert!(b.metrics().packets_migrated > 0);
    }

    #[test]
    fn same_seed_reproduces_masked_runs() {
        let mk = || DynamicAveraging::new(Topology::Ring { n: 6 }, 4);
        let (mut a, mut b) = (mk(), mk());
        let ev = spike_events(6);
        let down = vec![false, false, true, false, false, false];
        for t in 0..200 {
            if t % 3 == 0 {
                a.step_masked(&ev, &down);
                b.step_masked(&ev, &down);
            } else {
                a.step(&ev);
                b.step(&ev);
            }
        }
        assert_eq!(a.loads(), b.loads());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn crashed_processors_are_frozen_and_never_partnered() {
        let mut b = DynamicAveraging::new(Topology::Complete { n: 5 }, 17);
        let ev = spike_events(5);
        for _ in 0..50 {
            b.step(&ev);
        }
        let down = vec![false, false, true, false, false];
        let frozen = b.loads()[2];
        for _ in 0..100 {
            b.step_masked(&ev, &down);
        }
        assert_eq!(b.loads()[2], frozen, "crashed load must not change");
        assert_eq!(b.loads().iter().sum::<u64>(), 150, "conservation");
    }
}
