//! Baseline load balancing strategies the paper compares against or
//! cites.
//!
//! * [`NoBalance`] — null strategy: packets stay where they are generated
//!   (the do-nothing lower bound on cost and upper bound on imbalance).
//! * [`RandomScatter`] — the §5 strawman: every step each processor ships
//!   its *entire* queue to one uniformly random processor.  The expected
//!   load of every processor is equal, but the variance is enormous —
//!   the paper's argument for why expectation alone is a meaningless
//!   quality measure.
//! * [`Rsu91`] — the scheme of Rudolph, Slivkin-Allalouf and Upfal
//!   (SPAA'91, the paper's [20]): each step a processor flips a coin with
//!   probability inversely proportional to its load and, on success,
//!   balances pairwise with a uniformly random partner.
//! * [`Gradient`] — the gradient model of Lin & Keller (the paper's [6]):
//!   underloaded processors (below a low watermark) emit a demand
//!   gradient over the topology; overloaded processors (above a high
//!   watermark) forward one packet per step downhill.
//! * [`WorkStealing`] — classic random work stealing (Cilk-style): empty
//!   processors steal half of a random victim's queue.  Receiver-
//!   initiated: keeps everyone busy without equalising loads.
//! * [`Diffusion`] — first-order diffusion (Cybenko): fixed-coefficient
//!   neighbour exchange every step, the classic local iterative scheme.
//!
//! Beyond the strawmen, four rivals from the literature (see PAPERS.md)
//! give the arena real competition:
//!
//! * [`Quasirandom`] — deterministic rotor-router diffusion
//!   (Friedrich–Gairing–Sauerwald, arXiv:1006.3302).
//! * [`DynamicAveraging`] — random-neighbour pairwise averaging
//!   (Berenbrink et al., arXiv:2302.12201).
//! * [`LocallyOptimal`] — local-improvement moves to a locally optimal
//!   configuration (Feuilloley–Hirvonen–Suomela, arXiv:1502.04511).
//! * [`DimensionExchange`] — matching-based alternating exchange on
//!   hypercubes, rings and tori (arXiv:1308.0148).
//!
//! All implement [`LoadBalancer`], so every experiment can drive them
//! with the identical recorded event trace.

pub mod adjacency;
mod averaging;
mod dimension_exchange;
mod local_opt;
mod quasirandom;

pub use adjacency::Adjacency;
pub use averaging::DynamicAveraging;
pub use dimension_exchange::DimensionExchange;
pub use local_opt::LocallyOptimal;
pub use quasirandom::Quasirandom;

use dlb_core::{LoadBalancer, LoadEvent, Metrics};
use dlb_net::Topology;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Shared event-application phase for the fault-aware balancers: applies
/// generate/consume/idle to `loads`, skipping processors marked `down`
/// (a crashed processor neither generates nor consumes — its queue is
/// frozen, matching the engines' `crash_mode: frozen` semantics).
pub(crate) fn apply_events(
    loads: &mut [u64],
    metrics: &mut Metrics,
    events: &[LoadEvent],
    down: Option<&[bool]>,
) {
    assert_eq!(events.len(), loads.len(), "one event per processor");
    if let Some(d) = down {
        assert_eq!(d.len(), loads.len(), "one mask entry per processor");
    }
    for (i, &ev) in events.iter().enumerate() {
        if down.is_some_and(|d| d[i]) {
            continue;
        }
        match ev {
            LoadEvent::Generate => {
                loads[i] += 1;
                metrics.generated += 1;
            }
            LoadEvent::Consume => {
                if loads[i] > 0 {
                    loads[i] -= 1;
                    metrics.consumed += 1;
                } else {
                    metrics.consume_blocked += 1;
                }
            }
            LoadEvent::Idle => {}
        }
    }
}

/// Null strategy: no migration at all.
pub struct NoBalance {
    loads: Vec<u64>,
    metrics: Metrics,
}

impl NoBalance {
    /// A network of `n` processors.
    pub fn new(n: usize) -> Self {
        NoBalance {
            loads: vec![0; n],
            metrics: Metrics::new(),
        }
    }
}

impl LoadBalancer for NoBalance {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.loads.len(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "no-balance"
    }
}

/// §5 strawman: every step, every processor ships its whole queue to one
/// uniformly random processor.
pub struct RandomScatter {
    loads: Vec<u64>,
    /// Pre-scatter loads (struct-held scratch, reused every step).
    snapshot: Vec<u64>,
    metrics: Metrics,
    rng: ChaCha8Rng,
}

impl RandomScatter {
    /// A network of `n` processors.
    pub fn new(n: usize, seed: u64) -> Self {
        RandomScatter {
            loads: vec![0; n],
            snapshot: vec![0; n],
            metrics: Metrics::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl LoadBalancer for RandomScatter {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.loads.len(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        // Scatter phase: ship whole queues to random targets.  Moves are
        // computed against the pre-scatter snapshot so a queue moves once.
        let n = self.loads.len();
        self.snapshot.clear();
        self.snapshot.extend_from_slice(&self.loads);
        for i in 0..n {
            let l = self.snapshot[i];
            if l > 0 {
                let target = self.rng.gen_range(0..n);
                if target != i {
                    self.loads[i] -= l;
                    self.loads[target] += l;
                    self.metrics.packets_migrated += l;
                    self.metrics.messages += 1;
                }
            }
        }
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "random-scatter"
    }
}

/// Rudolph/Slivkin-Allalouf/Upfal SPAA'91: balance pairwise with a random
/// partner, with probability inversely proportional to the own load.
pub struct Rsu91 {
    loads: Vec<u64>,
    metrics: Metrics,
    rng: ChaCha8Rng,
}

impl Rsu91 {
    /// A network of `n ≥ 2` processors.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two processors");
        Rsu91 {
            loads: vec![0; n],
            metrics: Metrics::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn maybe_balance(&mut self, i: usize) {
        let l = self.loads[i].max(1);
        if !self.rng.gen_bool((1.0 / l as f64).min(1.0)) {
            return;
        }
        let n = self.loads.len();
        let mut j = self.rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let total = self.loads[i] + self.loads[j];
        let half = total / 2;
        let (new_i, new_j) = (total - half, half);
        self.metrics.packets_migrated +=
            self.loads[i].saturating_sub(new_i) + self.loads[j].saturating_sub(new_j);
        self.loads[i] = new_i;
        self.loads[j] = new_j;
        self.metrics.balance_ops += 1;
        self.metrics.messages += 2;
    }
}

impl LoadBalancer for Rsu91 {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.loads.len(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                    self.maybe_balance(i);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                        self.maybe_balance(i);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "rsu91"
    }
}

/// The Lin–Keller gradient model on an explicit topology.
pub struct Gradient {
    adj: Adjacency,
    loads: Vec<u64>,
    /// BFS distance field to the nearest underloaded node (scratch).
    dist: Vec<u32>,
    /// BFS frontier (scratch, drained every step).
    queue: std::collections::VecDeque<usize>,
    /// Pre-migration loads (scratch).
    snapshot: Vec<u64>,
    metrics: Metrics,
    /// Below this load a processor is "underloaded" and attracts packets.
    pub low_watermark: u64,
    /// Above this load a processor forwards one packet per step downhill.
    pub high_watermark: u64,
}

impl Gradient {
    /// Gradient balancer with the given watermarks (`low < high`).
    pub fn new(topology: Topology, low_watermark: u64, high_watermark: u64) -> Self {
        assert!(low_watermark < high_watermark, "watermarks must be ordered");
        let adj = Adjacency::new(&topology);
        let n = adj.n();
        Gradient {
            adj,
            loads: vec![0; n],
            dist: vec![u32::MAX; n],
            queue: std::collections::VecDeque::new(),
            snapshot: vec![0; n],
            metrics: Metrics::new(),
            low_watermark,
            high_watermark,
        }
    }

    /// Multi-source BFS distance to the nearest underloaded processor,
    /// refilled into the persistent `dist` scratch buffer.
    fn gradient_field(&mut self) {
        self.dist.fill(u32::MAX);
        self.queue.clear();
        for (v, &l) in self.loads.iter().enumerate() {
            if l <= self.low_watermark {
                self.dist[v] = 0;
                self.queue.push_back(v);
            }
        }
        while let Some(v) = self.queue.pop_front() {
            for &u in self.adj.neighbors(v) {
                let u = u as usize;
                if self.dist[u] == u32::MAX {
                    self.dist[u] = self.dist[v] + 1;
                    self.queue.push_back(u);
                }
            }
        }
    }
}

impl LoadBalancer for Gradient {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.loads.len(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        // Migration phase: every overloaded node forwards one packet one
        // hop down the demand gradient.
        self.gradient_field();
        let Gradient {
            adj,
            loads,
            dist,
            snapshot,
            metrics,
            high_watermark,
            ..
        } = self;
        snapshot.clear();
        snapshot.extend_from_slice(loads);
        for (v, &l) in snapshot.iter().enumerate() {
            if l > *high_watermark && dist[v] != 0 && dist[v] != u32::MAX {
                if let Some(next) = adj
                    .neighbors(v)
                    .iter()
                    .map(|&u| u as usize)
                    .min_by_key(|&u| dist[u])
                    .filter(|&u| dist[u] < dist[v])
                {
                    loads[v] -= 1;
                    loads[next] += 1;
                    metrics.packets_migrated += 1;
                    metrics.messages += 1;
                }
            }
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "gradient"
    }
}

/// First-order diffusion (Cybenko 1989): every step each processor
/// exchanges `α·(l_i − l_j)` packets with every topology neighbour `j`
/// (rounded down).  The textbook *local iterative* balancer this
/// literature is usually compared against: no triggers, no randomness —
/// every processor works every step, converging at the speed of the
/// graph's spectral gap.
pub struct Diffusion {
    adj: Adjacency,
    loads: Vec<u64>,
    /// Pre-diffusion loads (scratch, Jacobi snapshot).
    snapshot: Vec<u64>,
    /// Net per-node flow accumulated this step (scratch).
    delta: Vec<i64>,
    metrics: Metrics,
    /// Exchange coefficient α (0 < α ≤ 1/(max degree + 1) for stability).
    pub alpha: f64,
}

impl Diffusion {
    /// Diffusion on a topology with coefficient `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 0.5`.
    pub fn new(topology: Topology, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 0.5, "need 0 < alpha <= 0.5");
        let adj = Adjacency::new(&topology);
        let n = adj.n();
        Diffusion {
            adj,
            loads: vec![0; n],
            snapshot: vec![0; n],
            delta: vec![0; n],
            metrics: Metrics::new(),
            alpha,
        }
    }

    fn diffuse(&mut self) {
        // Compute all flows from the same snapshot (Jacobi style), then
        // apply: this keeps the step symmetric and conservative.
        let Diffusion {
            adj,
            loads,
            snapshot,
            delta,
            metrics,
            alpha,
        } = self;
        let n = loads.len();
        snapshot.clear();
        snapshot.extend_from_slice(loads);
        delta.fill(0);
        for v in 0..n {
            for &u in adj.neighbors(v) {
                let u = u as usize;
                if u <= v {
                    continue; // handle each undirected edge once
                }
                let diff = snapshot[v] as i64 - snapshot[u] as i64;
                let flow = (*alpha * diff.abs() as f64).floor() as i64 * diff.signum();
                delta[v] -= flow;
                delta[u] += flow;
                if flow != 0 {
                    metrics.packets_migrated += flow.unsigned_abs();
                    metrics.messages += 1;
                }
            }
        }
        for (l, d) in loads.iter_mut().zip(delta.iter()) {
            *l = (*l as i64 + d) as u64;
        }
    }
}

impl LoadBalancer for Diffusion {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.loads.len(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        self.diffuse();
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "diffusion"
    }
}

/// Classic random work stealing (the strategy of Cilk-style runtimes):
/// after each step, every *empty* processor picks a uniformly random
/// victim and steals half of its queue.  Receiver-initiated, so it only
/// guarantees "everyone has some work", not the paper's stronger
/// "everyone has nearly the same work".
pub struct WorkStealing {
    loads: Vec<u64>,
    metrics: Metrics,
    rng: ChaCha8Rng,
}

impl WorkStealing {
    /// A network of `n ≥ 2` processors.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two processors");
        WorkStealing {
            loads: vec![0; n],
            metrics: Metrics::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl LoadBalancer for WorkStealing {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    // Audit note: the steal phase below mutates `loads` in place and
    // allocates nothing per step — already scratch-buffer clean.
    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.loads.len(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        // Steal phase: every empty processor robs half a random victim.
        let n = self.loads.len();
        for thief in 0..n {
            if self.loads[thief] > 0 {
                continue;
            }
            let mut victim = self.rng.gen_range(0..n - 1);
            if victim >= thief {
                victim += 1;
            }
            let haul = self.loads[victim] / 2;
            if haul > 0 {
                self.loads[victim] -= haul;
                self.loads[thief] += haul;
                self.metrics.packets_migrated += haul;
                self.metrics.balance_ops += 1;
                self.metrics.messages += 2;
            }
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "work-stealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::imbalance_stats;

    fn one_producer_events(n: usize) -> Vec<LoadEvent> {
        let mut ev = vec![LoadEvent::Idle; n];
        ev[0] = LoadEvent::Generate;
        ev
    }

    #[test]
    fn no_balance_never_migrates() {
        let mut b = NoBalance::new(4);
        let ev = one_producer_events(4);
        for _ in 0..100 {
            b.step(&ev);
        }
        assert_eq!(b.loads(), vec![100, 0, 0, 0]);
        assert_eq!(b.metrics().packets_migrated, 0);
    }

    #[test]
    fn random_scatter_equal_means_huge_variance() {
        // The §5 argument: over many runs the per-processor mean is flat,
        // but within any single snapshot the load is concentrated.
        let n = 8;
        let runs = 400;
        let mut totals = vec![0u64; n];
        let mut max_over_mean_sum = 0.0;
        for seed in 0..runs {
            let mut b = RandomScatter::new(n, seed);
            let ev = one_producer_events(n);
            for _ in 0..50 {
                b.step(&ev);
            }
            let loads = b.loads();
            assert_eq!(loads.iter().sum::<u64>(), 50, "conservation");
            for (t, &l) in totals.iter_mut().zip(loads.iter()) {
                *t += l;
            }
            max_over_mean_sum += imbalance_stats(&loads).max_over_mean;
        }
        let grand_mean = totals.iter().sum::<u64>() as f64 / n as f64;
        for &t in &totals {
            assert!(
                (t as f64 - grand_mean).abs() < 0.35 * grand_mean,
                "means roughly equal: {totals:?}"
            );
        }
        // ... but any individual snapshot is terribly imbalanced.
        assert!(
            max_over_mean_sum / runs as f64 > 4.0,
            "variance should be huge"
        );
    }

    #[test]
    fn rsu91_balances_a_producer_weakly() {
        // RSU'91 balances with probability 1/load, so a lone producer at
        // load l initiates only ~ln(l) balances over its lifetime — the
        // weakness behind Mehlhorn's counterexample (the paper's [10]).
        // It beats doing nothing but stays far from the SPAA'93 quality.
        let mut b = Rsu91::new(16, 3);
        let ev = one_producer_events(16);
        for _ in 0..2000 {
            b.step(&ev);
        }
        let stats = imbalance_stats(&b.loads());
        assert_eq!(stats.mean * 16.0, 2000.0);
        assert!(b.metrics().balance_ops > 0);
        assert!(stats.max < 2000, "some load was shed: {stats:?}");
        assert!(
            stats.max_over_mean > 1.5,
            "RSU'91 should stay visibly imbalanced here: {stats:?}"
        );
    }

    #[test]
    fn gradient_drains_hotspot_towards_idle_nodes() {
        let topo = Topology::Ring { n: 8 };
        let mut b = Gradient::new(topo, 2, 8);
        let ev = one_producer_events(8);
        for _ in 0..400 {
            b.step(&ev);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 400);
        // The hotspot must have shed work to its ring neighbours.
        assert!(b.metrics().packets_migrated > 0);
        assert!(loads[1] > 0 || loads[7] > 0, "{loads:?}");
        // Gradient keeps the hotspot bounded relative to no balancing.
        assert!(loads[0] < 400, "{loads:?}");
    }

    #[test]
    #[should_panic(expected = "watermarks must be ordered")]
    fn gradient_validates_watermarks() {
        Gradient::new(Topology::Ring { n: 4 }, 5, 5);
    }

    #[test]
    fn work_stealing_keeps_everyone_fed_but_not_even() {
        // One producer: stealing guarantees work everywhere (§1's weaker
        // goal) but does not equalise loads like the SPAA'93 algorithm.
        let mut b = WorkStealing::new(8, 5);
        let ev = one_producer_events(8);
        for _ in 0..1000 {
            b.step(&ev);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 1000);
        assert!(b.metrics().balance_ops > 0);
        // After warmup every processor holds something most of the time;
        // check the snapshot has at most one empty processor.
        let empty = loads.iter().filter(|&&l| l == 0).count();
        assert!(empty <= 1, "work stealing keeps processors fed: {loads:?}");
    }

    #[test]
    fn diffusion_flattens_a_spike() {
        // A hypercube spike diffuses to a near-flat distribution; Jacobi
        // flows conserve packets exactly.
        let topo = Topology::Hypercube { dim: 3 };
        let mut b = Diffusion::new(topo, 0.2);
        let mut events = vec![LoadEvent::Idle; 8];
        events[0] = LoadEvent::Generate;
        // Build the spike, then let it diffuse with no further input.
        for _ in 0..800 {
            b.step(&events);
        }
        let idle = vec![LoadEvent::Idle; 8];
        for _ in 0..100 {
            b.step(&idle);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 800);
        let stats = imbalance_stats(&loads);
        assert!(stats.max_over_mean < 1.3, "{loads:?}");
        assert!(b.metrics().packets_migrated > 0);
    }

    #[test]
    fn diffusion_is_stuck_on_small_differences() {
        // The floor() in the flow makes differences below 1/alpha sticky —
        // the classic drawback versus the paper's direct equalisation.
        let topo = Topology::Ring { n: 4 };
        let mut b = Diffusion::new(topo, 0.25);
        let mut events = vec![LoadEvent::Idle; 4];
        events[0] = LoadEvent::Generate;
        for _ in 0..3 {
            b.step(&events); // loads [3,0,0,0]-ish
        }
        let idle = vec![LoadEvent::Idle; 4];
        for _ in 0..50 {
            b.step(&idle);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 3);
        // alpha*diff < 1 for diff <= 3, so nothing ever moves.
        assert_eq!(loads[0], 3, "{loads:?}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn diffusion_validates_alpha() {
        Diffusion::new(Topology::Ring { n: 4 }, 0.9);
    }

    #[test]
    fn all_baselines_conserve_packets() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let n = 8;
        let mut balancers: Vec<Box<dyn LoadBalancer>> = vec![
            Box::new(NoBalance::new(n)),
            Box::new(RandomScatter::new(n, 1)),
            Box::new(Rsu91::new(n, 2)),
            Box::new(Gradient::new(Topology::Hypercube { dim: 3 }, 1, 4)),
            Box::new(WorkStealing::new(n, 3)),
            Box::new(Diffusion::new(Topology::Hypercube { dim: 3 }, 0.2)),
            Box::new(Quasirandom::new(Topology::Hypercube { dim: 3 })),
            Box::new(DynamicAveraging::new(Topology::Hypercube { dim: 3 }, 4)),
            Box::new(LocallyOptimal::new(Topology::Hypercube { dim: 3 })),
            Box::new(DimensionExchange::new(Topology::Hypercube { dim: 3 })),
        ];
        for _ in 0..300 {
            let events: Vec<LoadEvent> = (0..n)
                .map(|_| match rng.gen_range(0..3) {
                    0 => LoadEvent::Generate,
                    1 => LoadEvent::Consume,
                    _ => LoadEvent::Idle,
                })
                .collect();
            for b in balancers.iter_mut() {
                b.step(&events);
            }
        }
        for b in &balancers {
            let m = b.metrics();
            assert_eq!(
                b.loads().iter().sum::<u64>(),
                m.generated - m.consumed,
                "{} conserves packets",
                b.name()
            );
        }
    }
}
