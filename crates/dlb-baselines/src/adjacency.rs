//! Precomputed CSR adjacency shared by the topology-driven baselines.
//!
//! [`dlb_net::Topology::neighbors`] allocates a fresh `Vec` per call,
//! which is fine for one-shot queries but not for balancers that walk
//! every vertex's neighbourhood every step.  `Adjacency` materialises
//! the neighbour lists once at construction (in `neighbors()` order, so
//! iteration order — and therefore every tie-break — is identical to
//! querying the topology directly) and hands out slices afterwards:
//! zero allocations on the hot path.

use dlb_net::Topology;

/// Compressed sparse row adjacency of a [`Topology`].
#[derive(Debug, Clone)]
pub struct Adjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbour lists, each in `Topology::neighbors` order.
    targets: Vec<u32>,
}

impl Adjacency {
    /// Materialises the adjacency of `topology`.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for v in 0..n {
            for u in topology.neighbors(v) {
                targets.push(u as u32);
            }
            offsets.push(targets.len() as u32);
        }
        Adjacency { offsets, targets }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbours of `v`, in [`Topology::neighbors`] order.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_topology_neighbors_exactly() {
        for topo in [
            Topology::Complete { n: 5 },
            Topology::Ring { n: 7 },
            Topology::Hypercube { dim: 3 },
            Topology::Torus2D { w: 3, h: 4 },
            Topology::Star { n: 6 },
        ] {
            let adj = Adjacency::new(&topo);
            assert_eq!(adj.n(), topo.n());
            for v in 0..topo.n() {
                let expect: Vec<u32> = topo.neighbors(v).into_iter().map(|u| u as u32).collect();
                assert_eq!(adj.neighbors(v), expect.as_slice(), "{topo:?} v={v}");
                assert_eq!(adj.degree(v), expect.len());
            }
        }
    }
}
