//! Locally optimal load balancing (Feuilloley, Hirvonen, Suomela,
//! *Locally Optimal Load Balancing*, arXiv:1502.04511).
//!
//! The local-improvement rule: a node moves one unit of load to a
//! neighbour whenever doing so strictly reduces the pair's imbalance,
//! i.e. whenever its load exceeds the neighbour's by at least two.  A
//! configuration with no such move left is *locally optimal* — within a
//! constant of the global optimum on many graph families.  The scan is
//! fully deterministic: every node compares against a snapshot of the
//! current loads, picks its minimum-load live neighbour (lowest index on
//! ties), and the accumulated ±1 deltas are applied at the end of the
//! step, so a run is reproducible bit-for-bit with no RNG at all.

use crate::adjacency::Adjacency;
use crate::apply_events;
use dlb_core::{LoadBalancer, LoadEvent, Metrics};
use dlb_net::Topology;
use dlb_trace::{SharedSink, TraceEvent};

/// Deterministic local-improvement balancer.
pub struct LocallyOptimal {
    adj: Adjacency,
    loads: Vec<u64>,
    /// Pre-step load snapshot every node compares against (scratch).
    snapshot: Vec<u64>,
    /// Net per-node load change accumulated this step (scratch).
    delta: Vec<i64>,
    metrics: Metrics,
    sink: Option<SharedSink>,
    step: u64,
}

impl LocallyOptimal {
    /// Local-improvement balancing on `topology`.
    pub fn new(topology: Topology) -> Self {
        let adj = Adjacency::new(&topology);
        let n = adj.n();
        assert!(n >= 2, "need at least two processors");
        LocallyOptimal {
            adj,
            loads: vec![0; n],
            snapshot: vec![0; n],
            delta: vec![0; n],
            metrics: Metrics::new(),
            sink: None,
            step: 0,
        }
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: Option<&[bool]>) {
        apply_events(&mut self.loads, &mut self.metrics, events, down);
        let LocallyOptimal {
            adj,
            loads,
            snapshot,
            delta,
            metrics,
            sink,
            step,
        } = self;
        let alive = |v: usize| down.is_none_or(|d| !d[v]);
        let trace_on = sink.as_ref().is_some_and(|s| s.enabled());
        snapshot.clear();
        snapshot.extend_from_slice(loads);
        delta.fill(0);
        for v in 0..loads.len() {
            if !alive(v) {
                continue;
            }
            // Minimum-load live neighbour; first minimum in adjacency
            // order = lowest index, a fixed deterministic tie-break.
            let Some(&u) = adj
                .neighbors(v)
                .iter()
                .filter(|&&u| alive(u as usize))
                .min_by_key(|&&u| snapshot[u as usize])
            else {
                continue;
            };
            let u = u as usize;
            if snapshot[v] >= snapshot[u] + 2 {
                delta[v] -= 1;
                delta[u] += 1;
                metrics.balance_ops += 1;
                metrics.packets_migrated += 1;
                metrics.messages += 1;
                if trace_on {
                    if let Some(s) = sink.as_ref() {
                        s.record(&TraceEvent::PacketsMigrated {
                            step: *step,
                            initiator: v as u64,
                            count: 1,
                        });
                    }
                }
            }
        }
        for (l, d) in loads.iter_mut().zip(delta.iter()) {
            *l = l.checked_add_signed(*d).expect("load underflow");
        }
        *step += 1;
    }
}

impl LoadBalancer for LocallyOptimal {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, None);
    }

    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, Some(down));
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "locally-optimal"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike_events(n: usize) -> Vec<LoadEvent> {
        let mut ev = vec![LoadEvent::Idle; n];
        ev[0] = LoadEvent::Generate;
        ev
    }

    #[test]
    fn reaches_a_locally_optimal_configuration() {
        let mut b = LocallyOptimal::new(Topology::Ring { n: 8 });
        let ev = spike_events(8);
        for _ in 0..200 {
            b.step(&ev);
        }
        let idle = vec![LoadEvent::Idle; 8];
        for _ in 0..200 {
            b.step(&idle);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 200, "conservation");
        // Locally optimal: no neighbour pair differs by 2 or more.
        let topo = Topology::Ring { n: 8 };
        for v in 0..8 {
            for &u in topo.neighbors(v).iter() {
                assert!(
                    loads[v].abs_diff(loads[u]) <= 1,
                    "edge ({v},{u}) not locally optimal: {loads:?}"
                );
            }
        }
    }

    #[test]
    fn runs_are_bit_identical() {
        let mk = || LocallyOptimal::new(Topology::Hypercube { dim: 3 });
        let (mut a, mut b) = (mk(), mk());
        let ev = spike_events(8);
        for _ in 0..150 {
            a.step(&ev);
            b.step(&ev);
        }
        assert_eq!(a.loads(), b.loads());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn crashed_processors_are_frozen() {
        let mut b = LocallyOptimal::new(Topology::Ring { n: 5 });
        let ev = spike_events(5);
        for _ in 0..60 {
            b.step(&ev);
        }
        let down = vec![false, true, false, false, false];
        let frozen = b.loads()[1];
        for _ in 0..60 {
            b.step_masked(&ev, &down);
        }
        assert_eq!(b.loads()[1], frozen, "crashed load must not change");
        assert_eq!(b.loads().iter().sum::<u64>(), 120, "conservation");
    }
}
