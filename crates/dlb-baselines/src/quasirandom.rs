//! Quasirandom load balancing (Friedrich–Gairing–Sauerwald, *Quasirandom
//! Load Balancing*, arXiv:1006.3302): the deterministic rotor-router
//! analogue of randomised diffusion.
//!
//! Every step each processor splits its tokens as evenly as possible
//! between itself and its neighbours: each of the `d + 1` parties gets
//! `⌊l/(d+1)⌋` tokens, and the `l mod (d+1)` surplus tokens go one each
//! to the next ports in a per-vertex *rotor* order that advances with
//! every surplus token sent.  The rotor de-randomises the rounding: over
//! time every neighbour receives the same share, which is what bounds
//! the discrepancy against the idealised continuous diffusion.

use crate::adjacency::Adjacency;
use crate::apply_events;
use dlb_core::{LoadBalancer, LoadEvent, Metrics};
use dlb_net::Topology;
use dlb_trace::{SharedSink, TraceEvent};

/// Deterministic rotor-router token balancer.
pub struct Quasirandom {
    adj: Adjacency,
    loads: Vec<u64>,
    /// Post-balancing loads under construction (struct-held scratch).
    next: Vec<u64>,
    /// Per-vertex rotor: index of the next port to receive a surplus
    /// token, cyclic over the vertex's neighbour list.
    rotor: Vec<u32>,
    metrics: Metrics,
    sink: Option<SharedSink>,
    step: u64,
}

impl Quasirandom {
    /// Rotor-router balancing on `topology`.
    pub fn new(topology: Topology) -> Self {
        let adj = Adjacency::new(&topology);
        let n = adj.n();
        assert!(n >= 2, "need at least two processors");
        Quasirandom {
            adj,
            loads: vec![0; n],
            next: vec![0; n],
            rotor: vec![0; n],
            metrics: Metrics::new(),
            sink: None,
            step: 0,
        }
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: Option<&[bool]>) {
        apply_events(&mut self.loads, &mut self.metrics, events, down);
        let Quasirandom {
            adj,
            loads,
            next,
            rotor,
            metrics,
            sink,
            step,
        } = self;
        let alive = |v: usize| down.is_none_or(|d| !d[v]);
        let trace_on = sink.as_ref().is_some_and(|s| s.enabled());
        next.fill(0);
        for v in 0..loads.len() {
            let l = loads[v];
            if !alive(v) {
                // Crashed: load frozen, neither sends nor receives (alive
                // senders skip it below).
                next[v] += l;
                continue;
            }
            let neigh = adj.neighbors(v);
            let deg = neigh.len();
            let d_alive = if down.is_none() {
                deg
            } else {
                neigh.iter().filter(|&&u| alive(u as usize)).count()
            };
            if d_alive == 0 || l == 0 {
                next[v] += l;
                continue;
            }
            let base = l / (d_alive as u64 + 1);
            let rem = (l % (d_alive as u64 + 1)) as usize;
            next[v] += base;
            if base > 0 {
                for &u in neigh {
                    if alive(u as usize) {
                        next[u as usize] += base;
                    }
                }
            }
            // Surplus tokens: one each to the next `rem` live ports in
            // rotor order (rem ≤ d_alive, so nobody gets two).
            let mut placed = 0usize;
            if rem > 0 {
                let mut idx = rotor[v] as usize % deg;
                let mut scanned = 0;
                while placed < rem && scanned < 2 * deg {
                    let u = neigh[idx] as usize;
                    if alive(u) {
                        next[u] += 1;
                        placed += 1;
                    }
                    idx = (idx + 1) % deg;
                    scanned += 1;
                }
                rotor[v] = idx as u32;
                // Unplaceable surplus (cannot happen with d_alive ≥ 1,
                // kept for conservation robustness).
                next[v] += (rem - placed) as u64;
            }
            let moved = base * d_alive as u64 + placed as u64;
            if moved > 0 {
                metrics.balance_ops += 1;
                metrics.packets_migrated += moved;
                metrics.messages += if base > 0 {
                    d_alive as u64
                } else {
                    placed as u64
                };
                if trace_on {
                    if let Some(s) = sink.as_ref() {
                        s.record(&TraceEvent::PacketsMigrated {
                            step: *step,
                            initiator: v as u64,
                            count: moved,
                        });
                    }
                }
            }
        }
        std::mem::swap(loads, next);
        *step += 1;
    }
}

impl LoadBalancer for Quasirandom {
    fn n(&self) -> usize {
        self.loads.len()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, None);
    }

    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, Some(down));
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "quasirandom"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::imbalance_stats;

    fn spike_events(n: usize) -> Vec<LoadEvent> {
        let mut ev = vec![LoadEvent::Idle; n];
        ev[0] = LoadEvent::Generate;
        ev
    }

    #[test]
    fn flattens_a_hypercube_spike_deterministically() {
        let mut b = Quasirandom::new(Topology::Hypercube { dim: 3 });
        let ev = spike_events(8);
        for _ in 0..400 {
            b.step(&ev);
        }
        let idle = vec![LoadEvent::Idle; 8];
        for _ in 0..50 {
            b.step(&idle);
        }
        let loads = b.loads();
        assert_eq!(loads.iter().sum::<u64>(), 400, "conservation");
        let stats = imbalance_stats(&loads);
        assert!(stats.max_over_mean < 1.2, "{loads:?}");
        assert!(b.metrics().packets_migrated > 0);
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        // No RNG anywhere: two instances fed the same events agree
        // exactly, including the rotor state.
        let mk = || Quasirandom::new(Topology::Ring { n: 6 });
        let (mut a, mut b) = (mk(), mk());
        let ev = spike_events(6);
        for _ in 0..123 {
            a.step(&ev);
            b.step(&ev);
        }
        assert_eq!(a.loads(), b.loads());
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.rotor, b.rotor);
    }

    #[test]
    fn crashed_processors_are_frozen() {
        let mut b = Quasirandom::new(Topology::Ring { n: 4 });
        let ev = spike_events(4);
        for _ in 0..40 {
            b.step(&ev);
        }
        let down = vec![false, true, false, false];
        let frozen = b.loads()[1];
        let idle = vec![LoadEvent::Idle; 4];
        for _ in 0..30 {
            b.step_masked(&idle, &down);
        }
        assert_eq!(b.loads()[1], frozen, "crashed load must not change");
        assert_eq!(b.loads().iter().sum::<u64>(), 40, "conservation");
    }
}
