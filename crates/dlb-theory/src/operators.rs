//! The expectation operators `G` and `C` of Lemma 1 and their fixed point
//! `FIX(n, δ, f)` (Theorems 1 and 2).
//!
//! In the one-processor-generator model, if `k = E(l_1,t) / E(l_i,t)` is the
//! ratio between the expected load of the generating processor and any other
//! processor after `t` balancing operations, then after one more operation
//! the ratio is `G(k)` where
//!
//! ```text
//! G(k) = (k·f + δ)(n − 1) / (δ·k·f + δ(n − 2) + (n − 1))
//! ```
//!
//! The corresponding operator for a workload *decrease* by factor `f` is
//! `C(k) = G(k)` with `f` replaced by `1/f`.  Both are contractions on the
//! relevant interval (Banach), so iterating from any start converges to the
//! unique positive fixed point `FIX(n, δ, f) = sqrt((n−1)/f + A²) − A` with
//! `A = (f − f·n + δ(n − 2) + (n − 1)) / (2·δ·f)`.

use std::fmt;

/// Error returned when algorithm parameters violate the paper's standing
/// assumptions.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// The trigger factor must satisfy `1 ≤ f < δ + 1` (Theorems 1–4).
    FactorOutOfRange { f: f64, delta: usize },
    /// The neighbourhood must be non-empty and smaller than the network.
    DeltaOutOfRange { delta: usize, n: usize },
    /// The network must contain at least two processors.
    NetworkTooSmall { n: usize },
    /// `f` must be a finite number.
    NonFinite { f: f64 },
}

impl fmt::Display for ParamError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::FactorOutOfRange { f, delta } => write!(
                out,
                "trigger factor f = {f} outside the admissible range 1 <= f < delta + 1 = {}",
                *delta as f64 + 1.0
            ),
            ParamError::DeltaOutOfRange { delta, n } => {
                write!(
                    out,
                    "neighbourhood size delta = {delta} must satisfy 1 <= delta < n = {n}"
                )
            }
            ParamError::NetworkTooSmall { n } => {
                write!(out, "network size n = {n} must be at least 2")
            }
            ParamError::NonFinite { f } => write!(out, "trigger factor f = {f} is not finite"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Validated `(n, δ, f)` triple satisfying the paper's standing assumptions
/// `n ≥ 2`, `1 ≤ δ < n` and `1 ≤ f < δ + 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoParams {
    n: usize,
    delta: usize,
    f: f64,
}

impl AlgoParams {
    /// Validates and constructs an `(n, δ, f)` triple.
    pub fn new(n: usize, delta: usize, f: f64) -> Result<Self, ParamError> {
        if !f.is_finite() {
            return Err(ParamError::NonFinite { f });
        }
        if n < 2 {
            return Err(ParamError::NetworkTooSmall { n });
        }
        if delta == 0 || delta >= n {
            return Err(ParamError::DeltaOutOfRange { delta, n });
        }
        if !(1.0..(delta as f64 + 1.0)).contains(&f) {
            return Err(ParamError::FactorOutOfRange { f, delta });
        }
        Ok(AlgoParams { n, delta, f })
    }

    /// Network size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Neighbourhood size `δ` (number of randomly chosen partners).
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Trigger factor `f`.
    pub fn f(&self) -> f64 {
        self.f
    }

    /// The increase operator `G` of Lemma 1 applied to a ratio `k`.
    pub fn g(&self, k: f64) -> f64 {
        g_op(self.n, self.delta, self.f, k)
    }

    /// The decrease operator `C` of Lemma 3 applied to a ratio `k`
    /// (this is `G` with `f` replaced by `1/f`).
    pub fn c(&self, k: f64) -> f64 {
        g_op(self.n, self.delta, 1.0 / self.f, k)
    }

    /// `G^t(k)`: `t`-fold iteration of the increase operator.
    pub fn g_iter(&self, k: f64, t: usize) -> f64 {
        (0..t).fold(k, |acc, _| self.g(acc))
    }

    /// `C^t(k)`: `t`-fold iteration of the decrease operator.
    pub fn c_iter(&self, k: f64, t: usize) -> f64 {
        (0..t).fold(k, |acc, _| self.c(acc))
    }

    /// `FIX(n, δ, f)`: the fixed point of `G` (Theorem 1).
    pub fn fix(&self) -> f64 {
        fix(self.n, self.delta, self.f)
    }

    /// `FIX(n, δ, 1/f)`: the fixed point of `C` (Lemma 3).
    pub fn fix_inv(&self) -> f64 {
        fix(self.n, self.delta, 1.0 / self.f)
    }

    /// `lim_{n→∞} FIX(n, δ, f) = δ / (δ + 1 − f)` (Theorem 2).
    pub fn fix_limit(&self) -> f64 {
        fix_limit(self.delta, self.f)
    }

    /// `lim_{n→∞} FIX(n, δ, 1/f) = δ / (δ + 1 − 1/f)` (Lemma 3(3)).
    pub fn fix_inv_limit(&self) -> f64 {
        fix_limit(self.delta, 1.0 / self.f)
    }
}

/// The raw operator `G(k) = (k·f + δ)(n − 1) / (δ·k·f + δ(n − 2) + (n − 1))`.
///
/// Exposed unvalidated so the decrease operator (`f → 1/f`, which leaves the
/// admissible range) and out-of-range explorations can use it; prefer
/// [`AlgoParams::g`] in application code.
pub fn g_op(n: usize, delta: usize, f: f64, k: f64) -> f64 {
    let nf = n as f64;
    let d = delta as f64;
    (k * f + d) * (nf - 1.0) / (d * k * f + d * (nf - 2.0) + (nf - 1.0))
}

/// The constant `A = (f − f·n + δ(n − 2) + (n − 1)) / (2·δ·f)` of Lemma 2.
pub fn a_const(n: usize, delta: usize, f: f64) -> f64 {
    let nf = n as f64;
    let d = delta as f64;
    (f - f * nf + d * (nf - 2.0) + (nf - 1.0)) / (2.0 * d * f)
}

/// `FIX(n, δ, f) = sqrt((n − 1)/f + A²) − A`: the unique positive fixed
/// point of `G` (Lemma 2 / Theorem 1).
pub fn fix(n: usize, delta: usize, f: f64) -> f64 {
    let a = a_const(n, delta, f);
    ((n as f64 - 1.0) / f + a * a).sqrt() - a
}

/// `δ / (δ + 1 − f)`: the network-size-independent limit and upper bound of
/// `FIX(n, δ, f)` (Theorem 2). Requires `f < δ + 1` to be positive/finite.
pub fn fix_limit(delta: usize, f: f64) -> f64 {
    let d = delta as f64;
    d / (d + 1.0 - f)
}

/// Iterates `G` from `k0` until successive values differ by less than
/// `crate::EPS` (relative), returning `(value, iterations)`.
///
/// By Theorem 1 this converges to [`fix`] from any admissible start.
pub fn iterate_to_fixpoint(n: usize, delta: usize, f: f64, k0: f64) -> (f64, usize) {
    let mut k = k0;
    for t in 0..100_000 {
        let next = g_op(n, delta, f, k);
        if (next - k).abs() <= crate::EPS * k.abs().max(1.0) {
            return (next, t + 1);
        }
        k = next;
    }
    (k, 100_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: usize, delta: usize, f: f64) -> AlgoParams {
        AlgoParams::new(n, delta, f).expect("valid params")
    }

    #[test]
    fn param_validation() {
        assert!(AlgoParams::new(64, 1, 1.1).is_ok());
        assert!(AlgoParams::new(64, 4, 1.8).is_ok());
        assert!(
            AlgoParams::new(64, 1, 2.0).is_err(),
            "f must be < delta + 1"
        );
        assert!(AlgoParams::new(64, 1, 0.9).is_err(), "f must be >= 1");
        assert!(AlgoParams::new(64, 0, 1.1).is_err(), "delta >= 1");
        assert!(AlgoParams::new(64, 64, 1.1).is_err(), "delta < n");
        assert!(AlgoParams::new(1, 1, 1.0).is_err(), "n >= 2");
        assert!(AlgoParams::new(64, 1, f64::NAN).is_err());
        // f = 1 is admissible (the degenerate "balance on every packet" case).
        assert!(AlgoParams::new(64, 1, 1.0).is_ok());
    }

    #[test]
    fn g_matches_hand_computation() {
        // n = 64, delta = 1, f = 1.1, k = 1:
        // G(1) = (1.1 + 1)·63 / (1.1 + 62 + 63) = 132.3 / 126.1
        let g = g_op(64, 1, 1.1, 1.0);
        assert!((g - 132.3 / 126.1).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn fix_is_a_fixed_point_of_g() {
        for &(n, delta, f) in &[
            (64usize, 1usize, 1.1f64),
            (64, 4, 1.8),
            (1024, 8, 2.5),
            (2, 1, 1.0),
            (16, 2, 1.5),
            (35, 4, 1.2),
        ] {
            let k = fix(n, delta, f);
            let g = g_op(n, delta, f, k);
            assert!(
                (g - k).abs() < 1e-9 * k.max(1.0),
                "FIX not fixed: n={n} delta={delta} f={f}: FIX={k}, G(FIX)={g}"
            );
        }
    }

    #[test]
    fn fix_inv_is_a_fixed_point_of_c() {
        let prm = p(64, 1, 1.1);
        let k = prm.fix_inv();
        assert!((prm.c(k) - k).abs() < 1e-9);
    }

    #[test]
    fn lemma2_threshold_behaviour() {
        // G(k) > k for k < FIX, G(k) < k for k > FIX.
        let prm = p(64, 2, 1.4);
        let fx = prm.fix();
        assert!(prm.g(fx * 0.5) > fx * 0.5);
        assert!(prm.g(fx * 2.0) < fx * 2.0);
    }

    #[test]
    fn theorem1_monotone_convergence_from_balanced_start() {
        // G^t(1) increases monotonically to FIX and never exceeds it.
        let prm = p(64, 1, 1.1);
        let fx = prm.fix();
        let mut k = 1.0;
        for _ in 0..10_000 {
            let next = prm.g(k);
            assert!(next >= k - 1e-15, "monotone");
            assert!(next <= fx + 1e-12, "bounded by FIX");
            k = next;
        }
        assert!((k - fx).abs() < 1e-9, "converged: {k} vs {fx}");
    }

    #[test]
    fn theorem1_convergence_from_any_start() {
        // Banach: convergence also from an imbalanced start above FIX.
        let prm = p(64, 4, 1.8);
        let fx = prm.fix();
        let (val, _) = iterate_to_fixpoint(64, 4, 1.8, 100.0);
        assert!((val - fx).abs() < 1e-8, "{val} vs {fx}");
        let (val, _) = iterate_to_fixpoint(64, 4, 1.8, 0.01);
        assert!((val - fx).abs() < 1e-8, "{val} vs {fx}");
    }

    #[test]
    fn theorem2_fix_bounded_by_limit_and_converges_in_n() {
        for &(delta, f) in &[(1usize, 1.1f64), (1, 1.8), (4, 1.1), (4, 1.8), (8, 3.0)] {
            let lim = fix_limit(delta, f);
            let mut prev_gap = f64::INFINITY;
            for n in [4usize, 16, 64, 256, 1024, 4096] {
                if delta >= n {
                    continue;
                }
                let fx = fix(n, delta, f);
                assert!(
                    fx <= lim + 1e-9,
                    "FIX({n},{delta},{f}) = {fx} > limit {lim}"
                );
                let gap = lim - fx;
                assert!(gap <= prev_gap + 1e-12, "gap should shrink with n");
                prev_gap = gap;
            }
            assert!(
                prev_gap < 1e-2 * lim,
                "FIX approaches limit: gap {prev_gap}"
            );
        }
    }

    #[test]
    fn fix_with_f_equal_one_is_one() {
        // With f = 1 the generator balances after every packet; the fixed
        // ratio is exactly 1 in the limit and FIX(n, δ, 1) = 1 for all n.
        for n in [2usize, 8, 64, 1024] {
            let fx = fix(n, 1, 1.0);
            assert!((fx - 1.0).abs() < 1e-9, "FIX({n},1,1) = {fx}");
        }
        assert!((fix_limit(1, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma3_decrease_fixed_point_below_one() {
        // FIX(n, δ, 1/f) <= 1 and >= δ/(δ+1−1/f) ... the paper's Lemma 3(2)
        // states C^t(1) >= FIX(n,δ,1/f) >= δ/(δ+1−1/f)?  Numerically the
        // limit δ/(δ+1−1/f) lies *below* FIX(n,δ,1/f) for finite n.
        let prm = p(64, 1, 1.1);
        let fx_inv = prm.fix_inv();
        assert!(fx_inv < 1.0);
        assert!(fx_inv >= prm.fix_inv_limit() - 1e-12);
        // Iterating C from a balanced start stays above the fixed point.
        let mut k = 1.0;
        for _ in 0..10_000 {
            k = prm.c(k);
            assert!(k >= fx_inv - 1e-12);
        }
        assert!((k - fx_inv).abs() < 1e-9);
    }

    #[test]
    fn iterate_matches_closed_iteration() {
        let prm = p(64, 2, 1.3);
        assert!((prm.g_iter(1.0, 3) - prm.g(prm.g(prm.g(1.0)))).abs() < 1e-15);
        assert!((prm.c_iter(1.0, 2) - prm.c(prm.c(1.0))).abs() < 1e-15);
    }

    #[test]
    fn error_display_is_informative() {
        let err = AlgoParams::new(64, 1, 2.5).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("2.5"), "{text}");
    }
}
