//! Quantitative statements of Theorems 1–4 and the cost bounds of §6
//! (Lemmas 5 and 6).
//!
//! The paper's bounds fall into two groups:
//!
//! * **Balance-quality bounds** ([`TheoremBounds`]): how far apart the
//!   expected loads of any two processors can drift, as a function of
//!   `(n, δ, f)` and the borrow limit `C`.
//! * **Cost bounds** ([`CostBounds`]): how many balancing operations a
//!   simulated workload decrease needs — the constants `U`, `D` and the
//!   sequence `D_i` together with the Lemma 5 lower/upper bounds and the
//!   improved implicit bound of Lemma 6.

use crate::operators::{fix, fix_limit, g_op, AlgoParams};

/// The balance-quality guarantees of Theorems 1–4 for a parameter triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoremBounds {
    /// `FIX(n, δ, f)` — Theorem 1: upper bound (and limit) of `G^t(1)`.
    pub fix: f64,
    /// `FIX(n, δ, 1/f)` — Lemma 3(2): lower bound (and limit) of `C^t(1)`.
    pub fix_inv: f64,
    /// `δ/(δ+1−f)` — Theorem 2: network-size-independent upper bound.
    pub fix_limit: f64,
    /// `δ/(δ+1−1/f)` — Lemma 3(3): network-size-independent decrease limit.
    pub fix_inv_limit: f64,
    /// `f²·δ/(δ+1−f)` — the multiplicative constant of Theorem 4(2).
    pub theorem4_coeff: f64,
}

impl TheoremBounds {
    /// Computes every bound for a validated parameter triple.
    pub fn for_params(params: &AlgoParams) -> Self {
        let (n, delta, f) = (params.n(), params.delta(), params.f());
        TheoremBounds {
            fix: fix(n, delta, f),
            fix_inv: fix(n, delta, 1.0 / f),
            fix_limit: fix_limit(delta, f),
            fix_inv_limit: fix_limit(delta, 1.0 / f),
            theorem4_coeff: f * f * fix_limit(delta, f),
        }
    }

    /// Theorem 3: after any number of balancing initiations in the
    /// one-processor-producer-consumer model the ratio
    /// `E(l_1,t)/E(l_i,t)` lies in `[FIX(n,δ,1/f), FIX(n,δ,f)]`.
    pub fn theorem3_interval(&self) -> (f64, f64) {
        (self.fix_inv, self.fix)
    }

    /// Theorem 4(2): upper bound on `E(l_i)` given `E(l_j)` and the borrow
    /// limit `C`: `E(l_i) ≤ f²·δ/(δ+1−f) · (E(l_j) + C)`.
    pub fn theorem4_upper(&self, load_j: f64, c_borrow: usize) -> f64 {
        self.theorem4_coeff * (load_j + c_borrow as f64)
    }

    /// Checks whether an observed pair of expected loads satisfies
    /// Theorem 4(2) (with a small relative slack for sampling noise).
    pub fn theorem4_holds(&self, load_i: f64, load_j: f64, c_borrow: usize, slack: f64) -> bool {
        load_i <= self.theorem4_upper(load_j, c_borrow) * (1.0 + slack)
    }
}

/// §6 cost analysis: bounds on the expected number of balancing operations
/// needed to decrease the self-generated load of a processor from `x` to
/// `x − c > 0` (the *decrease simulation* of §4).
#[derive(Debug, Clone, Copy)]
pub struct CostBounds {
    params: AlgoParams,
    /// `U = 1/(f(δ+1)) · (1 + f·δ / FIX(n, δ, 1/f))`.
    pub u: f64,
    /// `D = 1/(f(δ+1)) · (1 + δ·f / FIX(n, δ, f))`.
    pub d: f64,
}

impl CostBounds {
    /// Computes `U` and `D` for a validated parameter triple.
    pub fn for_params(params: &AlgoParams) -> Self {
        let (n, delta, f) = (params.n(), params.delta(), params.f());
        let d_f = delta as f64;
        let u = 1.0 / (f * (d_f + 1.0)) * (1.0 + f * d_f / fix(n, delta, 1.0 / f));
        let d = 1.0 / (f * (d_f + 1.0)) * (1.0 + d_f * f / fix(n, delta, f));
        CostBounds {
            params: *params,
            u,
            d,
        }
    }

    /// `D_i = 1/(f(δ+1)) · (1 + δ·f / C^i(FIX(n, δ, f)))` (Lemma 6): the
    /// per-step shrink factor after `i` applications of the decrease
    /// operator to the starting ratio `FIX(n, δ, f)`.
    pub fn d_i(&self, i: usize) -> f64 {
        let (n, delta, f) = (self.params.n(), self.params.delta(), self.params.f());
        let d_f = delta as f64;
        let mut ratio = fix(n, delta, f);
        for _ in 0..i {
            ratio = g_op(n, delta, 1.0 / f, ratio);
        }
        1.0 / (f * (d_f + 1.0)) * (1.0 + d_f * f / ratio)
    }

    /// Lemma 5 lower bound on the expected number `t` of balancing
    /// operations needed to decrease the class-`i` load on processor `i`
    /// from `x` to `x − c > 0`:
    ///
    /// ```text
    /// t ≥ max{0, ⌊ log( (f²(c−x)+x−1)/((f−1)(x+1)) · (U−1) + 1 ) / log U ⌋}
    /// ```
    ///
    /// Returns `None` when the bound's argument leaves the domain of the
    /// logarithm (possible for extreme `x`, `c`) or when `f = 1` (the
    /// formula has `f − 1` in a denominator).
    pub fn lemma5_lower(&self, x: u64, c: u64) -> Option<u64> {
        let f = self.params.f();
        if c == 0 {
            return Some(0);
        }
        if c >= x || f <= 1.0 {
            return None;
        }
        let (xf, cf) = (x as f64, c as f64);
        let num = f * f * (cf - xf) + xf - 1.0;
        let den = (f - 1.0) * (xf + 1.0);
        let arg = num / den * (self.u - 1.0) + 1.0;
        if arg <= 0.0 || self.u <= 0.0 || (self.u - 1.0).abs() < 1e-15 {
            return None;
        }
        let t = (arg.ln() / self.u.ln()).floor();
        Some(t.max(0.0) as u64)
    }

    /// Lemma 5 upper bound:
    ///
    /// ```text
    /// t ≤ ⌈ log( (c+xf−x−f)/((x−1)f(1−1/f)) · (D−1) + 1 ) / log D ⌉
    /// ```
    ///
    /// Only valid when `1/(1−D) ≥ (c+xf−x−f)/((x−1)f(1−1/f))`; returns
    /// `None` when the validity condition fails or the argument leaves the
    /// domain of the logarithm.
    pub fn lemma5_upper(&self, x: u64, c: u64) -> Option<u64> {
        let f = self.params.f();
        if c == 0 {
            return Some(0);
        }
        if c >= x || x <= 1 || f <= 1.0 {
            return None;
        }
        let (xf, cf) = (x as f64, c as f64);
        let target = (cf + xf * f - xf - f) / ((xf - 1.0) * f * (1.0 - 1.0 / f));
        if self.d >= 1.0 || 1.0 / (1.0 - self.d) < target {
            return None;
        }
        let arg = target * (self.d - 1.0) + 1.0;
        if arg <= 0.0 {
            return None;
        }
        Some((arg.ln() / self.d.ln()).ceil() as u64)
    }

    /// Lemma 6 improved upper bound: the smallest `t` such that
    /// `Σ_{i=0}^{t−2} Π_{j=0}^{i} D_j ≥ (c−1)/((x−1)·f·(1−1/f))`.
    ///
    /// Returns `None` if the sum cannot reach the target within
    /// `max_iter` terms (the `D_i` approach `U` which may be ≥ the decay
    /// needed) or the parameters leave the formula's domain.
    pub fn lemma6_upper(&self, x: u64, c: u64, max_iter: usize) -> Option<u64> {
        let f = self.params.f();
        if c == 0 {
            // Zero decrease costs zero operations — agree with
            // `lemma5_lower`/`lemma5_upper`, which return `Some(0)` for
            // the same query (this used to return `Some(1)`).
            return Some(0);
        }
        if c == 1 {
            return Some(1);
        }
        if c >= x || x <= 1 || f <= 1.0 {
            return None;
        }
        let target = (c as f64 - 1.0) / ((x as f64 - 1.0) * f * (1.0 - 1.0 / f));
        let (n, delta) = (self.params.n(), self.params.delta());
        let d_f = delta as f64;
        let mut ratio = fix(n, delta, f);
        let mut product = 1.0;
        let mut sum = 0.0;
        for i in 0..max_iter {
            let d_i = 1.0 / (f * (d_f + 1.0)) * (1.0 + d_f * f / ratio);
            product *= d_i;
            sum += product;
            if sum >= target {
                // sum over i = 0..=i corresponds to t − 2 = i, i.e. t = i + 2.
                return Some((i + 2) as u64);
            }
            ratio = g_op(n, delta, 1.0 / f, ratio);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, delta: usize, f: f64) -> AlgoParams {
        AlgoParams::new(n, delta, f).expect("valid")
    }

    #[test]
    fn theorem_bounds_hand_values() {
        // n = 64, δ = 1, f = 1.1: FIX ≈ 1.111 (≈ δ/(δ+1−f) = 1/0.9).
        let tb = TheoremBounds::for_params(&params(64, 1, 1.1));
        assert!((tb.fix_limit - 1.0 / 0.9).abs() < 1e-12);
        assert!(tb.fix <= tb.fix_limit && tb.fix > 1.0);
        assert!(tb.fix_inv < 1.0 && tb.fix_inv >= tb.fix_inv_limit);
        assert!((tb.theorem4_coeff - 1.1 * 1.1 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn theorem3_interval_brackets_one() {
        for &(n, delta, f) in &[(64usize, 1usize, 1.1f64), (64, 4, 1.8), (256, 2, 1.3)] {
            let tb = TheoremBounds::for_params(&params(n, delta, f));
            let (lo, hi) = tb.theorem3_interval();
            assert!(lo <= 1.0 + 1e-12 && hi >= 1.0 - 1e-12, "({lo}, {hi})");
            assert!(lo > 0.0);
        }
    }

    #[test]
    fn theorem4_upper_is_monotone_in_c() {
        let tb = TheoremBounds::for_params(&params(64, 1, 1.1));
        assert!(tb.theorem4_upper(10.0, 4) < tb.theorem4_upper(10.0, 32));
        assert!(tb.theorem4_holds(10.0, 10.0, 4, 0.0));
    }

    #[test]
    fn cost_constants_in_expected_ranges() {
        // f = 1.1, δ = 1, n = 64: U ≈ 0.998, D ≈ 0.905 (hand-computed).
        let cb = CostBounds::for_params(&params(64, 1, 1.1));
        assert!((cb.u - 0.998).abs() < 5e-3, "U = {}", cb.u);
        assert!((cb.d - 0.905).abs() < 5e-3, "D = {}", cb.d);
        // D_0 = D by definition.
        assert!((cb.d_i(0) - cb.d).abs() < 1e-12);
        // D_i increases towards U as the ratio decays towards FIX(n,δ,1/f).
        assert!(cb.d_i(5) > cb.d_i(0));
        assert!(cb.d_i(200) <= cb.u + 1e-9);
    }

    #[test]
    fn lemma5_bounds_bracket_lemma6() {
        let cb = CostBounds::for_params(&params(64, 1, 1.1));
        let lower = cb.lemma5_lower(100, 50).expect("lower bound defined");
        let upper = cb.lemma5_upper(100, 50).expect("upper bound defined");
        let improved = cb.lemma6_upper(100, 50, 10_000).expect("lemma 6 defined");
        assert!(lower <= upper, "lower {lower} <= upper {upper}");
        assert!(
            improved <= upper,
            "lemma 6 ({improved}) improves on lemma 5 ({upper})"
        );
        assert!(lower <= improved, "{lower} <= {improved}");
        // Hand-computed: t_low ≈ 3, t_up ≈ 9 for these parameters.
        assert!((2..=5).contains(&lower), "lower = {lower}");
        assert!((7..=11).contains(&upper), "upper = {upper}");
    }

    #[test]
    fn lemma5_zero_decrease_is_free() {
        let cb = CostBounds::for_params(&params(64, 2, 1.4));
        assert_eq!(cb.lemma5_lower(10, 0), Some(0));
        assert_eq!(cb.lemma5_upper(10, 0), Some(0));
    }

    #[test]
    fn zero_decrease_bounds_agree_across_lemmas() {
        // Regression: `lemma6_upper` used to report `Some(1)` for c = 0
        // while both Lemma 5 bounds reported `Some(0)` — an upper bound
        // below a... nonexistent cost.  All three must agree that a zero
        // decrease is free, for any parameter set.
        for &(n, delta, f) in &[(64usize, 1usize, 1.1f64), (64, 2, 1.4), (16, 4, 1.8)] {
            let cb = CostBounds::for_params(&params(n, delta, f));
            for x in [2u64, 10, 1000] {
                assert_eq!(cb.lemma5_lower(x, 0), Some(0), "n={n} x={x}");
                assert_eq!(cb.lemma5_upper(x, 0), Some(0), "n={n} x={x}");
                assert_eq!(cb.lemma6_upper(x, 0, 100), Some(0), "n={n} x={x}");
            }
            // c = 1 keeps its one-operation upper bound.
            assert_eq!(cb.lemma6_upper(10, 1, 100), Some(1));
        }
    }

    #[test]
    fn lemma5_invalid_domains_return_none() {
        let cb = CostBounds::for_params(&params(64, 1, 1.1));
        assert_eq!(cb.lemma5_lower(10, 10), None, "c >= x");
        assert_eq!(cb.lemma5_upper(1, 1), None, "x <= 1");
        let cb1 = CostBounds::for_params(&params(64, 1, 1.0));
        assert_eq!(cb1.lemma5_lower(10, 5), None, "f = 1 leaves the domain");
    }

    #[test]
    fn iterations_scale_with_ratio_not_absolute_size() {
        // §6: "the same results can be achieved for any other x and c if
        // c/x remains constant" — the bound should be (nearly) invariant
        // under scaling x and c together.
        let cb = CostBounds::for_params(&params(64, 1, 1.1));
        let a = cb.lemma5_upper(100, 50).unwrap();
        let b = cb.lemma5_upper(10_000, 5_000).unwrap();
        assert!((a as i64 - b as i64).abs() <= 1, "{a} vs {b}");
    }

    #[test]
    fn cost_sensitive_to_f_not_delta() {
        // §6: iteration count is very sensitive to f, nearly independent
        // of δ and n.
        let up_f11 = CostBounds::for_params(&params(64, 1, 1.1))
            .lemma5_upper(100, 50)
            .unwrap();
        let up_f18 = CostBounds::for_params(&params(64, 2, 1.8))
            .lemma5_upper(100, 50)
            .unwrap();
        assert!(
            up_f18 < up_f11,
            "larger f needs fewer ops: {up_f18} < {up_f11}"
        );
        let up_d1 = CostBounds::for_params(&params(64, 2, 1.5))
            .lemma5_upper(100, 50)
            .unwrap();
        let up_d8 = CostBounds::for_params(&params(64, 8, 1.5))
            .lemma5_upper(100, 50)
            .unwrap();
        let rel = (up_d1 as f64 - up_d8 as f64).abs() / up_d1 as f64;
        assert!(rel < 0.5, "delta has minor effect: {up_d1} vs {up_d8}");
    }
}
