//! Exact first and second moments of the load in the one-processor-generator
//! model, and the *variation density* of §5 (Figure 6).
//!
//! # The model
//!
//! One generator (the paper's processor 1) and `p = n − 1` candidate
//! processors all start with the same load `v₀`.  Between two balancing
//! operations the generator's load grows by the trigger factor `f`; at a
//! balancing operation it chooses a uniform random `δ`-subset `S` of the
//! candidates and the `δ + 1` participants all take the average
//! `ν = (f·w₀ + Σ_{j∈S} w_j)/(δ + 1)`.
//!
//! # The engine
//!
//! The paper computes `E(v_t²)` with a partially-printed recursion over
//! *computation graphs* of cost `O(p²·t³)`.  We instead observe that the
//! update above is linear and symmetric in the candidates, so the sextuple
//!
//! ```text
//! m₀ = E[w₀]     m₁ = E[w_c]          (any candidate c)
//! q₀₀ = E[w₀²]   q₁₁ = E[w_c²]   q₀₁ = E[w₀·w_c]   q₁₂ = E[w_c·w_d]  (c ≠ d)
//! ```
//!
//! is closed under the balancing update: one step costs `O(1)` and the
//! whole curve of Figure 6 costs `O(t)`.  The recursion is *exact* — it is
//! cross-validated in the tests against exhaustive enumeration of all
//! candidate sequences and against Monte-Carlo sampling, and its mean
//! ratio `m₀/m₁` reproduces the operator `G` of Lemma 1 step for step.
//!
//! The *variation density* of the paper is
//! `VD(l_{i,t}) = sqrt(E(l²) − E(l)²)/E(l)` for a candidate processor
//! `i > 1`; [`MomentState::vd_candidate`] computes it (and
//! [`MomentState::vd_generator`] the analogous quantity for processor 1).

use rand::prelude::*;
use rand::seq::index::sample;
use rand_chacha::ChaCha8Rng;

/// Exact joint-moment state of the one-processor-generator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentState {
    /// Number of candidate processors (`p = n − 1`).
    pub p: usize,
    /// Neighbourhood size `δ ≤ p`.
    pub delta: usize,
    /// Trigger factor `f ≥ 1`.
    pub f: f64,
    /// `E[w₀]`: expected load of the generator.
    pub m0: f64,
    /// `E[w_c]`: expected load of any candidate.
    pub m1: f64,
    /// `E[w₀²]`.
    pub q00: f64,
    /// `E[w_c²]`.
    pub q11: f64,
    /// `E[w₀·w_c]`.
    pub q01: f64,
    /// `E[w_c·w_d]` for distinct candidates `c ≠ d` (0 when `p = 1`).
    pub q12: f64,
    /// Number of balancing steps performed so far.
    pub t: usize,
}

impl MomentState {
    /// Balanced start: every processor holds load `v0 > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is 0 or exceeds `p`, or if `f < 1` or `v0 <= 0`.
    pub fn balanced(p: usize, delta: usize, f: f64, v0: f64) -> Self {
        assert!(
            delta >= 1 && delta <= p,
            "need 1 <= delta <= p (got delta={delta}, p={p})"
        );
        assert!(f >= 1.0 && f.is_finite(), "need f >= 1 (got {f})");
        assert!(v0 > 0.0, "need a positive initial load (got {v0})");
        MomentState {
            p,
            delta,
            f,
            m0: v0,
            m1: v0,
            q00: v0 * v0,
            q11: v0 * v0,
            q01: v0 * v0,
            q12: if p >= 2 { v0 * v0 } else { 0.0 },
            t: 0,
        }
    }

    /// Advances the exact moment recursion by one balancing operation
    /// (the generator's load grew by the factor `f` since the last one).
    pub fn step(&mut self) {
        self.step_with_factor(self.f);
    }

    /// One balancing operation after the generator's load *shrank* by the
    /// factor `f` (the producer-consumer model's `C` direction).
    pub fn step_shrink(&mut self) {
        self.step_with_factor(1.0 / self.f);
    }

    fn step_with_factor(&mut self, f: f64) {
        self.op_with(self.delta, f);
    }

    /// One §5 *relaxed* balancing step: instead of one `δ`-subset
    /// operation, `δ` successive pairwise operations with fresh uniform
    /// candidates — the growth factor applies only before the first.
    /// This is the algorithm the paper's Figure 6 actually evaluated for
    /// `δ > 1`; comparing it with [`MomentState::step`] quantifies the
    /// relaxation error.
    pub fn step_relaxed(&mut self) {
        let delta = self.delta;
        let t_before = self.t;
        self.op_with(1, self.f);
        for _ in 1..delta {
            self.op_with(1, 1.0);
        }
        self.t = t_before + 1; // one balancing step, not δ
    }

    fn op_with(&mut self, delta: usize, f: f64) {
        let (p, d) = (self.p as f64, delta as f64);
        let dp1 = d + 1.0;

        // Moments of the post-balance value ν = (f·w₀ + Σ_{j∈S} w_j)/(δ+1).
        // By candidate symmetry these are the same conditioned on any fixed
        // candidate being inside S (shown by expanding the conditional sums).
        let e_nu = (f * self.m0 + d * self.m1) / dp1;
        let e_nu2 =
            (f * f * self.q00 + 2.0 * f * d * self.q01 + d * self.q11 + d * (d - 1.0) * self.q12)
                / (dp1 * dp1);
        // E[ν·w_c] for a candidate c outside S.
        let e_nu_out = (f * self.q01 + d * self.q12) / dp1;

        let in_s = d / p; // P(fixed candidate ∈ S)
        let m1 = in_s * e_nu + (1.0 - in_s) * self.m1;
        let q11 = in_s * e_nu2 + (1.0 - in_s) * self.q11;
        let q01 = in_s * e_nu2 + (1.0 - in_s) * e_nu_out;
        let q12 = if self.p >= 2 {
            let pp = p * (p - 1.0);
            let both = d * (d - 1.0) / pp;
            let one = 2.0 * d * (p - d) / pp;
            let none = (p - d) * (p - d - 1.0) / pp;
            both * e_nu2 + one * e_nu_out + none * self.q12
        } else {
            0.0
        };

        self.m0 = e_nu;
        self.q00 = e_nu2;
        self.m1 = m1;
        self.q11 = q11;
        self.q01 = q01;
        self.q12 = q12;
        self.t += 1;
    }

    /// Advances by `steps` balancing operations.
    pub fn advance(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// `E(l_1)/E(l_i)`: ratio of expected loads, which equals `G^t(1)` of
    /// Lemma 1 when started from a balanced state.
    pub fn ratio(&self) -> f64 {
        self.m0 / self.m1
    }

    /// Variation density of a candidate processor (`i > 1`), the quantity
    /// plotted in Figure 6: `sqrt(E(l²) − E(l)²)/E(l)`.
    pub fn vd_candidate(&self) -> f64 {
        variation_density(self.q11, self.m1)
    }

    /// Variation density of the generating processor.
    pub fn vd_generator(&self) -> f64 {
        variation_density(self.q00, self.m0)
    }
}

/// `sqrt(max(E[X²] − E[X]², 0)) / E[X]`, clamping tiny negative variance
/// from floating-point cancellation.
pub fn variation_density(second_moment: f64, mean: f64) -> f64 {
    (second_moment - mean * mean).max(0.0).sqrt() / mean
}

/// The relaxed-algorithm variation-density curve (the engine the paper's
/// Figure 6 used for `δ > 1`).
pub fn vd_curve_relaxed(p: usize, delta: usize, f: f64, steps: usize) -> Vec<f64> {
    let mut st = MomentState::balanced(p, delta, f, 1.0);
    let mut out = Vec::with_capacity(steps + 1);
    out.push(st.vd_candidate());
    for _ in 0..steps {
        st.step_relaxed();
        out.push(st.vd_candidate());
    }
    out
}

/// The full variation-density curve `t = 0 ..= steps` for a candidate
/// processor, as plotted in Figure 6.
pub fn vd_curve(p: usize, delta: usize, f: f64, steps: usize) -> Vec<f64> {
    let mut st = MomentState::balanced(p, delta, f, 1.0);
    let mut out = Vec::with_capacity(steps + 1);
    out.push(st.vd_candidate());
    for _ in 0..steps {
        st.step();
        out.push(st.vd_candidate());
    }
    out
}

/// Variation-density curve for an arbitrary grow/shrink schedule — the
/// §5 analysis extended to the one-processor-producer-consumer model.
/// Entry `k` of the result is the candidate VD after the first `k` steps
/// of `word`.
pub fn vd_curve_schedule(p: usize, delta: usize, f: f64, word: &[crate::schedule::Op]) -> Vec<f64> {
    let mut st = MomentState::balanced(p, delta, f, 1.0);
    let mut out = Vec::with_capacity(word.len() + 1);
    out.push(st.vd_candidate());
    for &op in word {
        match op {
            crate::schedule::Op::Grow => st.step(),
            crate::schedule::Op::Shrink => st.step_shrink(),
        }
        out.push(st.vd_candidate());
    }
    out
}

/// Monte-Carlo counterpart of [`vd_curve_schedule`]'s endpoint: runs the
/// real-valued model through `word` and returns
/// `(mean_gen, vd_gen, mean_cand, vd_cand)`.
pub fn monte_carlo_schedule(
    p: usize,
    delta: usize,
    f: f64,
    word: &[crate::schedule::Op],
    runs: usize,
    seed: u64,
) -> (f64, f64, f64, f64) {
    assert!(delta >= 1 && delta <= p);
    assert!(runs > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut sum0 = 0.0;
    let mut sumsq0 = 0.0;
    let mut sum1 = 0.0;
    let mut sumsq1 = 0.0;
    for _ in 0..runs {
        let mut w0 = 1.0f64;
        let mut w = vec![1.0f64; p];
        for &op in word {
            let factor = match op {
                crate::schedule::Op::Grow => f,
                crate::schedule::Op::Shrink => 1.0 / f,
            };
            let picked: Vec<usize> = sample(&mut rng, p, delta).iter().collect();
            let total: f64 = factor * w0 + picked.iter().map(|&j| w[j]).sum::<f64>();
            let nu = total / (delta as f64 + 1.0);
            w0 = nu;
            for &j in &picked {
                w[j] = nu;
            }
        }
        sum0 += w0;
        sumsq0 += w0 * w0;
        for &wj in &w {
            sum1 += wj;
            sumsq1 += wj * wj;
        }
    }
    let n0 = runs as f64;
    let n1 = (runs * p) as f64;
    let (m0, q0) = (sum0 / n0, sumsq0 / n0);
    let (m1, q1) = (sum1 / n1, sumsq1 / n1);
    (m0, variation_density(q0, m0), m1, variation_density(q1, m1))
}

/// How candidates are selected at a balancing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// The true algorithm: a uniform `δ`-subset (without replacement).
    Subset,
    /// The paper's §5 "relaxed" algorithm: `δ` successive *pairwise*
    /// balances with fresh uniform candidates, growth applied once.
    Relaxed,
}

/// Monte-Carlo estimate of the one-processor-generator model with
/// real-valued loads, matching the semantics of [`MomentState`].
///
/// Returns `(mean_gen, vd_gen, mean_cand, vd_cand)` measured after `steps`
/// balancing operations, averaged over `runs` independent seeded runs
/// (candidate statistics are averaged over all candidates).
pub fn monte_carlo(
    p: usize,
    delta: usize,
    f: f64,
    steps: usize,
    runs: usize,
    seed: u64,
    selection: Selection,
) -> (f64, f64, f64, f64) {
    assert!(delta >= 1 && delta <= p);
    assert!(runs > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut sum0 = 0.0;
    let mut sumsq0 = 0.0;
    let mut sum1 = 0.0;
    let mut sumsq1 = 0.0;
    let mut picked: Vec<usize> = Vec::with_capacity(delta);
    for _ in 0..runs {
        let mut w0 = 1.0f64;
        let mut w = vec![1.0f64; p];
        for _ in 0..steps {
            match selection {
                Selection::Subset => {
                    picked.clear();
                    picked.extend(sample(&mut rng, p, delta).iter());
                    let grown = f * w0;
                    let total: f64 = grown + picked.iter().map(|&j| w[j]).sum::<f64>();
                    let nu = total / (picked.len() as f64 + 1.0);
                    w0 = nu;
                    for &j in &picked {
                        w[j] = nu;
                    }
                }
                Selection::Relaxed => {
                    let mut cur = f * w0;
                    for _ in 0..delta {
                        let j = rng.gen_range(0..p);
                        let avg = (cur + w[j]) / 2.0;
                        w[j] = avg;
                        cur = avg;
                    }
                    w0 = cur;
                }
            }
        }
        sum0 += w0;
        sumsq0 += w0 * w0;
        for &wj in &w {
            sum1 += wj;
            sumsq1 += wj * wj;
        }
    }
    let n0 = runs as f64;
    let n1 = (runs * p) as f64;
    let (m0, q0) = (sum0 / n0, sumsq0 / n0);
    let (m1, q1) = (sum1 / n1, sumsq1 / n1);
    (m0, variation_density(q0, m0), m1, variation_density(q1, m1))
}

/// Exhaustive enumeration over *all* candidate-subset sequences of length
/// `steps` (for cross-validation; cost `C(p,δ)^steps`).
///
/// Returns the same tuple as [`monte_carlo`], but exactly.
///
/// # Panics
///
/// Panics if the enumeration would exceed ~10⁷ states.
pub fn enumerate_exact(p: usize, delta: usize, f: f64, steps: usize) -> (f64, f64, f64, f64) {
    let subsets = k_subsets(p, delta);
    let count = subsets.len();
    let total: f64 = (count as f64).powi(steps as i32);
    assert!(total <= 1e7, "enumeration too large: {count}^{steps}");

    let mut acc = Accum::default();
    let mut w = vec![1.0f64; p];
    enumerate_rec(&subsets, f, steps, 1.0, &mut w, &mut acc);
    let n0 = acc.count;
    let n1 = acc.count * p as f64;
    let (m0, q0) = (acc.sum0 / n0, acc.sumsq0 / n0);
    let (m1, q1) = (acc.sum1 / n1, acc.sumsq1 / n1);
    (m0, variation_density(q0, m0), m1, variation_density(q1, m1))
}

#[derive(Default)]
struct Accum {
    count: f64,
    sum0: f64,
    sumsq0: f64,
    sum1: f64,
    sumsq1: f64,
}

fn enumerate_rec(
    subsets: &[Vec<usize>],
    f: f64,
    remaining: usize,
    w0: f64,
    w: &mut [f64],
    acc: &mut Accum,
) {
    if remaining == 0 {
        acc.count += 1.0;
        acc.sum0 += w0;
        acc.sumsq0 += w0 * w0;
        for &wj in w.iter() {
            acc.sum1 += wj;
            acc.sumsq1 += wj * wj;
        }
        return;
    }
    for s in subsets {
        let grown = f * w0;
        let total: f64 = grown + s.iter().map(|&j| w[j]).sum::<f64>();
        let nu = total / (s.len() as f64 + 1.0);
        let saved: Vec<f64> = s.iter().map(|&j| w[j]).collect();
        for &j in s {
            w[j] = nu;
        }
        enumerate_rec(subsets, f, remaining - 1, nu, w, acc);
        for (&j, &old) in s.iter().zip(saved.iter()) {
            w[j] = old;
        }
    }
}

/// All `δ`-subsets of `{0, .., p−1}` in lexicographic order.
pub fn k_subsets(p: usize, delta: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(delta);
    fn rec(start: usize, p: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == 0 {
            out.push(cur.clone());
            return;
        }
        for i in start..=(p - k) {
            cur.push(i);
            rec(i + 1, p, k - 1, cur, out);
            cur.pop();
        }
    }
    if delta <= p {
        rec(0, p, delta, &mut cur, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::AlgoParams;

    #[test]
    fn balanced_start_has_zero_variation() {
        let st = MomentState::balanced(10, 1, 1.1, 1.0);
        assert_eq!(st.vd_candidate(), 0.0);
        assert_eq!(st.vd_generator(), 0.0);
        assert_eq!(st.ratio(), 1.0);
    }

    #[test]
    fn ratio_reproduces_lemma1_operator_g() {
        // The mean ratio of the moment recursion must equal G^t(1) exactly,
        // for several (n, δ, f).
        for &(n, delta, f) in &[
            (64usize, 1usize, 1.1f64),
            (64, 4, 1.8),
            (10, 2, 1.2),
            (35, 4, 1.2),
        ] {
            let params = AlgoParams::new(n, delta, f).unwrap();
            let mut st = MomentState::balanced(n - 1, delta, f, 1.0);
            for t in 1..=200 {
                st.step();
                let expected = params.g_iter(1.0, t);
                assert!(
                    (st.ratio() - expected).abs() < 1e-9 * expected,
                    "n={n} d={delta} f={f} t={t}: {} vs {expected}",
                    st.ratio()
                );
            }
        }
    }

    #[test]
    fn moments_match_exhaustive_enumeration_delta1() {
        for &(p, f, steps) in &[(2usize, 1.1f64, 7usize), (3, 1.5, 6), (4, 1.9, 5)] {
            let (em0, evd0, em1, evd1) = enumerate_exact(p, 1, f, steps);
            let mut st = MomentState::balanced(p, 1, f, 1.0);
            st.advance(steps);
            assert!((st.m0 - em0).abs() < 1e-9 * em0, "m0: {} vs {em0}", st.m0);
            assert!((st.m1 - em1).abs() < 1e-9 * em1, "m1: {} vs {em1}", st.m1);
            assert!((st.vd_generator() - evd0).abs() < 1e-7, "vd0 p={p} f={f}");
            assert!((st.vd_candidate() - evd1).abs() < 1e-7, "vd1 p={p} f={f}");
        }
    }

    #[test]
    fn moments_match_exhaustive_enumeration_delta2_and_3() {
        for &(p, delta, f, steps) in &[
            (4usize, 2usize, 1.3f64, 5usize),
            (5, 2, 2.0, 4),
            (4, 3, 1.7, 5),
        ] {
            let (em0, evd0, em1, evd1) = enumerate_exact(p, delta, f, steps);
            let mut st = MomentState::balanced(p, delta, f, 1.0);
            st.advance(steps);
            assert!((st.m0 - em0).abs() < 1e-9 * em0);
            assert!((st.m1 - em1).abs() < 1e-9 * em1);
            assert!((st.vd_generator() - evd0).abs() < 1e-7, "p={p} δ={delta}");
            assert!((st.vd_candidate() - evd1).abs() < 1e-7, "p={p} δ={delta}");
        }
    }

    #[test]
    fn moments_match_monte_carlo() {
        let (p, delta, f, steps) = (10, 2, 1.2, 40);
        let mut st = MomentState::balanced(p, delta, f, 1.0);
        st.advance(steps);
        let (m0, vd0, m1, vd1) = monte_carlo(p, delta, f, steps, 40_000, 7, Selection::Subset);
        assert!((st.m0 - m0).abs() / st.m0 < 0.02, "m0 {} vs MC {m0}", st.m0);
        assert!((st.m1 - m1).abs() / st.m1 < 0.02, "m1 {} vs MC {m1}", st.m1);
        assert!(
            (st.vd_generator() - vd0).abs() < 0.03,
            "{} vs {vd0}",
            st.vd_generator()
        );
        assert!(
            (st.vd_candidate() - vd1).abs() < 0.03,
            "{} vs {vd1}",
            st.vd_candidate()
        );
    }

    #[test]
    fn figure6_variation_density_small_and_convergent() {
        // §5 / Figure 6: VD is small in general, converges quickly in t,
        // and can be bounded independent of network size.
        for &(delta, f) in &[
            (1usize, 1.1f64),
            (1, 1.2),
            (2, 1.1),
            (2, 1.2),
            (4, 1.1),
            (4, 1.2),
        ] {
            for p in [9usize, 34] {
                let curve = vd_curve(p, delta, f, 150);
                let last = curve[150];
                assert!(last < 1.0, "VD stays small: δ={delta} f={f} p={p}: {last}");
                // Converged: the last 30 steps move by < 2%.
                let drift = (curve[150] - curve[120]).abs();
                assert!(drift < 0.02 * last.max(0.05), "converged: drift={drift}");
            }
        }
    }

    #[test]
    fn figure6_tradeoff_larger_delta_smaller_vd() {
        // Figure 6 ordering: for fixed f, larger δ gives lower VD.
        let p = 34;
        let f = 1.2;
        let vd1 = vd_curve(p, 1, f, 150)[150];
        let vd2 = vd_curve(p, 2, f, 150)[150];
        let vd4 = vd_curve(p, 4, f, 150)[150];
        assert!(
            vd1 > vd2 && vd2 > vd4,
            "VD(δ=1)={vd1} > VD(δ=2)={vd2} > VD(δ=4)={vd4}"
        );
    }

    #[test]
    fn relaxed_selection_close_to_subset_for_small_delta_over_p() {
        // With δ = 1 the relaxed and true algorithms coincide exactly.
        let a = monte_carlo(6, 1, 1.4, 25, 20_000, 3, Selection::Subset);
        let b = monte_carlo(6, 1, 1.4, 25, 20_000, 3, Selection::Relaxed);
        assert!((a.0 - b.0).abs() / a.0 < 0.02);
        assert!((a.3 - b.3).abs() < 0.03);
    }

    #[test]
    fn relaxed_moments_match_relaxed_monte_carlo() {
        let (p, delta, f, steps) = (8usize, 3usize, 1.2f64, 25usize);
        let mut st = MomentState::balanced(p, delta, f, 1.0);
        for _ in 0..steps {
            st.step_relaxed();
        }
        let (m0, vd0, m1, vd1) = monte_carlo(p, delta, f, steps, 40_000, 9, Selection::Relaxed);
        assert!((st.m0 - m0).abs() / st.m0 < 0.02, "m0 {} vs {m0}", st.m0);
        assert!((st.m1 - m1).abs() / st.m1 < 0.02, "m1 {} vs {m1}", st.m1);
        assert!(
            (st.vd_generator() - vd0).abs() < 0.03,
            "{} vs {vd0}",
            st.vd_generator()
        );
        assert!(
            (st.vd_candidate() - vd1).abs() < 0.03,
            "{} vs {vd1}",
            st.vd_candidate()
        );
    }

    #[test]
    fn relaxed_moments_match_exhaustive_enumeration() {
        // Enumerate every pairwise-candidate tuple: the relaxed step with
        // δ sub-ops is the δ=1 process with factor word (f, 1, 1, …).
        let (p, delta, f, steps) = (3usize, 2usize, 1.5f64, 3usize);
        let mut acc = Accum::default();
        fn rec(p: usize, word: &[f64], w0: f64, w: &mut Vec<f64>, acc: &mut Accum) {
            if word.is_empty() {
                acc.count += 1.0;
                acc.sum0 += w0;
                acc.sumsq0 += w0 * w0;
                for &wj in w.iter() {
                    acc.sum1 += wj;
                    acc.sumsq1 += wj * wj;
                }
                return;
            }
            for j in 0..p {
                let avg = (word[0] * w0 + w[j]) / 2.0;
                let saved = w[j];
                w[j] = avg;
                rec(p, &word[1..], avg, w, acc);
                w[j] = saved;
            }
        }
        let mut word = Vec::new();
        for _ in 0..steps {
            word.push(f);
            word.extend(std::iter::repeat_n(1.0, delta - 1));
        }
        let mut w = vec![1.0f64; p];
        rec(p, &word, 1.0, &mut w, &mut acc);
        let n0 = acc.count;
        let n1 = acc.count * p as f64;
        let (em0, eq0) = (acc.sum0 / n0, acc.sumsq0 / n0);
        let (em1, eq1) = (acc.sum1 / n1, acc.sumsq1 / n1);

        let mut st = MomentState::balanced(p, delta, f, 1.0);
        for _ in 0..steps {
            st.step_relaxed();
        }
        assert!((st.m0 - em0).abs() < 1e-9 * em0, "{} vs {em0}", st.m0);
        assert!((st.m1 - em1).abs() < 1e-9 * em1, "{} vs {em1}", st.m1);
        assert!((st.vd_generator() - variation_density(eq0, em0)).abs() < 1e-7);
        assert!((st.vd_candidate() - variation_density(eq1, em1)).abs() < 1e-7);
    }

    #[test]
    fn relaxation_error_is_small_but_nonzero() {
        // The paper's Figure 6 used the relaxed engine for δ > 1; the true
        // subset algorithm gives slightly different (typically lower) VD.
        let true_vd = vd_curve(34, 4, 1.2, 150)[150];
        let relaxed_vd = vd_curve_relaxed(34, 4, 1.2, 150)[150];
        assert!(
            (true_vd - relaxed_vd).abs() > 1e-4,
            "engines differ: {true_vd} vs {relaxed_vd}"
        );
        assert!(
            (true_vd - relaxed_vd).abs() < 0.3 * true_vd.max(relaxed_vd),
            "but not wildly: {true_vd} vs {relaxed_vd}"
        );
    }

    #[test]
    fn k_subsets_counts() {
        assert_eq!(k_subsets(5, 2).len(), 10);
        assert_eq!(k_subsets(4, 4).len(), 1);
        assert_eq!(k_subsets(3, 1), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn delta_larger_than_p_panics() {
        MomentState::balanced(3, 4, 1.1, 1.0);
    }

    #[test]
    fn shrink_ratio_reproduces_operator_c() {
        // Alternating grow/shrink: the mean ratio must track the mixed
        // operator word G, C, G, C, ... exactly (Theorem 3 machinery).
        let params = crate::operators::AlgoParams::new(16, 2, 1.4).unwrap();
        let mut st = MomentState::balanced(15, 2, 1.4, 1.0);
        let mut k = 1.0;
        for i in 0..100 {
            if i % 2 == 0 {
                st.step();
                k = params.g(k);
            } else {
                st.step_shrink();
                k = params.c(k);
            }
            assert!(
                (st.ratio() - k).abs() < 1e-9 * k,
                "step {i}: {} vs {k}",
                st.ratio()
            );
        }
        // Theorem 3: the ratio stayed inside [FIX(n,δ,1/f), FIX(n,δ,f)].
        assert!(st.ratio() >= params.fix_inv() - 1e-9);
        assert!(st.ratio() <= params.fix() + 1e-9);
    }

    #[test]
    fn mixed_schedule_vd_matches_monte_carlo() {
        use crate::schedule::Op;
        let word: Vec<Op> = (0..30)
            .map(|i| if i % 3 == 0 { Op::Shrink } else { Op::Grow })
            .collect();
        let exact = vd_curve_schedule(10, 2, 1.3, &word);
        let (_, _, _, mc_vd) = monte_carlo_schedule(10, 2, 1.3, &word, 40_000, 13);
        let last = *exact.last().unwrap();
        assert!((last - mc_vd).abs() < 0.03, "exact {last} vs MC {mc_vd}");
    }

    #[test]
    fn producer_consumer_vd_stays_bounded() {
        use crate::schedule::Op;
        // Long alternating schedule: VD converges to a bounded oscillation
        // rather than growing (the §5 claim extended to consumption).
        let word: Vec<Op> = (0..400)
            .map(|i| if i % 2 == 0 { Op::Grow } else { Op::Shrink })
            .collect();
        let curve = vd_curve_schedule(34, 1, 1.2, &word);
        let late_max = curve[200..].iter().copied().fold(0.0f64, f64::max);
        assert!(
            late_max < 0.5,
            "VD bounded under producer-consumer: {late_max}"
        );
        let drift = (curve[400] - curve[300]).abs();
        assert!(drift < 0.02, "converged oscillation: {drift}");
    }
}
