//! Closed-form analysis layer for the SPAA'93 dynamic distributed load
//! balancing algorithm of Lüling & Monien.
//!
//! This crate contains no simulation of the algorithm itself (that lives in
//! `dlb-core`); it implements the *analysis* of the paper:
//!
//! * [`operators`] — the one-step expectation operators `G` and `C` of
//!   Lemma 1, their common fixed point `FIX(n, δ, f)` (Theorem 1) and the
//!   network-size-independent limits of Theorem 2.
//! * [`bounds`] — the quantitative statements of Theorems 1–4 and the
//!   cost bounds of Lemmas 5 and 6 (constants `U`, `D`, `D_i`).
//! * [`moments`] — an exact recursion for the first and second moments of
//!   the load in the one-processor-generator model, from which the
//!   variation density of §5 (Figure 6) is computed exactly.
//! * [`schedule`] — mixed grow/shrink words (the producer-consumer model in
//!   full generality), contraction rates and convergence-step predictions.
//! * [`compgraph`] — the computation-graph model of §5: occupancy counts
//!   `n(t, u)`, graph sampling, weighted-path-sum evaluation and exhaustive
//!   enumeration for cross-validation.
//!
//! All quantities are parameterised by the triple the paper uses
//! throughout: the network size `n`, the neighbourhood size `δ` and the
//! trigger factor `f`, with the standing assumption `1 ≤ f < δ + 1`.
//!
//! ```
//! use dlb_theory::{AlgoParams, TheoremBounds};
//!
//! let params = AlgoParams::new(64, 1, 1.1)?;
//! let bounds = TheoremBounds::for_params(&params);
//!
//! // Theorem 1: iterating G from a balanced start converges to FIX ...
//! let ratio = params.g_iter(1.0, 10_000);
//! assert!((ratio - bounds.fix).abs() < 1e-9);
//! // ... and Theorem 2 bounds it independent of the network size:
//! assert!(bounds.fix <= bounds.fix_limit); // δ/(δ+1−f)
//! # Ok::<(), dlb_theory::ParamError>(())
//! ```

pub mod bounds;
pub mod compgraph;
pub mod moments;
pub mod operators;
pub mod schedule;

pub use bounds::{CostBounds, TheoremBounds};
pub use operators::{AlgoParams, ParamError};

/// Relative tolerance used by the crate's internal convergence loops.
pub(crate) const EPS: f64 = 1e-12;
