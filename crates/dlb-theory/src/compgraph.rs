//! The computation-graph model of §5.
//!
//! A computation of the one-processor-generator model with `δ = 1` is
//! described by the sequence `c_1, …, c_t` of balancing candidates chosen
//! by the generator.  The paper encodes such a sequence as a graph on nodes
//! `0, …, t`:
//!
//! * a *forward* edge `(i−1, i)` with label `f/2` — the generator's load
//!   grew by factor `f` and contributes half of the new average;
//! * a *bow* edge `(j, i)` with label `1/2`, where `j` is the last step at
//!   which candidate `c_i` participated (`j = 0` if it never did) — the
//!   candidate still holds the value it received at step `j` and
//!   contributes the other half.
//!
//! The load of the generator after step `t` is then the sum of the label
//! products over all paths from node 0 to node `t`, which equals the
//! direct recursion `v_i = (f/2)·v_{i−1} + (1/2)·v_{last(c_i)}` — both
//! evaluations are implemented and tested against each other.
//!
//! The module also implements the occupancy counts `n(t, u)` (number of
//! candidate sequences of length `t` using exactly `u` distinct
//! processors; the paper's footnote recurrence) and the refined counts
//! `n(t, u, i)` used by the paper's variation recursion, plus a
//! numerically stable probability version for large `t`.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A `δ = 1` computation graph: the candidate sequence plus the derived
/// bow-edge targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompGraph {
    /// Candidate chosen at each step `1..=t` (values in `0..p`).
    pub candidates: Vec<usize>,
    /// `bow[i]` = node the bow edge of step `i+1` comes from
    /// (the last previous step using the same candidate, or 0).
    pub bow: Vec<usize>,
}

impl CompGraph {
    /// Builds the graph for a given candidate sequence.
    pub fn from_candidates(candidates: Vec<usize>) -> Self {
        let mut last_use: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut bow = Vec::with_capacity(candidates.len());
        for (step0, &c) in candidates.iter().enumerate() {
            let step = step0 + 1;
            bow.push(last_use.get(&c).copied().unwrap_or(0));
            last_use.insert(c, step);
        }
        CompGraph { candidates, bow }
    }

    /// Samples a uniform random candidate sequence of length `t` over `p`
    /// processors.
    pub fn sample(p: usize, t: usize, rng: &mut impl Rng) -> Self {
        let candidates = (0..t).map(|_| rng.gen_range(0..p)).collect();
        Self::from_candidates(candidates)
    }

    /// Number of balancing steps `t`.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True if the graph has no steps.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Number of distinct processors used.
    pub fn processors_used(&self) -> usize {
        let mut seen: Vec<usize> = self.candidates.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Evaluates `v_t` by the direct recursion
    /// `v_i = (f/2)·v_{i−1} + (1/2)·v_{bow(i)}`, starting from `v_0`.
    ///
    /// Returns the full node-value vector `v_0 ..= v_t`.
    pub fn evaluate(&self, f: f64, v0: f64) -> Vec<f64> {
        let t = self.len();
        let mut v = Vec::with_capacity(t + 1);
        v.push(v0);
        for i in 1..=t {
            let val = 0.5 * f * v[i - 1] + 0.5 * v[self.bow[i - 1]];
            v.push(val);
        }
        v
    }

    /// Evaluates `v_t` as the sum of label products over all paths from
    /// node 0 to node `t` (the paper's definition).  Exponential in the
    /// number of bow edges on a path in the worst case; used to validate
    /// [`CompGraph::evaluate`] on small graphs.
    pub fn path_sum(&self, f: f64, v0: f64) -> f64 {
        // Dynamic count: weight reaching node k = Σ over incoming edges of
        // weight(source)·label — identical to `evaluate`, so to make this
        // a genuinely independent check we enumerate paths recursively
        // backwards from node t.
        fn rec(graph: &CompGraph, f: f64, v0: f64, node: usize) -> f64 {
            if node == 0 {
                return v0;
            }
            let fwd = 0.5 * f * rec(graph, f, v0, node - 1);
            let bow = 0.5 * rec(graph, f, v0, graph.bow[node - 1]);
            fwd + bow
        }
        rec(self, f, v0, self.len())
    }
}

/// `n(t, u)`: the number of candidate sequences of length `t` over a pool
/// of `u` processors that use **all** `u` of them, via the paper's
/// footnote recurrence `n(t, u) = u^t − Σ_{j<u} n(t, j)·C(u, j)`.
///
/// Returns `None` on `u128` overflow (large `t`); use
/// [`occupancy_prob`] instead for large instances.
pub fn occupancy_count(t: u32, u: u32) -> Option<u128> {
    if u == 0 {
        return Some(if t == 0 { 1 } else { 0 });
    }
    if (u as u64) > (t as u64) {
        return Some(0);
    }
    let mut table: Vec<u128> = Vec::with_capacity(u as usize + 1);
    table.push(if t == 0 { 1 } else { 0 }); // n(t, 0)
    for uu in 1..=u {
        let mut val = (uu as u128).checked_pow(t)?;
        for j in 1..uu {
            let term = table[j as usize].checked_mul(binomial(uu as u64, j as u64)?)?;
            val = val.checked_sub(term)?;
        }
        table.push(val);
    }
    Some(table[u as usize])
}

/// Binomial coefficient `C(n, k)` in `u128`, `None` on overflow.
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128;
    }
    Some(acc)
}

/// `n(t, u, i)`: among length-`t` sequences over exactly `u` processors,
/// the number whose step-`t` candidate was last used at step `i` (`i = 0`:
/// never used before) and not in any step between.  Brute-force count over
/// all `u^t` sequences restricted to surjective ones; for tests only.
pub fn occupancy_count_refined_bruteforce(t: u32, u: u32, i: u32) -> u64 {
    assert!(t <= 12 && u <= 6, "brute force only for small instances");
    let t = t as usize;
    let u = u as usize;
    let mut count = 0u64;
    let total = (u as u64).pow(t as u32);
    for code in 0..total {
        let mut seq = Vec::with_capacity(t);
        let mut x = code;
        for _ in 0..t {
            seq.push((x % u as u64) as usize);
            x /= u as u64;
        }
        let mut distinct: Vec<usize> = seq.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() != u {
            continue;
        }
        let last = seq[t - 1];
        let mut last_prev = 0usize;
        for (step0, &c) in seq[..t - 1].iter().enumerate() {
            if c == last {
                last_prev = step0 + 1;
            }
        }
        if last_prev == i as usize {
            count += 1;
        }
    }
    count
}

/// Probability that a uniform random candidate sequence of length `t` over
/// `p` processors uses exactly `u` distinct processors.  Numerically
/// stable `O(t·u)` dynamic program (no big integers), exact up to f64
/// rounding.
pub fn occupancy_prob(t: usize, u: usize, p: usize) -> f64 {
    if u > p || u > t {
        return if t == 0 && u == 0 { 1.0 } else { 0.0 };
    }
    // q[k] = P(exactly k distinct after current number of steps).
    let mut q = vec![0.0f64; u + 1];
    q[0] = 1.0;
    let pf = p as f64;
    for _ in 0..t {
        let mut next = vec![0.0f64; u + 1];
        for k in 0..=u {
            if q[k] == 0.0 {
                continue;
            }
            // Stay at k distinct: reuse one of the k.
            next[k] += q[k] * (k as f64 / pf);
            // Grow to k+1 distinct.
            if k < u {
                next[k + 1] += q[k] * ((pf - k as f64) / pf);
            }
        }
        q = next;
    }
    q[u]
}

/// Monte-Carlo estimate of `(E[v_t], VD(v_t))` for the generator via the
/// computation-graph representation: sample graphs, evaluate path sums.
pub fn graph_monte_carlo(p: usize, f: f64, t: usize, runs: usize, seed: u64) -> (f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for _ in 0..runs {
        let graph = CompGraph::sample(p, t, &mut rng);
        let v = graph.evaluate(f, 1.0);
        let vt = v[t];
        sum += vt;
        sumsq += vt * vt;
    }
    let mean = sum / runs as f64;
    (
        mean,
        crate::moments::variation_density(sumsq / runs as f64, mean),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_example_graph_bows() {
        // Paper Figure 2 example: candidates (2, 4, -3, 3, 4, 2, 2) of
        // processor 1 — the "-3" appears to be a typo for 3; with
        // candidates (2,4,3,3,4,2,2) the bow structure is:
        // step1: 2 never used -> bow 0;  step2: 4 -> 0;  step3: 3 -> 0;
        // step4: 3 last at 3; step5: 4 last at 2; step6: 2 last at 1;
        // step7: 2 last at 6.
        let graph = CompGraph::from_candidates(vec![2, 4, 3, 3, 4, 2, 2]);
        assert_eq!(graph.bow, vec![0, 0, 0, 3, 2, 1, 6]);
        assert_eq!(graph.processors_used(), 3);
    }

    #[test]
    fn evaluate_matches_path_sum() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let graph = CompGraph::sample(4, 10, &mut rng);
            let direct = graph.evaluate(1.3, 1.0)[10];
            let paths = graph.path_sum(1.3, 1.0);
            assert!((direct - paths).abs() < 1e-9 * direct.abs().max(1.0));
        }
    }

    #[test]
    fn evaluate_with_f_one_conserves_scale() {
        // f = 1: every node value is a convex combination of earlier
        // values, so starting from all-ones every value is exactly 1.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let graph = CompGraph::sample(5, 20, &mut rng);
        for v in graph.evaluate(1.0, 1.0) {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn occupancy_count_is_surjection_count() {
        // n(t, u) = u!·S(t, u): n(3, 2) = 6, n(4, 2) = 14, n(4, 3) = 36.
        assert_eq!(occupancy_count(3, 2), Some(6));
        assert_eq!(occupancy_count(4, 2), Some(14));
        assert_eq!(occupancy_count(4, 3), Some(36));
        assert_eq!(occupancy_count(5, 5), Some(120)); // 5!
        assert_eq!(occupancy_count(3, 4), Some(0)); // can't use 4 in 3 steps
        assert_eq!(occupancy_count(0, 0), Some(1));
    }

    #[test]
    fn refined_counts_sum_to_total() {
        // Σ_{i=0}^{t−1} n(t, u, i) = n(t, u).
        for &(t, u) in &[(4u32, 2u32), (5, 3), (6, 3)] {
            let total: u64 = (0..t)
                .map(|i| occupancy_count_refined_bruteforce(t, u, i))
                .sum();
            assert_eq!(total as u128, occupancy_count(t, u).unwrap(), "t={t} u={u}");
        }
    }

    #[test]
    fn occupancy_prob_matches_counts() {
        // P(exactly u distinct | pool p) = n(t,u)·C(p,u) / p^t.
        for &(t, u, p) in &[(5usize, 3usize, 4usize), (6, 2, 6), (8, 5, 5)] {
            let count = occupancy_count(t as u32, u as u32).unwrap() as f64;
            let choose = binomial(p as u64, u as u64).unwrap() as f64;
            let expected = count * choose / (p as f64).powi(t as i32);
            let got = occupancy_prob(t, u, p);
            assert!(
                (got - expected).abs() < 1e-12,
                "t={t} u={u} p={p}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn occupancy_prob_sums_to_one() {
        let (t, p) = (150usize, 35usize);
        let total: f64 = (0..=p).map(|u| occupancy_prob(t, u, p)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn graph_mc_agrees_with_moment_recursion() {
        let (p, f, t) = (6usize, 1.2f64, 30usize);
        let (mean, vd) = graph_monte_carlo(p, f, t, 60_000, 11);
        let mut st = crate::moments::MomentState::balanced(p, 1, f, 1.0);
        st.advance(t);
        assert!((mean - st.m0).abs() / st.m0 < 0.02, "{mean} vs {}", st.m0);
        assert!(
            (vd - st.vd_generator()).abs() < 0.03,
            "{vd} vs {}",
            st.vd_generator()
        );
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(10, 3), Some(120));
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(3, 5), Some(0));
    }
}
