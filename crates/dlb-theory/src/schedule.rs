//! Mixed increase/decrease schedules — the one-processor-producer-
//! consumer model of §3 in full generality.
//!
//! A *schedule* is a word over `{G, C}`: at each balancing initiation the
//! generator's load has either grown by the factor `f` (a `G` step) or
//! shrunk by `1/f` (a `C` step).  Theorem 3 states that for **any** such
//! word starting from a balanced state the expected-load ratio stays in
//! `[FIX(n, δ, 1/f), FIX(n, δ, f)]`; this module applies words to the
//! ratio and verifies the invariant, and also computes the contraction
//! rate that governs how fast `G^t` converges (the derivative of `G` at
//! its fixed point).

use crate::operators::{fix, g_op, AlgoParams};

/// One step of a §3 schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Workload grew by factor `f` before the balancing.
    Grow,
    /// Workload shrank by factor `1/f` before the balancing.
    Shrink,
}

/// Applies a schedule word to a starting ratio, returning the trajectory
/// (length `word.len() + 1`, starting with `k0`).
pub fn apply_schedule(params: &AlgoParams, k0: f64, word: &[Op]) -> Vec<f64> {
    let mut out = Vec::with_capacity(word.len() + 1);
    out.push(k0);
    let mut k = k0;
    for &op in word {
        k = match op {
            Op::Grow => params.g(k),
            Op::Shrink => params.c(k),
        };
        out.push(k);
    }
    out
}

/// Theorem 3 check: does every point of the trajectory starting from the
/// balanced ratio 1 stay inside `[FIX(n,δ,1/f), FIX(n,δ,f)]`?
pub fn theorem3_invariant_holds(params: &AlgoParams, word: &[Op]) -> bool {
    let lo = params.fix_inv();
    let hi = params.fix();
    apply_schedule(params, 1.0, word)
        .into_iter()
        .all(|k| k >= lo - 1e-9 && k <= hi + 1e-9)
}

/// The derivative of `G` at a point `k`:
///
/// `G(k) = (k·f + δ)(n−1) / (δ·k·f + δ(n−2) + (n−1))`, so
/// `G'(k) = f·(n−1)·(δ(n−2) + (n−1) − δ²) / (δ·k·f + δ(n−2) + (n−1))²`.
pub fn g_derivative(n: usize, delta: usize, f: f64, k: f64) -> f64 {
    let nf = n as f64;
    let d = delta as f64;
    let den = d * k * f + d * (nf - 2.0) + (nf - 1.0);
    f * (nf - 1.0) * (d * (nf - 2.0) + (nf - 1.0) - d * d) / (den * den)
}

/// The contraction rate of the fixed-point iteration: `|G'(FIX)| < 1`
/// (which is what makes Banach's theorem applicable).  Convergence to
/// within `ε` of `FIX` takes roughly `log ε / log rate` steps.
pub fn contraction_rate(n: usize, delta: usize, f: f64) -> f64 {
    g_derivative(n, delta, f, fix(n, delta, f)).abs()
}

/// Predicted number of iterations for `G^t(1)` to come within relative
/// `eps` of the fixed point (via the contraction rate).
pub fn predicted_convergence_steps(n: usize, delta: usize, f: f64, eps: f64) -> usize {
    let rate = contraction_rate(n, delta, f);
    if rate <= 0.0 || rate >= 1.0 {
        return usize::MAX;
    }
    let fx = fix(n, delta, f);
    let gap0 = (fx - 1.0).abs().max(f64::MIN_POSITIVE) / fx;
    if gap0 <= eps {
        return 0;
    }
    ((eps / gap0).ln() / rate.ln()).ceil() as usize
}

/// Measured number of iterations for `G^t(1)` to come within relative
/// `eps` of the fixed point.
pub fn measured_convergence_steps(n: usize, delta: usize, f: f64, eps: f64) -> usize {
    let fx = fix(n, delta, f);
    let mut k = 1.0;
    for t in 0..1_000_000 {
        if (fx - k).abs() <= eps * fx {
            return t;
        }
        k = g_op(n, delta, f, k);
    }
    usize::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, delta: usize, f: f64) -> AlgoParams {
        AlgoParams::new(n, delta, f).unwrap()
    }

    #[test]
    fn derivative_matches_finite_differences() {
        for &(n, delta, f, k) in &[
            (64usize, 1usize, 1.1f64, 1.0f64),
            (64, 4, 1.8, 2.5),
            (16, 2, 1.3, 0.8),
        ] {
            let h = 1e-6;
            let numeric = (g_op(n, delta, f, k + h) - g_op(n, delta, f, k - h)) / (2.0 * h);
            let closed = g_derivative(n, delta, f, k);
            assert!(
                (numeric - closed).abs() < 1e-5 * closed.abs().max(1.0),
                "n={n} δ={delta} f={f} k={k}: {numeric} vs {closed}"
            );
        }
    }

    #[test]
    fn contraction_rate_below_one() {
        for &(n, delta, f) in &[(64usize, 1usize, 1.1f64), (64, 4, 1.8), (1024, 8, 2.0)] {
            let rate = contraction_rate(n, delta, f);
            assert!(
                rate > 0.0 && rate < 1.0,
                "rate {rate} for ({n},{delta},{f})"
            );
        }
    }

    #[test]
    fn predicted_convergence_close_to_measured() {
        for &(n, delta, f) in &[(64usize, 1usize, 1.1f64), (64, 4, 1.8), (256, 2, 1.3)] {
            let eps = 1e-6;
            let predicted = predicted_convergence_steps(n, delta, f, eps);
            let measured = measured_convergence_steps(n, delta, f, eps);
            // Linear-rate prediction is an approximation; agree within 2x.
            assert!(
                predicted <= 2 * measured + 5 && measured <= 2 * predicted + 5,
                "({n},{delta},{f}): predicted {predicted}, measured {measured}"
            );
        }
    }

    #[test]
    fn theorem3_holds_for_alternating_words() {
        let p = params(64, 1, 1.1);
        let word: Vec<Op> = (0..500)
            .map(|i| if i % 2 == 0 { Op::Grow } else { Op::Shrink })
            .collect();
        assert!(theorem3_invariant_holds(&p, &word));
    }

    #[test]
    fn theorem3_holds_for_blocks() {
        let p = params(64, 4, 1.8);
        let mut word = vec![Op::Grow; 200];
        word.extend(vec![Op::Shrink; 400]);
        word.extend(vec![Op::Grow; 100]);
        assert!(theorem3_invariant_holds(&p, &word));
    }

    #[test]
    fn trajectory_endpoints() {
        let p = params(16, 2, 1.4);
        let traj = apply_schedule(&p, 1.0, &[Op::Grow, Op::Grow, Op::Shrink]);
        assert_eq!(traj.len(), 4);
        assert_eq!(traj[0], 1.0);
        assert!((traj[1] - p.g(1.0)).abs() < 1e-15);
        assert!((traj[3] - p.c(p.g(p.g(1.0)))).abs() < 1e-15);
    }
}
