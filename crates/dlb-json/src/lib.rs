//! Minimal self-contained JSON support for the dlb workspace.
//!
//! The build environment has no crates.io access, so instead of serde the
//! workspace serialises through an explicit [`Json`] value tree with a
//! recursive-descent parser and deterministic renderers. Design points:
//!
//! - Integers are kept as `i128` ([`Json::Int`]), separate from floats, so
//!   `u64` seeds and `u128` stream positions round-trip exactly.
//! - Objects are ordered `Vec<(String, Json)>`, so rendering is a pure
//!   function of construction order — byte-stable output for determinism
//!   regression tests.
//! - [`ToJson`] / [`FromJson`] are implemented by hand per type; parse
//!   errors are `String`s with context.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (no fraction or exponent in the source text).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, first match wins on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an [`Json::Int`].
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is a [`Json::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders pretty JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` on f64 is the shortest round-trippable decimal form.
        let _ = write!(out, "{f}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(format!("bad escape near byte {}", self.pos)),
                            }
                            continue; // hex4 already advanced
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Types convertible into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Types constructible from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses from a JSON value; the error names what was wrong.
    fn from_json(value: &Json) -> Result<Self, String>;
}

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, String> {
                let i = value
                    .as_i128()
                    .ok_or_else(|| format!("expected integer, got {value:?}"))?;
                <$t>::try_from(i).map_err(|_| {
                    format!("integer {i} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}
json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl ToJson for u128 {
    fn to_json(&self) -> Json {
        Json::Int(i128::try_from(*self).expect("u128 value exceeds i128 range"))
    }
}

impl FromJson for u128 {
    fn from_json(value: &Json) -> Result<Self, String> {
        let i = value
            .as_i128()
            .ok_or_else(|| format!("expected integer, got {value:?}"))?;
        u128::try_from(i).map_err(|_| format!("integer {i} out of range for u128"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, String> {
        value
            .as_f64()
            .ok_or_else(|| format!("expected number, got {value:?}"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, String> {
        value
            .as_bool()
            .ok_or_else(|| format!("expected bool, got {value:?}"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, String> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {value:?}"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, String> {
        value
            .as_arr()
            .ok_or_else(|| format!("expected array, got {value:?}"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Required-field lookup with a descriptive error.
pub fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

/// Optional-field decode falling back to `default` when absent.
pub fn field_or<T: FromJson>(obj: &Json, key: &str, default: T) -> Result<T, String> {
    match obj.get(key) {
        Some(v) => T::from_json(v).map_err(|e| format!("field '{key}': {e}")),
        None => Ok(default),
    }
}

/// Required-field decode with the key folded into the error.
pub fn req<T: FromJson>(obj: &Json, key: &str) -> Result<T, String> {
    T::from_json(field(obj, key)?).map_err(|e| format!("field '{key}': {e}"))
}

/// Rejects keys outside `allowed` with a key-path error, so a typo in a
/// config file fails loudly instead of silently falling back to a
/// default.  Callers that decode nested objects via [`req`]/[`field_or`]
/// get the full path for free: the nested error is wrapped as
/// `field 'outer': unknown key "inner_typo" ...`.
///
/// Non-object values pass (the decoder reports its own type error).
pub fn reject_unknown(value: &Json, allowed: &[&str]) -> Result<(), String> {
    if let Json::Obj(entries) = value {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown key {key:?} (allowed: {})",
                    allowed.join(", ")
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_unknown_names_the_stray_key() {
        let value = Json::parse(r#"{"n": 4, "stepz": 9}"#).unwrap();
        assert!(reject_unknown(&value, &["n", "stepz"]).is_ok());
        let err = reject_unknown(&value, &["n", "steps"]).unwrap_err();
        assert!(err.contains("\"stepz\""), "{err}");
        assert!(err.contains("steps"), "{err}");
        // Non-objects pass; the decoder reports its own type error.
        assert!(reject_unknown(&Json::Int(3), &[]).is_ok());
    }

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "12345678901234567890",
            "\"hi\"",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
        let v = Json::parse("1.5").unwrap();
        assert_eq!(v, Json::Float(1.5));
        assert_eq!(v.render(), "1.5");
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn nested_round_trip_preserves_order() {
        let text = r#"{"b":1,"a":[true,null,{"x":-2.25}],"c":"s"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        // Pretty output re-parses to the same value.
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\"b\\c\n\tAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\n\tAé");
        let rendered = Json::Str("x\ny\"z\u{1}".to_string()).render();
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str().unwrap(),
            "x\ny\"z\u{1}"
        );
    }

    #[test]
    fn surrogate_pair() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }

    #[test]
    fn u128_and_u64_precision() {
        let pos: u128 = (1u128 << 68) + 3;
        let rendered = pos.to_json().render();
        assert_eq!(
            u128::from_json(&Json::parse(&rendered).unwrap()).unwrap(),
            pos
        );
        let big: u64 = u64::MAX;
        let rendered = big.to_json().render();
        assert_eq!(
            u64::from_json(&Json::parse(&rendered).unwrap()).unwrap(),
            big
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(u8::from_json(&Json::Int(300)).is_err());
        assert!(req::<u64>(&Json::Obj(vec![]), "n").is_err());
        assert_eq!(field_or(&Json::Obj(vec![]), "n", 7u64).unwrap(), 7);
    }

    #[test]
    fn float_int_coercion() {
        // Integral floats render without a dot and re-parse as Int;
        // f64::from_json must accept that.
        let rendered = Json::Float(2.0).render();
        assert_eq!(rendered, "2");
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(f64::from_json(&back).unwrap(), 2.0);
    }

    #[test]
    fn vec_and_option() {
        let xs = vec![1u64, 2, 3];
        let j = xs.to_json();
        assert_eq!(Vec::<u64>::from_json(&j).unwrap(), xs);
        assert_eq!(Option::<u64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_json(&Json::Int(4)).unwrap(), Some(4));
        assert_eq!(None::<u64>.to_json(), Json::Null);
    }
}
