//! Balancer arena: every contender races the *same* workloads, fault
//! plans and seed streams, producing a league table.
//!
//! The point of the arena is attribution: run `r` of every contender
//! replays the identical recorded event trace (workload stream), sees
//! the identical crash mask (fault stream) and draws its own randomness
//! from the balancer stream — all via [`stream_seed`], so the trigger
//! rule's RNG consumption is byte-identical to what `fig7_quality` and
//! the golden results already pin down.  Any difference between two
//! league rows is therefore the algorithm, not the harness.
//!
//! Runs execute on the [`crate::parallel`] pool and reduce in
//! (contender, run-index) order, so the league table is bit-identical
//! for every `--jobs` value.

use crate::parallel::{par_map, stream_seed, StreamId};
use crate::report::f3;
use dlb_core::{LoadBalancer, LoadRecorder};
use dlb_faults::{FaultInjector, FaultPlan};
use dlb_trace::{BufferSink, TraceEvent};
use dlb_workload::trace::EventTrace;
use dlb_workload::Workload;

/// Default max/mean ratio under which a run counts as converged.
pub const DEFAULT_CONV_THRESHOLD: f64 = 1.5;

/// Builds one contender instance from that run's balancer-stream seed.
pub type ContenderFactory = Box<dyn Fn(u64) -> Box<dyn LoadBalancer> + Sync + Send>;

/// One arena entrant: a display label plus a per-run factory.
pub struct Contender {
    /// League-table label (unique per entrant; the balancer's
    /// `name()` may repeat across parameterisations).
    pub label: String,
    /// Per-run constructor, fed `stream_seed(seed, run, Balancer)`.
    pub make: ContenderFactory,
}

impl Contender {
    /// Convenience constructor.
    pub fn new(
        label: &str,
        make: impl Fn(u64) -> Box<dyn LoadBalancer> + Sync + Send + 'static,
    ) -> Self {
        Contender {
            label: label.to_string(),
            make: Box::new(make),
        }
    }
}

/// Arena dimensions shared by every contender.
#[derive(Debug, Clone)]
pub struct ArenaConfig {
    /// Processors.
    pub n: usize,
    /// Driver steps per run.
    pub steps: usize,
    /// Independent seeded runs per contender.
    pub runs: usize,
    /// Base seed; per-run streams derive via [`stream_seed`].
    pub seed: u64,
    /// Fraction of `steps` excluded from the quality statistics.
    pub warmup_fraction: f64,
    /// Max/mean ratio under which a step counts as converged.
    pub conv_threshold: f64,
    /// Fault plan applied identically to every contender (the plan seed
    /// is re-derived per run, mirroring `dlb run`).
    pub faults: Option<FaultPlan>,
    /// Worker threads (output is bit-identical for every value).
    pub jobs: usize,
}

impl ArenaConfig {
    /// First step included in the quality statistics.
    pub fn warmup(&self) -> usize {
        (self.steps as f64 * self.warmup_fraction) as usize
    }
}

/// One league-table row: a contender's aggregate over all runs.
#[derive(Debug, Clone)]
pub struct ArenaRow {
    /// Contender label.
    pub label: String,
    /// `LoadBalancer::name()` of the contender.
    pub strategy: String,
    /// Mean max/mean load ratio over recorded (post-warmup) steps.
    pub mean_ratio: f64,
    /// 95th-percentile max/mean ratio.
    pub p95_ratio: f64,
    /// Worst max/mean ratio ever observed post-warmup.
    pub worst_ratio: f64,
    /// Mean balancing operations per run.
    pub ops_per_run: f64,
    /// Mean packets migrated per run.
    pub migrated_per_run: f64,
    /// Mean point-to-point messages per run.
    pub messages_per_run: f64,
    /// Mean §4 decrease simulations per run (0 for every non-trigger
    /// contender — the Lemma 6 yardstick divides by this).
    pub decrease_per_run: f64,
    /// Mean first step after which the max/mean ratio stayed below the
    /// convergence threshold (`steps` when a run never settled).
    pub conv_steps: f64,
    /// Mean max/mean ratio per step, over runs (the SVG curve).
    pub ratio_curve: Vec<f64>,
    /// Total packets held at the end of the last run (conservation probe).
    pub final_total: u64,
}

/// League result: one row per contender plus the merged trace.
pub struct LeagueResult {
    /// Rows in contender order.
    pub rows: Vec<ArenaRow>,
    /// Trace events in (contender, run-index) order; empty unless
    /// tracing was requested.
    pub events: Vec<TraceEvent>,
}

struct RunOutcome {
    recorder: LoadRecorder,
    ratios: Vec<f64>,
    balance_ops: u64,
    packets_migrated: u64,
    messages: u64,
    decrease_sim: u64,
    final_total: u64,
    conv_steps: usize,
    strategy: &'static str,
    events: Vec<TraceEvent>,
}

/// Races every contender over the same `runs` recorded workloads and
/// fault masks; `trace_for` records the workload trace for one run's
/// workload-stream seed.
///
/// # Panics
///
/// Panics when a contender reports the wrong `n` or the fault plan does
/// not validate.
pub fn run_league<TF>(
    cfg: &ArenaConfig,
    contenders: &[Contender],
    trace_for: TF,
    tracing: bool,
) -> LeagueResult
where
    TF: Fn(u64) -> EventTrace + Sync,
{
    let warmup = cfg.warmup();
    let mut rows = Vec::with_capacity(contenders.len());
    let mut all_events = Vec::new();
    for contender in contenders {
        let outcomes = par_map(cfg.jobs, cfg.runs, |r| {
            run_one(cfg, contender, &trace_for, tracing, r as u64, warmup)
        });
        // Reduce in run-index order: bit-identical for every jobs value.
        let mut recorder = LoadRecorder::new(warmup, 3.0);
        let mut curve = vec![0.0f64; cfg.steps];
        let (mut ops, mut migrated, mut messages, mut dec) = (0u64, 0u64, 0u64, 0u64);
        let mut conv_sum = 0usize;
        let mut final_total = 0u64;
        let mut strategy = "";
        for (r, out) in outcomes.iter().enumerate() {
            recorder.merge(&out.recorder);
            for (acc, &x) in curve.iter_mut().zip(out.ratios.iter()) {
                *acc += x;
            }
            ops += out.balance_ops;
            migrated += out.packets_migrated;
            messages += out.messages;
            dec += out.decrease_sim;
            conv_sum += out.conv_steps;
            final_total = out.final_total;
            strategy = out.strategy;
            if tracing {
                all_events.push(TraceEvent::ArenaContender {
                    run: r as u64,
                    label: contender.label.clone(),
                    strategy: strategy.to_string(),
                    seed: stream_seed(cfg.seed, r as u64, StreamId::Balancer),
                });
                all_events.extend(out.events.iter().cloned());
                all_events.push(TraceEvent::RunFinished { run: r as u64 });
            }
        }
        let per_run = |total: u64| total as f64 / cfg.runs as f64;
        for x in &mut curve {
            *x /= cfg.runs as f64;
        }
        rows.push(ArenaRow {
            label: contender.label.clone(),
            strategy: strategy.to_string(),
            mean_ratio: recorder.mean_ratio(),
            p95_ratio: recorder.ratio_quantile(0.95),
            worst_ratio: recorder.worst_ratio(),
            ops_per_run: per_run(ops),
            migrated_per_run: per_run(migrated),
            messages_per_run: per_run(messages),
            decrease_per_run: per_run(dec),
            conv_steps: conv_sum as f64 / cfg.runs as f64,
            ratio_curve: curve,
            final_total,
        });
    }
    LeagueResult {
        rows,
        events: all_events,
    }
}

fn run_one<TF>(
    cfg: &ArenaConfig,
    contender: &Contender,
    trace_for: &TF,
    tracing: bool,
    r: u64,
    warmup: usize,
) -> RunOutcome
where
    TF: Fn(u64) -> EventTrace + Sync,
{
    let trace = trace_for(stream_seed(cfg.seed, r, StreamId::Workload));
    let mut balancer = (contender.make)(stream_seed(cfg.seed, r, StreamId::Balancer));
    assert_eq!(
        balancer.n(),
        cfg.n,
        "contender {} has wrong n",
        contender.label
    );
    let buffer = tracing.then(BufferSink::new);
    if let Some(buf) = &buffer {
        balancer.set_trace_sink(buf.handle());
    }
    let injector = cfg.faults.as_ref().map(|plan| {
        let mut run_plan = plan.clone();
        run_plan.seed = stream_seed(plan.seed, r, StreamId::Faults);
        FaultInjector::new(run_plan, cfg.n).expect("valid fault plan")
    });
    let mut replay = trace.replay();
    let mut events = Vec::new();
    let mut loads = Vec::with_capacity(cfg.n);
    let mut recorder = LoadRecorder::new(warmup, 3.0);
    let mut ratios = vec![0.0f64; cfg.steps];
    for (t, ratio) in ratios.iter_mut().enumerate() {
        replay.events_at(t, &mut events);
        match &injector {
            Some(inj) => balancer.step_masked(&events, &inj.mask_at(t as u64)),
            None => balancer.step(&events),
        }
        balancer.loads_into(&mut loads);
        recorder.record(&loads);
        let total: u64 = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / cfg.n as f64;
        *ratio = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    }
    // Convergence: the first post-warmup step after which the ratio never
    // exceeds the threshold again (`steps` when it never settles).
    let last_bad = ratios
        .iter()
        .rposition(|&x| x > cfg.conv_threshold)
        .map_or(0, |t| t + 1);
    let conv_steps = last_bad.clamp(warmup, cfg.steps);
    let m = balancer.metrics();
    RunOutcome {
        recorder,
        ratios,
        balance_ops: m.balance_ops,
        packets_migrated: m.packets_migrated,
        messages: m.messages,
        decrease_sim: m.decrease_sim,
        final_total: balancer.loads().iter().sum(),
        conv_steps,
        strategy: balancer.name(),
        events: buffer.map(|b| b.take()).unwrap_or_default(),
    }
}

/// League CSV header, matched by [`league_csv_rows`].
pub const LEAGUE_HEADERS: [&str; 11] = [
    "contender",
    "strategy",
    "mean_ratio",
    "p95_ratio",
    "worst_ratio",
    "ops_per_run",
    "migrated_per_run",
    "msgs_per_run",
    "dec_sims_per_run",
    "conv_steps",
    "cost_vs_l6",
];

/// Renders the league rows for [`crate::report::write_csv`] /
/// [`crate::report::render_table`].
///
/// `lemma6_budget` is the Lemma 6 per-decrease-simulation balance-op
/// budget of the trigger rule's parameters; `cost_vs_l6` divides each
/// contender's measured ops by `decrease_sims × budget` (0.000 when the
/// contender never runs a decrease simulation — only the trigger rule
/// does).
pub fn league_csv_rows(rows: &[ArenaRow], lemma6_budget: Option<u64>) -> Vec<Vec<String>> {
    rows.iter()
        .map(|row| {
            let cost_vs_l6 = match lemma6_budget {
                Some(budget) if row.decrease_per_run > 0.0 && budget > 0 => {
                    row.ops_per_run / (row.decrease_per_run * budget as f64)
                }
                _ => 0.0,
            };
            vec![
                row.label.clone(),
                row.strategy.clone(),
                f3(row.mean_ratio),
                f3(row.p95_ratio),
                f3(row.worst_ratio),
                f3(row.ops_per_run),
                f3(row.migrated_per_run),
                f3(row.messages_per_run),
                f3(row.decrease_per_run),
                f3(row.conv_steps),
                f3(cost_vs_l6),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::paper_trace;
    use dlb_baselines::{LocallyOptimal, Quasirandom};
    use dlb_core::{Cluster, Params};
    use dlb_net::Topology;

    fn tiny_cfg(jobs: usize) -> ArenaConfig {
        ArenaConfig {
            n: 8,
            steps: 60,
            runs: 3,
            seed: 7,
            warmup_fraction: 0.25,
            conv_threshold: DEFAULT_CONV_THRESHOLD,
            faults: None,
            jobs,
        }
    }

    fn tiny_contenders() -> Vec<Contender> {
        let params = Params::new(8, 1, 1.1, 4).expect("valid");
        vec![
            Contender::new("spaa93-full", move |seed| {
                Box::new(Cluster::new(params, seed))
            }),
            Contender::new("quasirandom", |_| {
                Box::new(Quasirandom::new(Topology::Hypercube { dim: 3 }))
            }),
            Contender::new("locally-optimal", |_| {
                Box::new(LocallyOptimal::new(Topology::Hypercube { dim: 3 }))
            }),
        ]
    }

    fn league(jobs: usize, tracing: bool) -> LeagueResult {
        run_league(
            &tiny_cfg(jobs),
            &tiny_contenders(),
            |seed| paper_trace(8, 60, seed),
            tracing,
        )
    }

    fn csv(result: &LeagueResult) -> Vec<Vec<String>> {
        league_csv_rows(&result.rows, Some(17))
    }

    #[test]
    fn league_is_identical_across_jobs_and_repeats() {
        let base = csv(&league(1, false));
        assert_eq!(base, csv(&league(1, false)), "repeat");
        assert_eq!(base, csv(&league(4, false)), "jobs=4");
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn every_contender_sees_the_same_workload() {
        // The workload stream depends only on (seed, run), never on the
        // contender: trace_for must receive the identical seed sequence
        // for each entrant.
        let seen = std::sync::Mutex::new(Vec::new());
        run_league(
            &tiny_cfg(1),
            &tiny_contenders(),
            |seed| {
                seen.lock().unwrap().push(seed);
                paper_trace(8, 60, seed)
            },
            false,
        );
        let seen = seen.into_inner().unwrap();
        let per_run: Vec<u64> = (0..3)
            .map(|r| stream_seed(7, r, StreamId::Workload))
            .collect();
        assert_eq!(seen, per_run.repeat(3), "3 contenders × the same 3 seeds");
    }

    #[test]
    fn trace_announces_contenders_in_order() {
        let result = league(1, true);
        let labels: Vec<&str> = result
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ArenaContender { label, .. } => Some(label.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels.len(), 9, "3 contenders × 3 runs");
        assert_eq!(&labels[..3], &["spaa93-full"; 3]);
        assert_eq!(&labels[3..6], &["quasirandom"; 3]);
        // Tracing must not change the league numbers.
        assert_eq!(csv(&result), csv(&league(1, false)));
    }

    #[test]
    fn trigger_rule_matches_a_direct_simulation() {
        // No harness drift: the arena's spaa93-full row must reproduce a
        // hand-driven Cluster over the same streams exactly.
        let cfg = tiny_cfg(1);
        let params = Params::new(8, 1, 1.1, 4).expect("valid");
        let result = run_league(
            &cfg,
            &[Contender::new("spaa93-full", move |seed| {
                Box::new(Cluster::new(params, seed))
            })],
            |seed| paper_trace(8, 60, seed),
            false,
        );
        let mut ops = 0u64;
        let mut recorder = LoadRecorder::new(cfg.warmup(), 3.0);
        for r in 0..cfg.runs as u64 {
            let trace = paper_trace(8, 60, stream_seed(cfg.seed, r, StreamId::Workload));
            let mut cluster = Cluster::new(params, stream_seed(cfg.seed, r, StreamId::Balancer));
            let mut replay = trace.replay();
            let mut events = Vec::new();
            let mut loads = Vec::new();
            // Warmup applies per run, exactly as the arena does it.
            let mut run_recorder = LoadRecorder::new(cfg.warmup(), 3.0);
            for t in 0..cfg.steps {
                replay.events_at(t, &mut events);
                cluster.step(&events);
                cluster.loads_into(&mut loads);
                run_recorder.record(&loads);
            }
            recorder.merge(&run_recorder);
            ops += cluster.metrics().balance_ops;
        }
        let row = &result.rows[0];
        assert_eq!(row.ops_per_run, ops as f64 / cfg.runs as f64);
        assert_eq!(row.mean_ratio, recorder.mean_ratio());
        assert_eq!(row.worst_ratio, recorder.worst_ratio());
    }
}
