//! Times the Monte Carlo experiment harness sequentially vs in parallel
//! on a fixed scenario matrix and writes `BENCH_experiments.json` at the
//! repo root — the perf trajectory later PRs are measured against.
//!
//! For every scenario the binary runs the same workload twice — once
//! with `jobs = 1` and once with `jobs = N` — records both wall-clock
//! times, and checksums each aggregate result.  The checksums MUST match
//! (the harness guarantees bit-identical reduction in run-index order);
//! the binary aborts with a non-zero exit if they ever diverge, so CI
//! can run it as a determinism gate.  Timings naturally vary between
//! machines and runs; every other byte of the JSON (keys, scenario
//! names, checksums) is stable.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin bench_experiments
//!         [--jobs N] [--smoke] [--out BENCH_experiments.json]
//!         [--check BENCH_experiments.json]`
//!
//! `--smoke` shrinks the matrix to seconds for CI; the default matrix is
//! the §7 paper scale.  `--check <baseline>` re-runs the scenario matrix
//! and exits non-zero if any checksum differs from the committed
//! baseline — the CI drift gate for the simulation results themselves
//! (timings are machine-dependent; checksums are not).  The reported
//! `effective_cores` is the machine's available parallelism: speedup
//! numbers are only meaningful relative to it (a 1-core runner is
//! expected to report ~1.0x).

use dlb_core::{Cluster, ExchangePolicy, LoadBalancer, LoadEvent, Params};
use dlb_experiments::args::Args;
use dlb_experiments::faultsweep::{sweep, SweepConfig};
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::quality::{balancing_quality, distribution_at};
use dlb_experiments::report::render_table;
use dlb_experiments::table1::table1_row;
use dlb_json::{Json, ToJson};
use std::time::Instant;

/// FNV-1a over a canonical byte rendering: the determinism fingerprint
/// of one scenario's aggregate output.
struct Checksum(u64);

impl Checksum {
    fn new() -> Self {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    fn push_f64(&mut self, v: f64) {
        // Bit pattern, not value: the guarantee is bit-identity.
        self.push_u64(v.to_bits());
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

struct Scenario {
    name: &'static str,
    /// Runs the scenario with the given worker count and returns the
    /// checksum of its aggregate output.
    run: Box<dyn Fn(usize) -> String>,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    // (n, steps, runs): §7 paper scale, or a tiny smoke matrix for CI.
    let (n, steps, runs) = if smoke { (16, 80, 8) } else { (64, 500, 100) };
    let sweep_cfg = move |jobs: usize| SweepConfig {
        n: if smoke { 8 } else { 16 },
        steps: if smoke { 300 } else { 1_500 },
        runs: if smoke { 2 } else { 3 },
        losses: vec![0.0, 0.10],
        crash_counts: vec![0, 2],
        jobs,
        ..SweepConfig::default()
    };
    vec![
        Scenario {
            name: "fig7_quality",
            run: Box::new(move |jobs| {
                let params = Params::new(n, 1, 1.1, 4).expect("valid");
                let q = balancing_quality(params, steps, runs, 2024, jobs);
                let mut sum = Checksum::new();
                for t in 0..steps {
                    sum.push_f64(q.mean[t]);
                    sum.push_u64(q.min[t]);
                    sum.push_u64(q.max[t]);
                }
                sum.hex()
            }),
        },
        Scenario {
            name: "fig9_distribution",
            run: Box::new(move |jobs| {
                let params = Params::new(n, 1, 1.1, 4).expect("valid");
                let checkpoints = [steps / 10, steps / 2, steps - 1];
                let snaps = distribution_at(params, steps, &checkpoints, runs, 4096, jobs);
                let mut sum = Checksum::new();
                for snap in &snaps {
                    sum.push_u64(snap.t as u64);
                    for i in 0..n {
                        sum.push_f64(snap.mean[i]);
                        sum.push_u64(snap.min[i]);
                        sum.push_u64(snap.max[i]);
                    }
                }
                sum.hex()
            }),
        },
        Scenario {
            name: "table1_borrow",
            run: Box::new(move |jobs| {
                let mut sum = Checksum::new();
                for c in [4usize, 16] {
                    let row = table1_row(n, steps, runs, c, ExchangePolicy::Strict, 31, jobs);
                    sum.push_u64(row.c as u64);
                    sum.push_f64(row.total_borrow);
                    sum.push_f64(row.remote_borrow);
                    sum.push_f64(row.borrow_fail);
                    sum.push_f64(row.decrease_sim);
                }
                sum.hex()
            }),
        },
        Scenario {
            name: "faults_sweep",
            run: Box::new(move |jobs| {
                let result = sweep(&sweep_cfg(jobs));
                let mut sum = Checksum::new();
                sum.push_bytes(result.to_json().render().as_bytes());
                sum.hex()
            }),
        },
    ]
}

/// Times one fixed `Cluster` workload (min over `reps`, which rejects
/// scheduler noise) and fingerprints its outcome, optionally with a
/// `NullSink` attached — the "tracing compiled in but disabled" path.
fn time_cluster_run(n: usize, steps: usize, null_sink: bool, reps: usize) -> (f64, String) {
    let params = Params::new(n, 1, 1.1, 4).expect("valid");
    let events = vec![LoadEvent::Generate; n];
    let mut best = f64::INFINITY;
    let mut fingerprint = String::new();
    for _ in 0..reps {
        let mut cluster = Cluster::with_initial_load(params, 7, 0);
        if null_sink {
            cluster.set_trace_sink(dlb_trace::SharedSink::new(dlb_trace::NullSink));
        }
        let t0 = Instant::now();
        for _ in 0..steps {
            cluster.step(&events);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        let mut sum = Checksum::new();
        for &l in &cluster.loads() {
            sum.push_u64(l);
        }
        sum.push_u64(cluster.metrics().balance_ops);
        fingerprint = sum.hex();
    }
    (best, fingerprint)
}

/// `--check` mode: re-runs the scenario matrix (checksums are invariant
/// in `jobs`, so the smoke matrix must match the baseline only if the
/// baseline was also a smoke run — the matrices differ otherwise, which
/// is why the baseline's recorded matrix kind is honoured, not the
/// caller's `--smoke` flag) and compares every scenario checksum against
/// the committed baseline.  Exits 1 on any drift.
fn check_against(baseline_path: &str, jobs: usize) -> ! {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parse {baseline_path}: {e}"));
    let smoke = doc.get("matrix").and_then(Json::as_str) == Some("smoke");
    let baseline: Vec<(String, String)> = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("baseline has a scenarios array")
        .iter()
        .map(|s| {
            (
                s.get("name")
                    .and_then(Json::as_str)
                    .expect("scenario name")
                    .to_string(),
                s.get("seq_checksum")
                    .and_then(Json::as_str)
                    .expect("scenario seq_checksum")
                    .to_string(),
            )
        })
        .collect();
    println!(
        "bench_experiments --check: verifying {} scenario checksums \
         against {baseline_path} ({} matrix, {jobs} jobs)\n",
        baseline.len(),
        if smoke { "smoke" } else { "paper-scale" }
    );
    let mut drifted = 0usize;
    for scenario in scenarios(smoke) {
        let Some((_, expected)) = baseline.iter().find(|(name, _)| name == scenario.name) else {
            println!("  {:<20} MISSING from baseline", scenario.name);
            drifted += 1;
            continue;
        };
        let got = (scenario.run)(jobs);
        if &got == expected {
            println!("  {:<20} ok    {got}", scenario.name);
        } else {
            println!(
                "  {:<20} DRIFT baseline {expected} != current {got}",
                scenario.name
            );
            drifted += 1;
        }
    }
    if drifted > 0 {
        println!(
            "\n{drifted} scenario(s) drifted from {baseline_path}: the simulation \
             results changed.  If intentional, regenerate the baseline."
        );
        std::process::exit(1);
    }
    println!("\nAll checksums match {baseline_path}.");
    std::process::exit(0);
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let jobs: usize = args.get("jobs", default_jobs());
    let out: String = args.get("out", "BENCH_experiments.json".to_string());
    let check: String = args.get("check", String::new());
    if !check.is_empty() {
        check_against(&check, jobs);
    }

    println!(
        "bench_experiments: sequential vs {jobs}-job parallel harness \
         ({} matrix, {} effective cores)\n",
        if smoke { "smoke" } else { "paper-scale" },
        default_jobs()
    );

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for scenario in scenarios(smoke) {
        let t0 = Instant::now();
        let seq_checksum = (scenario.run)(1);
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par_checksum = (scenario.run)(jobs);
        let par_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            seq_checksum, par_checksum,
            "{}: parallel output diverged from sequential — determinism bug",
            scenario.name
        );
        let speedup = seq_ms / par_ms.max(1e-9);
        rows.push(vec![
            scenario.name.to_string(),
            format!("{seq_ms:.1}"),
            format!("{par_ms:.1}"),
            format!("{speedup:.2}x"),
            seq_checksum.clone(),
        ]);
        let ms = |x: f64| Json::Float((x * 1000.0).round() / 1000.0);
        cells.push(Json::Obj(vec![
            ("name".into(), scenario.name.to_json()),
            ("seq_ms".into(), ms(seq_ms)),
            ("par_ms".into(), ms(par_ms)),
            ("speedup".into(), ms(speedup)),
            ("seq_checksum".into(), seq_checksum.to_json()),
            ("par_checksum".into(), par_checksum.to_json()),
        ]));
    }

    println!(
        "{}",
        render_table(
            &["scenario", "seq ms", "par ms", "speedup", "checksum"],
            &rows
        )
    );
    println!("All parallel checksums matched their sequential runs.");

    // Disabled-tracing overhead gate: an engine with a NullSink attached
    // must behave identically to one with no sink at all and cost < 2%
    // extra wall clock (the emission guards are a single branch).
    let (reps, trace_steps) = if smoke { (3, 2_000) } else { (7, 8_000) };
    let (base_ms, base_fp) = time_cluster_run(64, trace_steps, false, reps);
    let (null_ms, null_fp) = time_cluster_run(64, trace_steps, true, reps);
    assert_eq!(base_fp, null_fp, "NullSink changed engine behaviour");
    let overhead = null_ms / base_ms.max(1e-9);
    println!(
        "\ntrace overhead (NullSink vs no sink, {trace_steps} steps, min of {reps}): \
         {base_ms:.2} ms -> {null_ms:.2} ms ({overhead:.4}x)"
    );
    assert!(
        overhead < 1.02,
        "disabled tracing must cost < 2%, measured {overhead:.4}x"
    );

    let ms3 = |x: f64| Json::Float((x * 1000.0).round() / 1000.0);
    let doc = Json::Obj(vec![
        ("bench".into(), "experiments".to_json()),
        (
            "matrix".into(),
            if smoke { "smoke" } else { "paper" }.to_json(),
        ),
        ("jobs".into(), (jobs as u64).to_json()),
        ("effective_cores".into(), (default_jobs() as u64).to_json()),
        ("scenarios".into(), Json::Arr(cells)),
        (
            "trace_overhead".into(),
            Json::Obj(vec![
                ("baseline_ms".into(), ms3(base_ms)),
                ("null_sink_ms".into(), ms3(null_ms)),
                ("ratio".into(), ms3(overhead)),
                ("checksum".into(), base_fp.to_json()),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.render_pretty()).expect("JSON written");
    println!("\nwrote {out}");
}
