//! §1/§5 qualitative claims: the SPAA'93 algorithm versus the baselines
//! (no balancing, random scatter, RSU'91, gradient model), all driven by
//! the identical recorded §7 workload trace per run.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin baseline_compare
//!         [--n 64] [--steps 500] [--runs 30]`

use dlb_baselines::{Diffusion, Gradient, NoBalance, RandomScatter, Rsu91, WorkStealing};
use dlb_core::{imbalance_stats, Cluster, LoadBalancer, Params, SimpleCluster};
use dlb_experiments::args::Args;
use dlb_experiments::quality::paper_trace;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_net::Topology;
use dlb_workload::drive;

struct Row {
    name: &'static str,
    max_over_mean: f64,
    std_over_mean: f64,
    migrated: f64,
    ops: f64,
}

fn measure<B: LoadBalancer>(make: impl Fn(u64) -> B, n: usize, steps: usize, runs: usize) -> Row {
    let mut max_over_mean = 0.0;
    let mut std_over_mean = 0.0;
    let mut migrated = 0.0;
    let mut ops = 0.0;
    let mut name = "";
    let mut samples = 0usize;
    for r in 0..runs {
        let trace = paper_trace(n, steps, 9000 + r as u64);
        let mut balancer = make(r as u64);
        name = balancer.name();
        let mut replay = trace.replay();
        drive(&mut balancer, &mut replay, steps, |t, b| {
            // Sample the distribution every 25 steps past warmup.
            if t >= 100 && t % 25 == 0 {
                let stats = imbalance_stats(&b.loads());
                if stats.mean >= 5.0 {
                    max_over_mean += stats.max_over_mean;
                    std_over_mean += stats.std_dev / stats.mean;
                    samples += 1;
                }
            }
        });
        migrated += balancer.metrics().packets_migrated as f64;
        ops += balancer.metrics().balance_ops as f64;
    }
    Row {
        name,
        max_over_mean: max_over_mean / samples.max(1) as f64,
        std_over_mean: std_over_mean / samples.max(1) as f64,
        migrated: migrated / runs as f64,
        ops: ops / runs as f64,
    }
}

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 64);
    let steps: usize = args.get("steps", 500);
    let runs: usize = args.get("runs", 30);
    let out: String = args.get("out", "results/baselines.csv".to_string());

    let params = Params::paper_section7(n);
    let params_d4 = Params::new(n, 4, 1.1, 4).expect("valid");
    let torus_w = (n as f64).sqrt() as usize;

    println!(
        "Baseline comparison on the identical section-7 traces \
         ({n} procs, {steps} steps, {runs} runs)\n"
    );

    let rows_data = [
        measure(|s| Cluster::new(params, s), n, steps, runs),
        measure(|s| Cluster::new(params_d4, s), n, steps, runs),
        measure(|s| SimpleCluster::new(params, s), n, steps, runs),
        measure(|s| Rsu91::new(n, s), n, steps, runs),
        measure(|s| WorkStealing::new(n, s), n, steps, runs),
        measure(
            |_| {
                Gradient::new(
                    Topology::Torus2D {
                        w: torus_w,
                        h: n / torus_w,
                    },
                    2,
                    8,
                )
            },
            n,
            steps,
            runs,
        ),
        measure(
            |_| {
                Diffusion::new(
                    Topology::Torus2D {
                        w: torus_w,
                        h: n / torus_w,
                    },
                    0.2,
                )
            },
            n,
            steps,
            runs,
        ),
        measure(|s| RandomScatter::new(n, s), n, steps, runs),
        measure(|_| NoBalance::new(n), n, steps, runs),
    ];

    let labels = [
        "spaa93 d=1",
        "spaa93 d=4",
        "spaa93 simple",
        "rsu91",
        "stealing",
        "gradient",
        "diffusion",
        "scatter",
        "none",
    ];
    let mut rows = Vec::new();
    for (label, row) in labels.iter().zip(rows_data.iter()) {
        rows.push(vec![
            label.to_string(),
            row.name.to_string(),
            f3(row.max_over_mean),
            f3(row.std_over_mean),
            f3(row.migrated),
            f3(row.ops),
        ]);
    }
    let headers = vec![
        "config",
        "strategy",
        "max/mean",
        "std/mean",
        "migrated/run",
        "ops/run",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape: spaa93 variants lowest max/mean and std/mean;");
    println!("random scatter: flat *expected* load but enormous std/mean (the §5 strawman);");
    println!("rsu91 in between (its 1/load trigger under-balances — the [10] critique);");
    println!("no balancing worst; migration cost ordered inversely to quality.");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
