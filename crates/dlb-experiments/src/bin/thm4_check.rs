//! Theorem 4: verifies `E(l_i) ≤ f²·δ/(δ+1−f)·(E(l_j) + C)` for all
//! processor pairs on the §7 workload, for several `C` and `(δ, f)`.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin thm4_check
//!         [--n 64] [--steps 500] [--runs 30] [--out results/thm4.csv]
//!         [--jobs N]`

use dlb_core::Params;
use dlb_experiments::args::Args;
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::quality::theorem4_check;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_theory::TheoremBounds;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 64);
    let steps: usize = args.get("steps", 500);
    let runs: usize = args.get("runs", 30);
    let jobs: usize = args.get("jobs", default_jobs());
    let out: String = args.get("out", "results/thm4.csv".to_string());
    let checkpoints = [steps / 10, steps / 2, steps - 1];

    let grid: Vec<(usize, f64, usize)> = vec![
        (1, 1.1, 4),
        (1, 1.1, 32),
        (1, 1.8, 4),
        (4, 1.1, 4),
        (4, 1.8, 4),
        (2, 1.4, 8),
    ];

    let mut rows = Vec::new();
    for &(delta, f, c) in &grid {
        let params = Params::new(n, delta, f, c).expect("grid valid");
        let bounds = TheoremBounds::for_params(params.algo());
        let (checked, violations) = theorem4_check(params, steps, &checkpoints, runs, 7, jobs);
        rows.push(vec![
            delta.to_string(),
            format!("{f:.2}"),
            c.to_string(),
            f3(bounds.theorem4_coeff),
            checked.to_string(),
            violations.to_string(),
        ]);
    }

    let headers = vec![
        "delta",
        "f",
        "C",
        "f^2*d/(d+1-f)",
        "pairs checked",
        "violations",
    ];
    println!("Theorem 4: E(l_i) <= f^2*delta/(delta+1-f) * (E(l_j) + C)");
    println!("({n} processors, section-7 workload, {runs} runs, checkpoints {checkpoints:?})\n");
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape: zero violations in every configuration.");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
