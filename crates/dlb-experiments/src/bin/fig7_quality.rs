//! Figures 7 and 8: balancing quality over 500 steps on the §7 workload —
//! mean load plus the min/max ever observed across 100 runs, for
//! `f ∈ {1.1, 1.8}` at a given `δ` (Figure 7: `δ = 1`; Figure 8: `δ = 4`).
//!
//! Usage: `cargo run --release -p dlb-experiments --bin fig7_quality
//!         [--delta 1] [--n 64] [--steps 500] [--runs 100] [--c 4]
//!         [--jobs N]`  (jobs defaults to the available cores; any value
//! produces byte-identical output)

use dlb_core::Params;
use dlb_experiments::args::Args;
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::quality::balancing_quality;
use dlb_experiments::report::{ascii_plot, f3, render_table, write_csv};
use dlb_experiments::svg::{write_chart, ChartConfig, Series};

fn main() {
    let args = Args::from_env();
    let delta: usize = args.get("delta", 1);
    let n: usize = args.get("n", 64);
    let steps: usize = args.get("steps", 500);
    let runs: usize = args.get("runs", 100);
    let c: usize = args.get("c", 4);
    let jobs: usize = args.get("jobs", default_jobs());
    let figure = if delta == 1 { 7 } else { 8 };
    let out: String = args.get("out", format!("results/fig{figure}_delta{delta}.csv"));

    println!(
        "Figure {figure}: balancing quality, delta = {delta}, f in {{1.1, 1.8}} \
         ({n} procs, {steps} steps, {runs} runs, C = {c}, {jobs} jobs)\n"
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut summary = Vec::new();
    let mut svg_series: Vec<Series> = Vec::new();
    for f in [1.1f64, 1.8] {
        let params = Params::new(n, delta, f, c).expect("valid parameters");
        let q = balancing_quality(params, steps, runs, 2024, jobs);

        for t in 0..steps {
            csv_rows.push(vec![
                format!("{f:.1}"),
                t.to_string(),
                f3(q.mean[t]),
                q.min[t].to_string(),
                q.max[t].to_string(),
            ]);
        }
        // Plot mean/min/max, downsampled to 100 columns.
        let ds = |v: &[f64]| -> Vec<f64> { (0..100).map(|k| v[k * steps / 100]).collect() };
        let mean_s = ds(&q.mean);
        let min_s = ds(&q.min.iter().map(|&x| x as f64).collect::<Vec<_>>());
        let max_s = ds(&q.max.iter().map(|&x| x as f64).collect::<Vec<_>>());
        println!("f = {f}: load per processor over time (min / mean / max over runs)");
        println!(
            "{}",
            ascii_plot(&[("max", &max_s), ("mean", &mean_s), ("min", &min_s)], 12)
        );
        for curve in [
            ("mean", &q.mean),
            ("min", &q.min.iter().map(|&x| x as f64).collect::<Vec<_>>()),
            ("max", &q.max.iter().map(|&x| x as f64).collect::<Vec<_>>()),
        ] {
            svg_series.push(Series::from_ys(&format!("f={f} {}", curve.0), curve.1));
        }
        for &t in &[steps / 10, steps / 2, steps - 1] {
            summary.push(vec![
                format!("{f:.1}"),
                t.to_string(),
                f3(q.mean[t]),
                q.min[t].to_string(),
                q.max[t].to_string(),
                (q.max[t] - q.min[t]).to_string(),
            ]);
        }
    }

    println!(
        "{}",
        render_table(&["f", "t", "mean", "min", "max", "band"], &summary)
    );
    println!("Expected shape: a narrow band around the mean; f = 1.1 narrower than f = 1.8;");
    println!("delta = 4 (Figure 8) narrower than delta = 1 (Figure 7).");
    write_csv(&out, &["f", "t", "mean", "min", "max"], &csv_rows).expect("CSV written");
    let svg_path = out.replace(".csv", ".svg");
    let chart = ChartConfig {
        title: format!(
            "Figure {figure}: balancing quality, delta = {delta} ({n} procs, {runs} runs)"
        ),
        x_label: "time step".into(),
        y_label: "load per processor".into(),
        ..Default::default()
    };
    write_chart(&svg_path, &chart, &svg_series).expect("SVG written");
    println!("\nwrote {out} and {svg_path}");
}
