//! The constant-time assumption stress-tested: the balancer as a real
//! message protocol on the event-driven asynchronous network, with the
//! per-message latency swept from 1 to 64 ticks.  Shows how balance
//! quality and protocol overhead degrade as the network slows relative to
//! the load dynamics (§2 argues the degradation is negligible for
//! wormhole-routed machines, i.e. the low-latency end).
//!
//! Usage: `cargo run --release -p dlb-experiments --bin async_latency
//!         [--n 64] [--steps 4000]`

use dlb_core::{imbalance_stats, Params};
use dlb_experiments::args::Args;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_net::{AsyncConfig, AsyncNetwork};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 64);
    let steps: u64 = args.get("steps", 4000);
    let out: String = args.get("out", "results/async_latency.csv".to_string());

    println!(
        "Asynchronous protocol: quality vs message latency \
         ({n} procs, {steps} ticks, delta = 2, f = 1.3, mixed workload)\n"
    );
    let mut rows = Vec::new();
    for latency in [1u64, 4, 16, 64] {
        let params = Params::new(n, 2, 1.3, 4).expect("valid");
        let mut net = AsyncNetwork::new(AsyncConfig::reliable(params, latency, 11));
        let mut wl_rng = ChaCha8Rng::seed_from_u64(5);
        let mut ratio = 0.0;
        let mut samples = 0usize;
        for t in 0..steps {
            let actions: Vec<i8> = (0..n)
                .map(|_| match wl_rng.gen_range(0..10) {
                    0..=4 => 1,
                    5..=7 => -1,
                    _ => 0,
                })
                .collect();
            net.tick(t, &actions);
            if t >= steps / 4 && t % 50 == 0 {
                let stats = imbalance_stats(&net.loads());
                if stats.mean >= 5.0 {
                    ratio += stats.max_over_mean;
                    samples += 1;
                }
            }
        }
        net.quiesce();
        net.check_conservation().expect("conservation");
        let s = net.stats();
        rows.push(vec![
            latency.to_string(),
            f3(ratio / samples.max(1) as f64),
            s.completed_ops.to_string(),
            s.aborted_ops.to_string(),
            f3(s.aborted_ops as f64 / (s.completed_ops + s.aborted_ops).max(1) as f64),
            s.packets_moved.to_string(),
        ]);
    }
    let headers = vec![
        "latency",
        "max/mean",
        "completed ops",
        "aborted ops",
        "abort rate",
        "packets moved",
    ];
    println!("{}", render_table(&headers, &rows));

    // Failure injection: control-message loss at fixed latency 4.
    let mut loss_rows = Vec::new();
    for loss in [0.0f64, 0.05, 0.2, 0.5] {
        let params = Params::new(n, 2, 1.3, 4).expect("valid");
        let mut cfg = AsyncConfig::reliable(params, 4, 13);
        cfg.control_loss = loss;
        let mut net = AsyncNetwork::new(cfg);
        let mut wl_rng = ChaCha8Rng::seed_from_u64(5);
        let mut ratio = 0.0;
        let mut samples = 0usize;
        for t in 0..steps {
            let actions: Vec<i8> = (0..n)
                .map(|_| match wl_rng.gen_range(0..10) {
                    0..=4 => 1,
                    5..=7 => -1,
                    _ => 0,
                })
                .collect();
            net.tick(t, &actions);
            if t >= steps / 4 && t % 50 == 0 {
                let stats = imbalance_stats(&net.loads());
                if stats.mean >= 5.0 {
                    ratio += stats.max_over_mean;
                    samples += 1;
                }
            }
        }
        net.quiesce();
        net.check_conservation().expect("conservation under loss");
        let s = net.stats();
        loss_rows.push(vec![
            format!("{loss:.2}"),
            f3(ratio / samples.max(1) as f64),
            s.completed_ops.to_string(),
            s.lost_messages.to_string(),
            s.timeout_recoveries.to_string(),
        ]);
    }
    println!("Failure injection (latency 4, control-message loss swept):");
    println!(
        "{}",
        render_table(
            &[
                "loss",
                "max/mean",
                "completed ops",
                "lost msgs",
                "timeout recoveries"
            ],
            &loss_rows
        )
    );
    println!("Expected shape: quality near the synchronous simulator at latency 1 and");
    println!("degrading gracefully as latency grows; abort rate rises with contention.");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
