//! Figure 6: variation density of a non-generating processor for
//! `δ ∈ {1, 2, 4}`, `f ∈ {1.1, 1.2}`, processor counts 2–35 and up to 150
//! balancing steps, via the exact moment recursion (plus a Monte-Carlo
//! cross-check column).
//!
//! Usage: `cargo run --release -p dlb-experiments --bin fig6_variation
//!         [--steps 150] [--out results/fig6.csv] [--jobs N]`

use dlb_experiments::args::Args;
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::report::{ascii_plot, f3, render_table, write_csv};
use dlb_experiments::svg::{write_chart, ChartConfig, Series};
use dlb_experiments::variation::{figure6_curves, mc_crosscheck, paper_processor_counts};

fn main() {
    let args = Args::from_env();
    let steps: usize = args.get("steps", 150);
    let jobs: usize = args.get("jobs", default_jobs());
    let out: String = args.get("out", "results/fig6.csv".to_string());

    let deltas = [1usize, 2, 4];
    let fs = [1.1f64, 1.2];
    let counts = paper_processor_counts();
    let curves = figure6_curves(&deltas, &fs, &counts, steps, jobs);

    // Summary table: converged VD per (delta, f) at the largest network.
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for c in &curves {
        csv_rows.push(vec![
            c.delta.to_string(),
            format!("{:.1}", c.f),
            (c.p + 1).to_string(),
            f3(c.final_vd()),
        ]);
        if c.p + 1 == 35 {
            rows.push(vec![
                c.delta.to_string(),
                format!("{:.1}", c.f),
                (c.p + 1).to_string(),
                f3(c.vd[steps / 10]),
                f3(c.vd[steps / 2]),
                f3(c.final_vd()),
            ]);
        }
    }
    println!("Figure 6: variation density VD(l_i,t) (exact moment recursion)\n");
    println!(
        "{}",
        render_table(
            &[
                "delta",
                "f",
                "procs",
                &format!("VD@t={}", steps / 10),
                &format!("VD@t={}", steps / 2),
                &format!("VD@t={steps}")
            ],
            &rows
        )
    );

    // One representative plot: delta sweep at f = 1.2, 35 processors.
    let plot_series: Vec<(String, Vec<f64>)> = deltas
        .iter()
        .filter_map(|&d| {
            curves
                .iter()
                .find(|c| c.delta == d && (c.f - 1.2).abs() < 1e-9 && c.p + 1 == 35)
                .map(|c| (format!("delta={d}"), c.vd.clone()))
        })
        .collect();
    let series_refs: Vec<(&str, &[f64])> = plot_series
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    println!("VD over balancing steps (f = 1.2, 35 processors):\n");
    println!("{}", ascii_plot(&series_refs, 12));

    // The paper's own Figure 6 used a *relaxed* engine for delta > 1
    // (delta successive pairwise balances); quantify the relaxation error.
    println!("Relaxed engine (the paper's Figure 6 method) vs the true algorithm");
    println!("(35 processors, converged VD):\n");
    let mut relax_rows = Vec::new();
    for &delta in &deltas[1..] {
        for &f in &fs {
            let true_vd = dlb_theory::moments::vd_curve(34, delta, f, steps)[steps];
            let relaxed_vd = dlb_theory::moments::vd_curve_relaxed(34, delta, f, steps)[steps];
            relax_rows.push(vec![
                delta.to_string(),
                format!("{f:.1}"),
                f3(true_vd),
                f3(relaxed_vd),
                format!("{:+.1}%", (relaxed_vd - true_vd) / true_vd * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["delta", "f", "true VD", "relaxed VD", "error"],
            &relax_rows
        )
    );

    // Monte-Carlo cross-check of a few points.
    println!("Monte-Carlo cross-check (30k runs):");
    for &(d, f, n) in &[(1usize, 1.1f64, 10usize), (2, 1.2, 35), (4, 1.1, 20)] {
        let (exact, mc) = mc_crosscheck(d, f, n, steps.min(60), 30_000, 9);
        println!("  delta={d} f={f} procs={n}: exact {exact:.4} vs MC {mc:.4}");
    }
    println!("\nExpected shape: VD small (< 1), converging in t and in network size;");
    println!("larger delta and smaller f give lower VD (tradeoff with balancing cost).");

    write_csv(&out, &["delta", "f", "procs", "vd_final"], &csv_rows).expect("CSV written");
    let svg_series: Vec<Series> = curves
        .iter()
        .filter(|c| c.p + 1 == 35)
        .map(|c| Series::from_ys(&format!("delta={} f={}", c.delta, c.f), &c.vd))
        .collect();
    let svg_path = out.replace(".csv", ".svg");
    let chart = ChartConfig {
        title: "Figure 6: variation density (35 processors)".into(),
        x_label: "balancing steps".into(),
        y_label: "VD(l_i,t)".into(),
        ..Default::default()
    };
    write_chart(&svg_path, &chart, &svg_series).expect("SVG written");
    println!("\nwrote {out} and {svg_path}");
}
