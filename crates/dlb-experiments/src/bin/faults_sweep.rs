//! Balance quality vs injected fault rates on the asynchronous protocol
//! simulator: message loss swept 0%–20% and crashed-processor fraction
//! swept 0%–25%, with extended conservation asserted after every tick
//! and zero leaked locks after quiescence.
//!
//! Output is a byte-stable JSON report (all randomness is seeded, no
//! timestamps) plus an SVG chart of both sweeps.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin faults_sweep
//!         [--scenario scenarios/lossy_network.json] [--n 32]
//!         [--steps 3000] [--runs 3] [--jobs N]
//!         [--out results/faults_sweep.json]
//!         [--svg results/faults_sweep.svg]`
//!
//! With `--scenario`, the scenario's `n`, `steps`, `seed` and `faults`
//! section seed the sweep (the swept knob overrides the plan's own value
//! per point).

use dlb_experiments::args::Args;
use dlb_experiments::faultsweep::{sweep, SweepConfig};
use dlb_experiments::report::{f3, render_table};
use dlb_experiments::svg::write_chart;
use dlb_faults::FaultPlan;
use dlb_json::{FromJson, Json, ToJson};

fn main() {
    let args = Args::from_env();
    let mut cfg = SweepConfig::default();

    if args.has("scenario") {
        let path: String = args.get("scenario", String::new());
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read scenario {path}: {e}"));
        let json = Json::parse(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
        cfg.n = dlb_json::field_or(&json, "n", cfg.n as u64).expect("n") as usize;
        cfg.steps = dlb_json::field_or(&json, "steps", cfg.steps).expect("steps");
        cfg.workload_seed = dlb_json::field_or(&json, "seed", cfg.workload_seed).expect("seed");
        if let Some(faults) = json.get("faults") {
            if !matches!(faults, Json::Null) {
                cfg.base = FaultPlan::from_json(faults).expect("valid faults section");
                cfg.base
                    .validate(cfg.n)
                    .expect("fault plan fits the scenario");
            }
        }
        println!(
            "scenario {path}: n = {}, steps = {}, seed = {}\n",
            cfg.n, cfg.steps, cfg.workload_seed
        );
    }
    cfg.n = args.get("n", cfg.n);
    cfg.steps = args.get("steps", cfg.steps);
    cfg.runs = args.get("runs", cfg.runs);
    cfg.jobs = args.get("jobs", dlb_experiments::parallel::default_jobs());
    let out: String = args.get("out", "results/faults_sweep.json".to_string());
    let svg: String = args.get("svg", "results/faults_sweep.svg".to_string());

    println!(
        "Fault sweep: balance quality vs loss and crash rates \
         ({} procs, {} ticks, latency {}, {} runs per point)\n",
        cfg.n, cfg.steps, cfg.latency, cfg.runs
    );
    let result = sweep(&cfg);

    let headers = [
        "rate",
        "max/mean",
        "completed",
        "retries",
        "timeout recov.",
        "lost msgs",
        "lost load",
    ];
    let rows = |points: &[dlb_experiments::faultsweep::SweepPoint]| {
        points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.x * 100.0),
                    f3(p.quality),
                    p.stats.completed_ops.to_string(),
                    p.stats.retries.to_string(),
                    p.stats.timeout_recoveries.to_string(),
                    p.stats.lost_messages.to_string(),
                    p.lost_load.to_string(),
                ]
            })
            .collect::<Vec<_>>()
    };
    println!("Message loss (control + transfer plane):");
    println!("{}", render_table(&headers, &rows(&result.loss_sweep)));
    println!("Crashed processors (frozen at t = steps/4, recovering at 3·steps/4):");
    println!("{}", render_table(&headers, &rows(&result.crash_sweep)));
    println!("Conservation held at every tick; no locks leaked after quiescence.");

    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("output directory");
    }
    std::fs::write(&out, result.to_json().render_pretty()).expect("JSON written");
    let (chart_cfg, series) = result.chart();
    write_chart(&svg, &chart_cfg, &series).expect("SVG written");
    println!("\nwrote {out} and {svg}");
}
