//! The paper's "very good performance even on networks containing up to
//! 1024 processors" claim: balancing quality and per-step cost of the
//! practical variant as the network grows, plus the full variant at
//! moderate sizes.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin scaling
//!         [--steps 500] [--runs 5]`

use dlb_core::{imbalance_stats, Cluster, LoadBalancer, Params, SimpleCluster};
use dlb_experiments::args::Args;
use dlb_experiments::quality::paper_trace;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_workload::drive;
use std::time::Instant;

fn run<B: LoadBalancer>(
    make: impl Fn(u64) -> B,
    n: usize,
    steps: usize,
    runs: usize,
) -> (f64, f64, f64) {
    let mut ratio = 0.0;
    let mut samples = 0usize;
    let mut ops = 0.0;
    let start = Instant::now();
    for r in 0..runs {
        let trace = paper_trace(n, steps, 100 + r as u64);
        let mut balancer = make(r as u64);
        let mut replay = trace.replay();
        drive(&mut balancer, &mut replay, steps, |t, b| {
            if t >= steps / 2 && t % 50 == 0 {
                let stats = imbalance_stats(&b.loads());
                if stats.mean >= 5.0 {
                    ratio += stats.max_over_mean;
                    samples += 1;
                }
            }
        });
        ops += balancer.metrics().balance_ops as f64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    (
        ratio / samples.max(1) as f64,
        ops / runs as f64,
        elapsed / (runs * steps) as f64 * 1e6,
    )
}

fn main() {
    let args = Args::from_env();
    let steps: usize = args.get("steps", 500);
    let runs: usize = args.get("runs", 5);
    let out: String = args.get("out", "results/scaling.csv".to_string());

    println!("Scaling: section-7 workload, delta = 1, f = 1.1 ({steps} steps, {runs} runs)\n");
    let mut rows = Vec::new();
    for n in [16usize, 64, 256, 1024] {
        let params = Params::paper_section7(n);
        let (simple_ratio, simple_ops, simple_us) =
            run(|s| SimpleCluster::new(params, s), n, steps, runs);
        // The full variant keeps O(n) state per processor (the virtual
        // load classes); at n = 1024 we use fewer runs.
        let full_runs = if n >= 1024 { runs.min(2) } else { runs };
        let full = {
            let (r, o, us) = run(|s| Cluster::new(params, s), n, steps, full_runs);
            Some((r, o, us))
        };
        rows.push(vec![
            n.to_string(),
            f3(simple_ratio),
            f3(simple_ops),
            f3(simple_us),
            full.map_or("-".into(), |f| f3(f.0)),
            full.map_or("-".into(), |f| f3(f.1)),
            full.map_or("-".into(), |f| f3(f.2)),
        ]);
    }
    let headers = vec![
        "n",
        "simple max/mean",
        "simple ops/run",
        "simple us/step",
        "full max/mean",
        "full ops/run",
        "full us/step",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape: max/mean stays bounded (network-size independent, Theorem 2);");
    println!("operations grow ~linearly with n (each processor balances for itself).");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
