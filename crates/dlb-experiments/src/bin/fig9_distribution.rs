//! Figures 9 and 10: per-processor load distribution (mean over runs plus
//! min/max ever observed) at time steps 50, 200 and 400, for
//! `f ∈ {1.1, 1.8}` at a given `δ` (Figure 9: `δ = 1`; Figure 10: `δ = 4`).
//!
//! Usage: `cargo run --release -p dlb-experiments --bin fig9_distribution
//!         [--delta 1] [--n 64] [--runs 100] [--c 4] [--jobs N]`

use dlb_core::Params;
use dlb_experiments::args::Args;
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::quality::distribution_at;
use dlb_experiments::report::{ascii_plot, f3, render_table, write_csv};
use dlb_experiments::svg::{write_chart, ChartConfig, Series};

fn main() {
    let args = Args::from_env();
    let delta: usize = args.get("delta", 1);
    let n: usize = args.get("n", 64);
    let steps: usize = args.get("steps", 500);
    let runs: usize = args.get("runs", 100);
    let c: usize = args.get("c", 4);
    let jobs: usize = args.get("jobs", default_jobs());
    let figure = if delta == 1 { 9 } else { 10 };
    let out: String = args.get("out", format!("results/fig{figure}_delta{delta}.csv"));
    let checkpoints = [50usize, 200, 400];

    println!(
        "Figure {figure}: per-processor distribution, delta = {delta}, f in {{1.1, 1.8}} \
         ({n} procs, {runs} runs, checkpoints {checkpoints:?})\n"
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut summary = Vec::new();
    let mut svg_series: Vec<Series> = Vec::new();
    for f in [1.1f64, 1.8] {
        let params = Params::new(n, delta, f, c).expect("valid parameters");
        let snaps = distribution_at(params, steps, &checkpoints, runs, 4096, jobs);
        for snap in &snaps {
            for i in 0..n {
                csv_rows.push(vec![
                    format!("{f:.1}"),
                    snap.t.to_string(),
                    i.to_string(),
                    f3(snap.mean[i]),
                    snap.min[i].to_string(),
                    snap.max[i].to_string(),
                ]);
            }
            let grand = snap.mean.iter().sum::<f64>() / n as f64;
            let worst_min = *snap.min.iter().min().expect("n > 0");
            let worst_max = *snap.max.iter().max().expect("n > 0");
            summary.push(vec![
                format!("{f:.1}"),
                snap.t.to_string(),
                f3(grand),
                f3(snap.mean_spread()),
                worst_min.to_string(),
                worst_max.to_string(),
            ]);
            if snap.t == 400 {
                println!("f = {f}, t = 400: mean load by processor");
                println!("{}", ascii_plot(&[("mean", &snap.mean)], 8));
            }
            svg_series.push(Series::from_ys(&format!("f={f} t={}", snap.t), &snap.mean));
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "f",
                "t",
                "grand mean",
                "mean spread",
                "min ever",
                "max ever"
            ],
            &summary
        )
    );
    println!("Expected shape: mean spread small relative to the grand mean; the");
    println!("delta = 4 figure is visibly flatter than delta = 1, while f matters less.");
    write_csv(&out, &["f", "t", "proc", "mean", "min", "max"], &csv_rows).expect("CSV written");
    let svg_path = out.replace(".csv", ".svg");
    let chart = ChartConfig {
        title: format!("Figure {figure}: per-processor mean load, delta = {delta}"),
        x_label: "processor".into(),
        y_label: "mean load".into(),
        ..Default::default()
    };
    write_chart(&svg_path, &chart, &svg_series).expect("SVG written");
    println!("\nwrote {out} and {svg_path}");
}
