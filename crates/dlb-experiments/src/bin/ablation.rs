//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. full virtual-class algorithm vs the practical raw-load variant;
//! 2. `Strict` vs `Aggressive` exchange policy (the appendix's literal
//!    `x = min{d_jj, Σ_k b_ik}` rule);
//! 3. global-random partners vs topology-neighbour partners (locality)
//!    with hop-weighted communication cost on a 2-D torus.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin ablation
//!         [--n 64] [--steps 500] [--runs 20]`

use dlb_core::{imbalance_stats, Cluster, ExchangePolicy, LoadBalancer, Params, SimpleCluster};
use dlb_experiments::args::Args;
use dlb_experiments::quality::paper_trace;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_net::{PartnerMode, TopoCluster, Topology};
use dlb_workload::drive;

fn quality<B: LoadBalancer>(
    make: impl Fn(u64) -> B,
    n: usize,
    steps: usize,
    runs: usize,
) -> (f64, f64, f64) {
    let mut ratio = 0.0;
    let mut samples = 0usize;
    let mut migrated = 0.0;
    let mut ops = 0.0;
    for r in 0..runs {
        let trace = paper_trace(n, steps, 7000 + r as u64);
        let mut balancer = make(r as u64);
        let mut replay = trace.replay();
        drive(&mut balancer, &mut replay, steps, |t, b| {
            if t >= 100 && t % 25 == 0 {
                let stats = imbalance_stats(&b.loads());
                if stats.mean >= 5.0 {
                    ratio += stats.max_over_mean;
                    samples += 1;
                }
            }
        });
        migrated += balancer.metrics().packets_migrated as f64;
        ops += balancer.metrics().balance_ops as f64;
    }
    (
        ratio / samples.max(1) as f64,
        migrated / runs as f64,
        ops / runs as f64,
    )
}

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 64);
    let steps: usize = args.get("steps", 500);
    let runs: usize = args.get("runs", 20);
    let out: String = args.get("out", "results/ablation.csv".to_string());

    let params = Params::paper_section7(n);
    println!("Ablations ({n} procs, section-7 workload, {steps} steps, {runs} runs)\n");

    let mut rows = Vec::new();
    let mut push = |label: &str, (ratio, migrated, ops): (f64, f64, f64)| {
        rows.push(vec![label.to_string(), f3(ratio), f3(migrated), f3(ops)]);
    };

    push(
        "full / strict",
        quality(|s| Cluster::new(params, s), n, steps, runs),
    );
    push(
        "full / aggressive",
        quality(
            |s| Cluster::new(params.with_exchange(ExchangePolicy::Aggressive), s),
            n,
            steps,
            runs,
        ),
    );
    push(
        "simple (raw loads)",
        quality(|s| SimpleCluster::new(params, s), n, steps, runs),
    );

    let w = (n as f64).sqrt() as usize;
    let torus = Topology::Torus2D { w, h: n / w };
    push(
        "topo: global partners",
        quality(
            |s| TopoCluster::new(params, torus.clone(), PartnerMode::GlobalRandom, s),
            n,
            steps,
            runs,
        ),
    );
    push(
        "topo: neighbours only",
        quality(
            |s| TopoCluster::new(params, torus.clone(), PartnerMode::Neighbors, s),
            n,
            steps,
            runs,
        ),
    );

    let headers = vec!["variant", "max/mean", "migrated/run", "ops/run"];
    println!("{}", render_table(&headers, &rows));

    // Hop-weighted cost of the locality choice.
    let mut hop_rows = Vec::new();
    for (label, mode) in [
        ("global", PartnerMode::GlobalRandom),
        ("neighbours", PartnerMode::Neighbors),
    ] {
        let trace = paper_trace(n, steps, 7000);
        let mut c = TopoCluster::new(params, torus.clone(), mode, 1);
        let mut replay = trace.replay();
        drive(&mut c, &mut replay, steps, |_, _| {});
        let comm = c.comm();
        hop_rows.push(vec![
            label.to_string(),
            comm.packets.to_string(),
            comm.packet_hops.to_string(),
            f3(comm.packet_hops as f64 / comm.packets.max(1) as f64),
        ]);
    }
    println!("Hop-weighted communication on the torus (single run):");
    println!(
        "{}",
        render_table(
            &["partners", "packets", "packet-hops", "hops/packet"],
            &hop_rows
        )
    );
    println!("Expected shape: full and simple variants balance almost identically (the");
    println!("virtual classes exist for the proof); aggressive exchange ~= strict; the");
    println!("locality variant pays ~1 hop/packet but balances more slowly (diffusive).");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
