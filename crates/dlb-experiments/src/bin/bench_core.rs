//! Times the core simulation engines on the §7 paper workload across
//! processor counts and writes `BENCH_core.json` at the repo root — the
//! single-engine counterpart of `bench_experiments` (which times the
//! Monte Carlo harness around them).
//!
//! For each `(n, step_jobs)` in the matrix the full virtual-class
//! [`Cluster`] and the practical [`SimpleCluster`] replay the same
//! recorded 500-step paper trace; wall-clock is the minimum over `reps`
//! runs (rejecting scheduler noise) and every run's final state is
//! fingerprinted with FNV-1a and invariant-checked.  The `step_jobs`
//! axis exercises the intra-step wave executor: its checksums MUST equal
//! the sequential ones bit for bit (asserted here), so any speedup at
//! `step_jobs > 1` is free of result drift.  On a 1-core box (like CI)
//! the identity is the whole point; the speedup shows on real cores —
//! `effective_cores` records what this machine had.  n = 4096 is the
//! PR-4 headline: the flat `d`/`b` arena plus active-class lists make
//! the full model tractable at that size, and the binary asserts it
//! completes in under 60 s.
//!
//! Since PR 9 the full engine stores its class state sparsely, so the
//! matrix gains a `large` section (full engine only, fewer steps) that
//! climbs to n = 2¹⁸ and records `state_bytes`/`bytes_per_proc` — the
//! witness that memory scales with active classes, not n².  Two dense
//! u64 matrices would cost 16·n bytes per processor (4 MiB at n = 2¹⁸);
//! the binary asserts the sparse engine stays under 4 KiB.
//!
//! Since PR 10 the binary also times the *event-driven* path: a
//! `sparse_step` section steps the full engine at n = 2²⁰ through
//! [`LoadBalancer::step_sparse`] on a structurally sparse phase
//! workload at 1 % and 0.1 % activity.  Each row's checksum is asserted
//! equal to a dense `step` run over the identical event stream (the
//! equivalence witness), and per-step cost must drop with the active
//! fraction — the proof that stepping costs O(active), not O(n).
//!
//! Usage: `cargo run --release -p dlb-experiments --bin bench_core
//!         [--smoke] [--large-smoke] [--sparse-smoke]
//!         [--out BENCH_core.json] [--check BENCH_core.json]`
//!
//! `--smoke` shrinks the matrix (and skips the 60 s assertion) so CI can
//! run the binary in seconds as a compile-and-run gate; `--large-smoke`
//! runs a single time-bounded large-n cell (n = 65536) and exits without
//! writing JSON — the CI gate that the sparse engine actually reaches
//! 10⁵-processor scale.  `--sparse-smoke` runs one time-bounded
//! event-driven cell (n = 2²⁰, 1 % activity) with its dense equivalence
//! witness and exits without writing JSON.  `--check <baseline>`
//! re-runs the baseline's matrix (including its `large` and
//! `sparse_step` rows, if present) and exits non-zero if any checksum
//! differs from the committed file (timings are machine-dependent;
//! checksums are not).  When the baseline was produced on a 1-core box
//! (`effective_cores` = 1) the step-jobs speedup comparison is skipped —
//! only the bit-identity of the checksums is meaningful there.

use dlb_core::{Cluster, LoadBalancer, Params, SimpleCluster};
use dlb_experiments::args::Args;
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::quality::paper_trace;
use dlb_json::{Json, ToJson};
use dlb_workload::sparse::{drive_sparse, SparseActivity, SparsePattern};
use dlb_workload::trace::EventTrace;
use dlb_workload::Workload;
use std::time::Instant;

/// FNV-1a over the final loads and headline metrics of one run.
fn fingerprint<B: LoadBalancer>(balancer: &B) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut push = |v: u64| {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for &l in &balancer.loads() {
        push(l);
    }
    let m = balancer.metrics();
    push(m.generated);
    push(m.consumed);
    push(m.balance_ops);
    push(m.messages);
    push(m.packets_migrated);
    format!("{hash:016x}")
}

/// Replays `trace` on a fresh balancer `reps` times; returns the best
/// wall-clock in ms and the (identical across reps) state fingerprint.
fn time_engine<B, M>(make: M, trace: &EventTrace, reps: usize) -> (f64, String)
where
    B: LoadBalancer,
    M: Fn() -> B,
{
    let steps = trace.steps();
    let mut best = f64::INFINITY;
    let mut fp = String::new();
    for _ in 0..reps {
        let mut balancer = make();
        let mut replay = trace.replay();
        let mut events = Vec::new();
        let t0 = Instant::now();
        for t in 0..steps {
            replay.events_at(t, &mut events);
            balancer.step(&events);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        let run_fp = fingerprint(&balancer);
        assert!(
            fp.is_empty() || fp == run_fp,
            "nondeterministic engine: {fp} != {run_fp}"
        );
        fp = run_fp;
    }
    (best, fp)
}

/// One timed cell of the matrix: both engines at `(n, step_jobs)`.
struct Cell {
    n: usize,
    step_jobs: usize,
    full_ms: f64,
    full_fp: String,
    simple_ms: f64,
    simple_fp: String,
}

/// Times both engines at `(n, step_jobs)` and — for the sequential
/// column — invariant-checks the final state with a verification run.
fn run_cell(n: usize, step_jobs: usize, steps: usize, reps: usize, verify: bool) -> Cell {
    let trace = paper_trace(n, steps, 9);
    let params = Params::paper_section7(n);

    let (full_ms, full_fp) = time_engine(
        || {
            let mut c = Cluster::new(params, 1);
            c.check_invariants().expect("fresh cluster invariants");
            c.set_step_jobs(step_jobs);
            c
        },
        &trace,
        reps,
    );
    let (simple_ms, simple_fp) = time_engine(
        || {
            let mut c = SimpleCluster::new(params, 1);
            c.set_step_jobs(step_jobs);
            c
        },
        &trace,
        reps,
    );
    if verify {
        // Re-run once more to invariant-check the *final* state (the
        // timed closure only sees the fresh one).
        let mut c = Cluster::new(params, 1);
        c.set_step_jobs(step_jobs);
        let mut s = SimpleCluster::new(params, 1);
        s.set_step_jobs(step_jobs);
        let mut replay = trace.replay();
        let mut events = Vec::new();
        for t in 0..steps {
            replay.events_at(t, &mut events);
            c.step(&events);
            s.step(&events);
        }
        c.check_invariants().expect("final cluster invariants");
        s.check_invariants().expect("final simple invariants");
        assert_eq!(fingerprint(&c), full_fp, "verification run diverged");
        assert_eq!(fingerprint(&s), simple_fp, "verification run diverged");
    }
    Cell {
        n,
        step_jobs,
        full_ms,
        full_fp,
        simple_ms,
        simple_fp,
    }
}

const STEP_JOBS: [usize; 2] = [1, 4];

fn matrix(smoke: bool) -> (&'static [usize], usize, usize) {
    if smoke {
        (&[16, 64], 120, 2)
    } else {
        (&[64, 512, 4096], 500, 3)
    }
}

/// The sparse-engine scaling ladder: full model only, single rep,
/// fewer steps (wall-clock per step grows with n; 120 steps at n = 2¹⁸
/// is the acceptance bar for 10⁵⁺-processor scale).
const LARGE_SIZES: [usize; 3] = [16_384, 65_536, 262_144];
const LARGE_STEPS: usize = 120;

/// One row of the `large` section.
struct LargeCell {
    n: usize,
    steps: usize,
    full_ms: f64,
    full_fp: String,
    state_bytes: usize,
}

/// Times the full engine once at `n` on the paper workload and captures
/// the final sparse-state footprint.  Invariant-checks the final state
/// and asserts the memory bound that makes this scale reachable at all.
fn run_large_cell(n: usize, steps: usize) -> LargeCell {
    let trace = paper_trace(n, steps, 9);
    let params = Params::paper_section7(n);
    let mut cluster = Cluster::new(params, 1);
    let mut replay = trace.replay();
    let mut events = Vec::new();
    let t0 = Instant::now();
    for t in 0..steps {
        replay.events_at(t, &mut events);
        cluster.step(&events);
    }
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    cluster.check_invariants().expect("large-n invariants");
    let state_bytes = cluster.state_bytes();
    let per_proc = state_bytes / n;
    assert!(
        per_proc < 4096,
        "sparse state must stay far below the dense 16·n B/proc: \
         n={n} uses {per_proc} B/proc"
    );
    LargeCell {
        n,
        steps,
        full_ms,
        full_fp: fingerprint(&cluster),
        state_bytes,
    }
}

/// The event-driven stepping ladder: full engine at n = 2²⁰, a sparse
/// phase workload (1-step work phases) whose gap range sets the active
/// fraction.  Fewer steps than the dense matrix — the whole point is
/// that a step no longer costs O(n).
const SPARSE_N: usize = 1 << 20;
const SPARSE_STEPS: usize = 200;
/// Two-step work phases (generate, then consume — load-neutral) with
/// the sleep gap setting the activity: 2/(2 + mean gap).
const SPARSE_LEVELS: [(&str, (u32, u32)); 2] = [("1%", (100, 300)), ("0.1%", (1000, 3000))];

/// One row of the `sparse_step` section.
struct SparseCell {
    n: usize,
    steps: usize,
    gap: (u32, u32),
    active_per_step: f64,
    sparse_ms: f64,
    dense_ms: f64,
    fp: String,
}

/// Times the full engine through `step_sparse` at `n` with the given
/// activity gap, then re-runs the identical event stream through the
/// dense `step` path and asserts the final states are bit-identical —
/// every sparse timing in the JSON carries its own equivalence witness.
fn run_sparse_cell(n: usize, gap: (u32, u32), steps: usize) -> SparseCell {
    let pattern = SparsePattern::Phase { work: 2, gap };
    let params = Params::paper_section7(n);

    let mut workload = SparseActivity::new(n, pattern, 9);
    let mut cluster = Cluster::new(params, 1);
    let mut total_active = 0u64;
    let t0 = Instant::now();
    drive_sparse(&mut cluster, &mut workload, steps, |_, active, _| {
        total_active += active.len() as u64;
    });
    let sparse_ms = t0.elapsed().as_secs_f64() * 1e3;
    cluster.check_invariants().expect("sparse-step invariants");
    let fp = fingerprint(&cluster);

    let mut workload = SparseActivity::new(n, pattern, 9);
    let mut dense = Cluster::new(params, 1);
    let mut events = Vec::new();
    let t0 = Instant::now();
    for t in 0..steps {
        workload.events_at(t, &mut events);
        dense.step(&events);
    }
    let dense_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        fingerprint(&dense),
        fp,
        "sparse and dense paths diverged at n={n}, gap={gap:?}"
    );

    SparseCell {
        n,
        steps,
        gap,
        active_per_step: total_active as f64 / steps as f64,
        sparse_ms,
        dense_ms,
        fp,
    }
}

/// `--sparse-smoke` mode: one time-bounded event-driven cell (with its
/// dense witness) proving the sparse path holds at n = 2²⁰, for CI.
/// Writes nothing.
fn sparse_smoke() -> ! {
    let (n, (_, gap), steps) = (SPARSE_N, SPARSE_LEVELS[0], 100usize);
    println!("bench_core --sparse-smoke: full engine, n={n}, {steps} steps, 1% activity\n");
    let cell = run_sparse_cell(n, gap, steps);
    println!(
        "  n={:<8} sparse {:>9.2} ms  dense {:>9.2} ms  ({})  {:.0} active/step",
        cell.n, cell.sparse_ms, cell.dense_ms, cell.fp, cell.active_per_step
    );
    assert!(
        cell.sparse_ms < 60_000.0,
        "sparse smoke must finish {steps} steps at n={n} in < 60 s, took {:.0} ms",
        cell.sparse_ms
    );
    std::process::exit(0);
}

/// `--check` mode: re-runs the baseline's matrix (checksums are
/// machine-independent) and compares every cell against the committed
/// file.  Exits 1 on any drift.
fn check_against(baseline_path: &str) -> ! {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parse {baseline_path}: {e}"));
    let smoke = doc.get("matrix").and_then(Json::as_str) == Some("smoke");
    let field = |cell: &Json, key: &str| -> String {
        cell.get(key)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("cell is missing {key}"))
            .to_string()
    };
    let baseline: Vec<(u64, u64, String, String)> = doc
        .get("sizes")
        .and_then(Json::as_arr)
        .expect("baseline has a sizes array")
        .iter()
        .map(|cell| {
            (
                cell.get("n").and_then(Json::as_f64).expect("cell n") as u64,
                cell.get("step_jobs").and_then(Json::as_f64).unwrap_or(1.0) as u64, // pre-step-jobs baselines are sequential
                field(cell, "full_checksum"),
                field(cell, "simple_checksum"),
            )
        })
        .collect();
    let (_, steps, _) = matrix(smoke);
    println!(
        "bench_core --check: verifying {} cells against {baseline_path} \
         ({} matrix)\n",
        baseline.len(),
        if smoke { "smoke" } else { "paper" }
    );
    let mut drifted = 0usize;
    let mut timings: Vec<(u64, u64, f64)> = Vec::new();
    for (n, step_jobs, want_full, want_simple) in &baseline {
        // One rep suffices: checksums do not depend on timing.
        let cell = run_cell(*n as usize, *step_jobs as usize, steps, 1, false);
        timings.push((*n, *step_jobs, cell.full_ms));
        for (engine, want, got) in [
            ("full", want_full, &cell.full_fp),
            ("simple", want_simple, &cell.simple_fp),
        ] {
            if want == got {
                println!("  n={n:<5} sj={step_jobs} {engine:<7} ok    {got}");
            } else {
                println!("  n={n:<5} sj={step_jobs} {engine:<7} DRIFT baseline {want} != {got}");
                drifted += 1;
            }
        }
    }
    // Step-jobs speedup sanity: only meaningful when both the baseline
    // box and this one actually had cores to parallelise over — on a
    // 1-core machine (CI) the wave executor can only add overhead, so
    // the comparison is skipped and bit-identity above is the gate.
    let baseline_cores = doc
        .get("effective_cores")
        .and_then(Json::as_f64)
        .unwrap_or(1.0) as usize;
    if baseline_cores <= 1 || default_jobs() <= 1 {
        println!(
            "\nspeedup comparison skipped (baseline effective_cores = \
             {baseline_cores}, this machine = {})",
            default_jobs()
        );
    } else {
        for &(n, sj, par_ms) in &timings {
            if sj == 1 {
                continue;
            }
            let Some(&(_, _, seq_ms)) = timings.iter().find(|&&(m, j, _)| m == n && j == 1) else {
                continue;
            };
            // A loose bound: parallel steps must not be grossly slower
            // than sequential ones (3x covers scheduler noise).
            if par_ms > seq_ms * 3.0 {
                println!(
                    "  n={n:<5} sj={sj} full    SLOW  {par_ms:.2} ms vs {seq_ms:.2} ms sequential"
                );
                drifted += 1;
            } else {
                println!(
                    "  n={n:<5} sj={sj} full    speedup ok ({:.2}x)",
                    seq_ms / par_ms
                );
            }
        }
    }
    // The sparse-engine `large` rows, when the baseline has them: same
    // machine-independence argument, one run per row.
    if let Some(large) = doc.get("large").and_then(Json::as_arr) {
        println!();
        for row in large {
            let n = row.get("n").and_then(Json::as_f64).expect("large n") as usize;
            let steps = row
                .get("steps")
                .and_then(Json::as_f64)
                .expect("large steps") as usize;
            let want = field(row, "full_checksum");
            let cell = run_large_cell(n, steps);
            if want == cell.full_fp {
                println!("  n={n:<6} large  full    ok    {}", cell.full_fp);
            } else {
                println!(
                    "  n={n:<6} large  full    DRIFT baseline {want} != {}",
                    cell.full_fp
                );
                drifted += 1;
            }
        }
    }
    // The event-driven `sparse_step` rows, when the baseline has them:
    // each re-run also re-asserts the internal sparse/dense witness.
    if let Some(sparse) = doc.get("sparse_step").and_then(Json::as_arr) {
        println!();
        for row in sparse {
            let n = row.get("n").and_then(Json::as_f64).expect("sparse n") as usize;
            let steps = row
                .get("steps")
                .and_then(Json::as_f64)
                .expect("sparse steps") as usize;
            let gap_lo = row.get("gap_lo").and_then(Json::as_f64).expect("gap_lo") as u32;
            let gap_hi = row.get("gap_hi").and_then(Json::as_f64).expect("gap_hi") as u32;
            let want = field(row, "checksum");
            let cell = run_sparse_cell(n, (gap_lo, gap_hi), steps);
            if want == cell.fp {
                println!("  n={n:<8} sparse gap={gap_lo}..{gap_hi} ok    {}", cell.fp);
            } else {
                println!(
                    "  n={n:<8} sparse gap={gap_lo}..{gap_hi} DRIFT baseline {want} != {}",
                    cell.fp
                );
                drifted += 1;
            }
        }
    }
    if drifted > 0 {
        println!(
            "\n{drifted} checksum(s) drifted from {baseline_path}: the simulation \
             results changed.  If intentional, regenerate the baseline."
        );
        std::process::exit(1);
    }
    println!("\nAll checksums match {baseline_path}.");
    std::process::exit(0);
}

/// `--large-smoke` mode: one time-bounded large-n cell proving the
/// sparse engine holds at 10⁵-processor scale, for CI.  Writes nothing.
fn large_smoke() -> ! {
    let (n, steps) = (65_536usize, 40usize);
    println!("bench_core --large-smoke: full engine, n={n}, {steps} steps\n");
    let cell = run_large_cell(n, steps);
    println!(
        "  n={:<6} full {:>10.2} ms  ({})  {} B/proc",
        cell.n,
        cell.full_ms,
        cell.full_fp,
        cell.state_bytes / cell.n
    );
    assert!(
        cell.full_ms < 60_000.0,
        "large smoke must finish {steps} steps at n={n} in < 60 s, took {:.0} ms",
        cell.full_ms
    );
    std::process::exit(0);
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let out: String = args.get("out", "BENCH_core.json".to_string());
    let check: String = args.get("check", String::new());
    if !check.is_empty() {
        check_against(&check);
    }
    if args.flag("large-smoke") {
        large_smoke();
    }
    if args.flag("sparse-smoke") {
        sparse_smoke();
    }
    let (sizes, steps, reps) = matrix(smoke);

    println!(
        "bench_core: engine scaling on the paper workload \
         ({} matrix, {steps} steps, min of {reps}, {} effective cores)\n",
        if smoke { "smoke" } else { "paper" },
        default_jobs()
    );

    let mut cells = Vec::new();
    for &n in sizes {
        let mut seq: Option<(String, String)> = None;
        for step_jobs in STEP_JOBS {
            let cell = run_cell(n, step_jobs, steps, reps, step_jobs == 1);
            match &seq {
                None => seq = Some((cell.full_fp.clone(), cell.simple_fp.clone())),
                Some((full, simple)) => {
                    // The wave executor's whole contract: bit-identical
                    // results at every step_jobs.
                    assert_eq!(&cell.full_fp, full, "step_jobs={step_jobs} full drifted");
                    assert_eq!(
                        &cell.simple_fp, simple,
                        "step_jobs={step_jobs} simple drifted"
                    );
                }
            }
            println!(
                "  n={:<5} sj={} full {:>10.2} ms  ({})   simple {:>9.2} ms  ({})",
                cell.n, cell.step_jobs, cell.full_ms, cell.full_fp, cell.simple_ms, cell.simple_fp
            );
            if !smoke && n == 4096 && step_jobs == 1 {
                assert!(
                    cell.full_ms < 60_000.0,
                    "full model at n=4096 must finish 500 steps in < 60 s, took {:.0} ms",
                    cell.full_ms
                );
            }

            let ms3 = |x: f64| Json::Float((x * 1000.0).round() / 1000.0);
            cells.push(Json::Obj(vec![
                ("n".into(), (cell.n as u64).to_json()),
                ("step_jobs".into(), (cell.step_jobs as u64).to_json()),
                ("full_ms".into(), ms3(cell.full_ms)),
                ("full_checksum".into(), cell.full_fp.to_json()),
                ("simple_ms".into(), ms3(cell.simple_ms)),
                ("simple_checksum".into(), cell.simple_fp.to_json()),
            ]));
        }
    }

    // The sparse-engine scaling ladder (full mode only): full model at
    // n up to 2¹⁸, recording wall-clock and resident class-state bytes.
    // Sub-quadratic growth in both columns is the tentpole claim; the
    // dense engine stored 2·8·n² bytes and could not climb past 4096.
    let mut large_rows = Vec::new();
    if !smoke {
        println!();
        for n in LARGE_SIZES {
            let cell = run_large_cell(n, LARGE_STEPS);
            println!(
                "  n={:<6} large full {:>10.2} ms  ({})  {} B/proc",
                cell.n,
                cell.full_ms,
                cell.full_fp,
                cell.state_bytes / cell.n
            );
            let ms3 = |x: f64| Json::Float((x * 1000.0).round() / 1000.0);
            large_rows.push(Json::Obj(vec![
                ("n".into(), (cell.n as u64).to_json()),
                ("steps".into(), (cell.steps as u64).to_json()),
                ("full_ms".into(), ms3(cell.full_ms)),
                ("full_checksum".into(), cell.full_fp.to_json()),
                ("state_bytes".into(), (cell.state_bytes as u64).to_json()),
                (
                    "bytes_per_proc".into(),
                    ((cell.state_bytes / cell.n) as u64).to_json(),
                ),
            ]));
        }
    }

    // The event-driven stepping ladder: n = 2²⁰ at two activity levels.
    // Per-step cost must track the active fraction — when activity
    // drops 10x, the sparse step must get at least 2x cheaper (the
    // dense path, by contrast, is flat in activity and ~constant here).
    let mut sparse_rows = Vec::new();
    if !smoke {
        println!();
        let mut sparse_cells = Vec::new();
        for (label, gap) in SPARSE_LEVELS {
            let cell = run_sparse_cell(SPARSE_N, gap, SPARSE_STEPS);
            println!(
                "  n={:<8} sparse {label:<5} {:>9.2} ms  dense {:>9.2} ms  ({})  {:.0} active/step",
                cell.n, cell.sparse_ms, cell.dense_ms, cell.fp, cell.active_per_step
            );
            let ms3 = |x: f64| Json::Float((x * 1000.0).round() / 1000.0);
            sparse_rows.push(Json::Obj(vec![
                ("activity".into(), label.to_json()),
                ("n".into(), (cell.n as u64).to_json()),
                ("steps".into(), (cell.steps as u64).to_json()),
                ("gap_lo".into(), u64::from(cell.gap.0).to_json()),
                ("gap_hi".into(), u64::from(cell.gap.1).to_json()),
                ("active_per_step".into(), ms3(cell.active_per_step)),
                ("sparse_ms".into(), ms3(cell.sparse_ms)),
                ("dense_ms".into(), ms3(cell.dense_ms)),
                ("checksum".into(), cell.fp.to_json()),
            ]));
            sparse_cells.push(cell);
        }
        let busy = &sparse_cells[0];
        let quiet = &sparse_cells[1];
        assert!(
            quiet.sparse_ms * 2.0 <= busy.sparse_ms,
            "sparse per-step cost must track the active fraction: \
             {:.2} ms at 1% vs {:.2} ms at 0.1% activity",
            busy.sparse_ms,
            quiet.sparse_ms
        );
    }

    let mut fields = vec![
        ("bench".into(), "core".to_json()),
        (
            "matrix".into(),
            if smoke { "smoke" } else { "paper" }.to_json(),
        ),
        ("steps".into(), (steps as u64).to_json()),
        ("reps".into(), (reps as u64).to_json()),
        ("effective_cores".into(), (default_jobs() as u64).to_json()),
        (
            "wave_threshold".into(),
            (dlb_core::DEFAULT_WAVE_THRESHOLD as u64).to_json(),
        ),
        (
            "simple_wave_threshold".into(),
            (dlb_core::SIMPLE_WAVE_THRESHOLD as u64).to_json(),
        ),
        ("sizes".into(), Json::Arr(cells)),
    ];
    if !large_rows.is_empty() {
        fields.push(("large".into(), Json::Arr(large_rows)));
    }
    if !sparse_rows.is_empty() {
        fields.push(("sparse_step".into(), Json::Arr(sparse_rows)));
    }
    let doc = Json::Obj(fields);
    std::fs::write(&out, doc.render_pretty()).expect("JSON written");
    println!("\nwrote {out}");
}
