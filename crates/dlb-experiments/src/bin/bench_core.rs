//! Times the core simulation engines on the §7 paper workload across
//! processor counts and writes `BENCH_core.json` at the repo root — the
//! single-engine counterpart of `bench_experiments` (which times the
//! Monte Carlo harness around them).
//!
//! For each `n` in the matrix the full virtual-class [`Cluster`] and the
//! practical [`SimpleCluster`] replay the same recorded 500-step paper
//! trace; wall-clock is the minimum over `reps` runs (rejecting
//! scheduler noise) and every run's final state is fingerprinted with
//! FNV-1a and invariant-checked.  n = 4096 is the PR-4 headline: the
//! flat `d`/`b` arena plus active-class lists make the full model
//! tractable at that size (the dense engine was O(n²) per balance
//! operation), and the binary asserts it completes in under 60 s.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin bench_core
//!         [--smoke] [--out BENCH_core.json]`
//!
//! `--smoke` shrinks the matrix (and skips the 60 s assertion) so CI can
//! run the binary in seconds as a compile-and-run gate.

use dlb_core::{Cluster, LoadBalancer, Params, SimpleCluster};
use dlb_experiments::args::Args;
use dlb_experiments::quality::paper_trace;
use dlb_json::{Json, ToJson};
use dlb_workload::trace::EventTrace;
use dlb_workload::Workload;
use std::time::Instant;

/// FNV-1a over the final loads and headline metrics of one run.
fn fingerprint<B: LoadBalancer>(balancer: &B) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut push = |v: u64| {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for &l in &balancer.loads() {
        push(l);
    }
    let m = balancer.metrics();
    push(m.generated);
    push(m.consumed);
    push(m.balance_ops);
    push(m.messages);
    push(m.packets_migrated);
    format!("{hash:016x}")
}

/// Replays `trace` on a fresh balancer `reps` times; returns the best
/// wall-clock in ms and the (identical across reps) state fingerprint.
fn time_engine<B, M>(make: M, trace: &EventTrace, reps: usize) -> (f64, String)
where
    B: LoadBalancer,
    M: Fn() -> B,
{
    let steps = trace.steps();
    let mut best = f64::INFINITY;
    let mut fp = String::new();
    for _ in 0..reps {
        let mut balancer = make();
        let mut replay = trace.replay();
        let mut events = Vec::new();
        let t0 = Instant::now();
        for t in 0..steps {
            replay.events_at(t, &mut events);
            balancer.step(&events);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        let run_fp = fingerprint(&balancer);
        assert!(
            fp.is_empty() || fp == run_fp,
            "nondeterministic engine: {fp} != {run_fp}"
        );
        fp = run_fp;
    }
    (best, fp)
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let out: String = args.get("out", "BENCH_core.json".to_string());
    let (sizes, steps, reps): (&[usize], usize, usize) = if smoke {
        (&[16, 64], 120, 2)
    } else {
        (&[64, 512, 4096], 500, 3)
    };

    println!(
        "bench_core: engine scaling on the paper workload \
         ({} matrix, {steps} steps, min of {reps})\n",
        if smoke { "smoke" } else { "paper" }
    );

    let mut cells = Vec::new();
    for &n in sizes {
        let trace = paper_trace(n, steps, 9);
        let params = Params::paper_section7(n);

        let (full_ms, full_fp) = time_engine(
            || {
                let c = Cluster::new(params, 1);
                c.check_invariants().expect("fresh cluster invariants");
                c
            },
            &trace,
            reps,
        );
        // Re-run once more to invariant-check the *final* state (the
        // timed closure only sees the fresh one).
        {
            let mut c = Cluster::new(params, 1);
            let mut replay = trace.replay();
            let mut events = Vec::new();
            for t in 0..steps {
                replay.events_at(t, &mut events);
                c.step(&events);
            }
            c.check_invariants().expect("final cluster invariants");
            assert_eq!(fingerprint(&c), full_fp, "verification run diverged");
        }

        let (simple_ms, simple_fp) = time_engine(|| SimpleCluster::new(params, 1), &trace, reps);
        {
            let mut c = SimpleCluster::new(params, 1);
            let mut replay = trace.replay();
            let mut events = Vec::new();
            for t in 0..steps {
                replay.events_at(t, &mut events);
                c.step(&events);
            }
            c.check_invariants().expect("final simple invariants");
            assert_eq!(fingerprint(&c), simple_fp, "verification run diverged");
        }

        println!(
            "  n={n:<5} full {full_ms:>10.2} ms  ({full_fp})   simple {simple_ms:>9.2} ms  \
             ({simple_fp})"
        );
        if !smoke && n == 4096 {
            assert!(
                full_ms < 60_000.0,
                "full model at n=4096 must finish 500 steps in < 60 s, took {full_ms:.0} ms"
            );
        }

        let ms3 = |x: f64| Json::Float((x * 1000.0).round() / 1000.0);
        cells.push(Json::Obj(vec![
            ("n".into(), (n as u64).to_json()),
            ("full_ms".into(), ms3(full_ms)),
            ("full_checksum".into(), full_fp.to_json()),
            ("simple_ms".into(), ms3(simple_ms)),
            ("simple_checksum".into(), simple_fp.to_json()),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench".into(), "core".to_json()),
        (
            "matrix".into(),
            if smoke { "smoke" } else { "paper" }.to_json(),
        ),
        ("steps".into(), (steps as u64).to_json()),
        ("reps".into(), (reps as u64).to_json()),
        ("sizes".into(), Json::Arr(cells)),
    ]);
    std::fs::write(&out, doc.render_pretty()).expect("JSON written");
    println!("\nwrote {out}");
}
