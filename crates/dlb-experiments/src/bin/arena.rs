//! Balancer arena: the trigger rule vs the literature, one league table.
//!
//! Every contender replays the same §7 phase workloads on a hypercube-
//! sized network, survives the same frozen-crash fault plan, and is
//! scored on balance quality (max/mean ratio), balancing cost (ops,
//! migrated packets, messages) and convergence time.  The trigger rule's
//! cost is additionally compared against its Lemma 6 budget
//! (`cost_vs_l6`; 0.000 for contenders without decrease simulations).
//!
//! Usage: `cargo run --release -p dlb-experiments --bin arena
//!         [--n 64] [--steps 500] [--runs 20] [--seed 61] [--jobs N]
//!         [--out results/arena.csv] [--svg results/arena.svg]
//!         [--trace results/arena.jsonl] [--smoke]`
//!
//! `--smoke` shrinks the league (n=16, 120 steps, 4 runs) and writes to
//! `results/arena_smoke.{csv,svg}` so the `arena-golden` CI job can
//! drift-gate it in seconds.  Output is byte-identical for every
//! `--jobs` value.

use dlb_baselines::{
    Diffusion, DimensionExchange, DynamicAveraging, LocallyOptimal, NoBalance, Quasirandom,
    WorkStealing,
};
use dlb_core::{Cluster, Params, SimpleCluster};
use dlb_experiments::arena::{
    league_csv_rows, run_league, ArenaConfig, Contender, DEFAULT_CONV_THRESHOLD, LEAGUE_HEADERS,
};
use dlb_experiments::args::Args;
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::quality::paper_trace;
use dlb_experiments::report::{render_table, write_csv};
use dlb_experiments::svg::{write_chart, ChartConfig, Series};
use dlb_faults::{CrashEvent, CrashMode, FaultPlan};
use dlb_net::Topology;
use dlb_theory::CostBounds;
use dlb_trace::{FileSink, TraceSink};

fn contenders(n: usize, params: Params) -> Vec<Contender> {
    let dim = n.trailing_zeros();
    assert_eq!(
        1usize << dim,
        n,
        "arena n must be a power of two (hypercube)"
    );
    let cube = move || Topology::Hypercube { dim };
    vec![
        Contender::new("spaa93-full", move |seed| {
            Box::new(Cluster::new(params, seed))
        }),
        Contender::new("spaa93-simple", move |seed| {
            Box::new(SimpleCluster::new(params, seed))
        }),
        Contender::new("quasirandom", move |_| Box::new(Quasirandom::new(cube()))),
        Contender::new("dynamic-averaging", move |seed| {
            Box::new(DynamicAveraging::new(cube(), seed))
        }),
        Contender::new("locally-optimal", move |_| {
            Box::new(LocallyOptimal::new(cube()))
        }),
        Contender::new("dimension-exchange", move |_| {
            Box::new(DimensionExchange::new(cube()))
        }),
        Contender::new("diffusion", move |_| Box::new(Diffusion::new(cube(), 0.2))),
        Contender::new("work-stealing", move |seed| {
            Box::new(WorkStealing::new(n, seed))
        }),
        Contender::new("no-balance", move |_| Box::new(NoBalance::new(n))),
    ]
}

/// The arena's fault plan: two frozen crashes, staggered, the first
/// recovering mid-run — identical for every contender.
fn fault_plan(n: usize, steps: usize) -> FaultPlan {
    FaultPlan {
        seed: 13,
        crash_mode: CrashMode::Frozen,
        crashes: vec![
            CrashEvent {
                proc: n / 4,
                at: (steps / 4) as u64,
                recover_at: Some((3 * steps / 4) as u64),
            },
            CrashEvent {
                proc: 3 * n / 4,
                at: (steps / 2) as u64,
                recover_at: None,
            },
        ],
        ..FaultPlan::default()
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let (def_n, def_steps, def_runs, def_out, def_svg) = if smoke {
        (
            16,
            120,
            4,
            "results/arena_smoke.csv",
            "results/arena_smoke.svg",
        )
    } else {
        (64, 500, 20, "results/arena.csv", "results/arena.svg")
    };
    let n: usize = args.get("n", def_n);
    let steps: usize = args.get("steps", def_steps);
    let runs: usize = args.get("runs", def_runs);
    let seed: u64 = args.get("seed", 61);
    let jobs: usize = args.get("jobs", default_jobs());
    let out: String = args.get("out", def_out.to_string());
    let svg: String = args.get("svg", def_svg.to_string());
    let trace: Option<String> = args.has("trace").then(|| args.get("trace", String::new()));

    let params = Params::new(n, 1, 1.1, 4).expect("valid trigger params");
    let cfg = ArenaConfig {
        n,
        steps,
        runs,
        seed,
        warmup_fraction: 0.2,
        conv_threshold: DEFAULT_CONV_THRESHOLD,
        faults: Some(fault_plan(n, steps)),
        jobs,
    };
    let entrants = contenders(n, params);

    println!(
        "Balancer arena: {} contenders, {n} procs (hypercube), {steps} steps, {runs} runs, \
         2 frozen crashes\n",
        entrants.len()
    );
    let bounds = CostBounds::for_params(params.algo());
    let c = params.c_borrow() as u64;
    let lemma6_budget = bounds.lemma6_upper(2 * c, c, 64);
    match lemma6_budget {
        Some(budget) => println!(
            "Lemma 6 budget: {budget} balance ops per decrease simulation \
             (x = 2C = {}, C = {c})",
            2 * c
        ),
        None => println!("Lemma 6 budget: out of domain for these parameters"),
    }

    let result = run_league(
        &cfg,
        &entrants,
        |s| paper_trace(n, steps, s),
        trace.is_some(),
    );
    let rows = league_csv_rows(&result.rows, lemma6_budget);
    println!("\n{}", render_table(&LEAGUE_HEADERS, &rows));
    println!(
        "cost_vs_l6: measured ops / (decrease sims x Lemma 6 budget); 0.000 = no decrease sims."
    );

    write_csv(&out, &LEAGUE_HEADERS, &rows).expect("CSV written");
    println!("wrote {out}");

    let series: Vec<Series> = result
        .rows
        .iter()
        .map(|row| Series::from_ys(&row.label, &row.ratio_curve))
        .collect();
    let chart = ChartConfig {
        title: format!("Arena: max/mean load ratio over time ({n} procs, {runs} runs)"),
        x_label: "step".into(),
        y_label: "max/mean load".into(),
        ..ChartConfig::default()
    };
    write_chart(&svg, &chart, &series).expect("SVG written");
    println!("wrote {svg}");

    if let Some(path) = trace {
        let mut sink = FileSink::create(std::path::Path::new(&path)).expect("trace file");
        for ev in &result.events {
            sink.record(ev);
        }
        sink.flush();
        println!("wrote {path} ({} events)", result.events.len());
    }
}
