//! Theorems 1–3: FIX tables, network-size-independent limits and the
//! convergence of `G^t(1)`, compared against the integer-packet simulator.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin thm_bounds
//!         [--runs 40] [--ops 300] [--out results/thm_bounds.csv]`

use dlb_core::one_proc::mean_ratio_after_ops;
use dlb_core::Params;
use dlb_experiments::args::Args;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_theory::{AlgoParams, TheoremBounds};

fn main() {
    let args = Args::from_env();
    let runs: usize = args.get("runs", 40);
    let ops: u64 = args.get("ops", 300);
    let out: String = args.get("out", "results/thm_bounds.csv".to_string());

    let grid: Vec<(usize, usize, f64)> = vec![
        (16, 1, 1.1),
        (64, 1, 1.1),
        (64, 1, 1.8),
        (64, 4, 1.1),
        (64, 4, 1.8),
        (256, 2, 1.3),
        (1024, 8, 2.0),
    ];

    let mut rows = Vec::new();
    for &(n, delta, f) in &grid {
        let algo = AlgoParams::new(n, delta, f).expect("grid is valid");
        let tb = TheoremBounds::for_params(&algo);
        let params = Params::new(n, delta, f, 4).expect("valid");
        let empirical = mean_ratio_after_ops(params, ops, runs, 10_000, 42);
        let g_t = algo.g_iter(1.0, ops as usize);
        rows.push(vec![
            n.to_string(),
            delta.to_string(),
            format!("{f:.2}"),
            f3(tb.fix),
            f3(tb.fix_limit),
            f3(tb.fix_inv),
            f3(tb.fix_inv_limit),
            f3(g_t),
            f3(empirical),
        ]);
    }

    let headers = vec![
        "n",
        "delta",
        "f",
        "FIX",
        "lim(Thm2)",
        "FIX(1/f)",
        "lim(1/f)",
        "G^t(1)",
        "measured",
    ];
    println!("Theorems 1-3: fixed points, limits and measured producer/other load ratio");
    println!("(measured: one-processor-generator model, {runs} runs x {ops} balancing ops)\n");
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape: measured ≈ G^t(1) ≈ FIX ≤ lim(Thm2); FIX(1/f) ≥ lim(1/f).");

    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
