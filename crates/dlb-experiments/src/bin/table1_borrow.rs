//! Table 1: borrow statistics (total borrow, remote borrow, borrow fail,
//! decrease sim) for `C ∈ {4, 8, 16, 32}` on the §7 workload with
//! `f = 1.1`, `δ = 1`, under both exchange policies.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin table1_borrow
//!         [--n 64] [--steps 500] [--runs 100] [--jobs N] [--smoke]`
//!
//! `--smoke` shrinks the matrix (n=16, 80 steps, 8 runs) and writes to
//! `results/table1_smoke.csv` so CI can golden-gate it in seconds
//! without touching the paper-scale `results/table1.csv`.

use dlb_core::ExchangePolicy;
use dlb_experiments::args::Args;
use dlb_experiments::parallel::default_jobs;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_experiments::table1::table1_row;

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let (def_n, def_steps, def_runs, def_out) = if smoke {
        (16, 80, 8, "results/table1_smoke.csv")
    } else {
        (64, 500, 100, "results/table1.csv")
    };
    let n: usize = args.get("n", def_n);
    let steps: usize = args.get("steps", def_steps);
    let runs: usize = args.get("runs", def_runs);
    let jobs: usize = args.get("jobs", default_jobs());
    let out: String = args.get("out", def_out.to_string());

    println!(
        "Table 1: borrow statistics vs C, per processor per run (f = 1.1, delta = 1, {n} procs, \
         {steps} steps, {runs} runs)\n"
    );
    let mut csv_rows = Vec::new();
    for policy in [ExchangePolicy::Strict, ExchangePolicy::Aggressive] {
        let mut rows = Vec::new();
        for c in [4usize, 8, 16, 32] {
            let row = table1_row(n, steps, runs, c, policy, 31, jobs);
            rows.push(vec![
                c.to_string(),
                f3(row.total_borrow),
                f3(row.remote_borrow),
                f3(row.borrow_fail),
                f3(row.decrease_sim),
            ]);
            csv_rows.push(vec![
                format!("{policy:?}"),
                c.to_string(),
                f3(row.total_borrow),
                f3(row.remote_borrow),
                f3(row.borrow_fail),
                f3(row.decrease_sim),
            ]);
        }
        println!("exchange policy: {policy:?}");
        println!(
            "{}",
            render_table(
                &[
                    "C",
                    "total borrow",
                    "remote borrow",
                    "borrow fail",
                    "decrease sim"
                ],
                &rows
            )
        );
    }
    println!("Expected shape (paper, C=4..32): total borrow ~constant (~108);");
    println!("remote borrow, borrow fail and decrease sim collapse as C grows.");
    write_csv(
        &out,
        &[
            "policy",
            "C",
            "total_borrow",
            "remote_borrow",
            "borrow_fail",
            "decrease_sim",
        ],
        &csv_rows,
    )
    .expect("CSV written");
    println!("\nwrote {out}");
}
