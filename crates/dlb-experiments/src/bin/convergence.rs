//! Convergence speed of the fixed-point iteration: the contraction rate
//! |G'(FIX)| predicts how many balancing operations the system needs to
//! reach its steady imbalance, cross-checked against the iterated
//! operator and the integer-packet simulator.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin convergence
//!         [--eps 1e-4]`

use dlb_core::one_proc::mean_ratio_after_ops;
use dlb_core::Params;
use dlb_experiments::args::Args;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_theory::operators::fix;
use dlb_theory::schedule::{
    contraction_rate, measured_convergence_steps, predicted_convergence_steps,
};

fn main() {
    let args = Args::from_env();
    let eps: f64 = args.get("eps", 1e-4);
    let out: String = args.get("out", "results/convergence.csv".to_string());

    let grid: Vec<(usize, usize, f64)> = vec![
        (16, 1, 1.1),
        (64, 1, 1.1),
        (64, 1, 1.8),
        (64, 4, 1.1),
        (64, 4, 1.8),
        (256, 2, 1.3),
        (1024, 8, 2.0),
    ];
    println!("Convergence of G^t(1) to FIX (relative eps = {eps})\n");
    let mut rows = Vec::new();
    for &(n, delta, f) in &grid {
        let rate = contraction_rate(n, delta, f);
        let predicted = predicted_convergence_steps(n, delta, f, eps);
        let measured = measured_convergence_steps(n, delta, f, eps);
        // Empirical: simulate until `measured` ops and check proximity.
        let params = Params::new(n, delta, f, 4).expect("valid");
        let sim_runs = if n > 256 { 5 } else { 20 };
        let empirical = mean_ratio_after_ops(params, measured as u64 + 5, sim_runs, 10_000, 7);
        let fx = fix(n, delta, f);
        rows.push(vec![
            n.to_string(),
            delta.to_string(),
            format!("{f:.2}"),
            f3(rate),
            predicted.to_string(),
            measured.to_string(),
            f3(fx),
            f3(empirical),
        ]);
    }
    let headers = vec![
        "n",
        "delta",
        "f",
        "|G'(FIX)|",
        "predicted t",
        "measured t",
        "FIX",
        "sim ratio",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape: predicted ≈ measured; the rate (and hence convergence");
    println!("time) is governed by delta and f, not by n — the paper's locality claim.");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
