//! Closed-loop speedup: the motivation of §1 measured directly.  A
//! branching-process computation (a random task tree, as in backtrack
//! search / branch & bound) is rooted on one processor; every processor
//! consumes one packet per step *if it has one*.  The makespan with the
//! SPAA'93 balancer versus without balancing shows how much wall time the
//! algorithm buys.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin closed_loop
//!         [--roots 400] [--runs 10]`

use dlb_baselines::{NoBalance, Rsu91, WorkStealing};
use dlb_core::{Cluster, LoadBalancer, Params, SimpleCluster};
use dlb_experiments::args::Args;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_workload::branching::{run_branching, Offspring};

fn mean_makespan<B: LoadBalancer>(
    make: impl Fn(u64) -> B,
    offspring: &Offspring,
    roots: u32,
    runs: usize,
) -> (f64, f64) {
    let mut makespan = 0.0;
    let mut processed = 0.0;
    for r in 0..runs {
        let mut balancer = make(r as u64);
        let out = run_branching(&mut balancer, offspring, roots, 5_000_000, 100 + r as u64);
        assert!(out.drained, "run {r} did not drain");
        makespan += out.makespan as f64;
        processed += out.processed as f64;
    }
    (makespan / runs as f64, processed / runs as f64)
}

fn main() {
    let args = Args::from_env();
    let roots: u32 = args.get("roots", 400);
    let runs: usize = args.get("runs", 10);
    let out: String = args.get("out", "results/closed_loop.csv".to_string());

    println!(
        "Closed-loop branching computation ({roots} roots on processor 0, \
         mean offspring 0.99, {runs} runs)\n"
    );
    let offspring = Offspring::bernoulli(2, 0.495);

    let mut rows = Vec::new();
    for n in [4usize, 8, 16] {
        let params = Params::new(n, 2, 1.3, 4).expect("valid");
        let (none_ms, none_proc) = mean_makespan(|_| NoBalance::new(n), &offspring, roots, runs);
        let base = none_ms;
        let (simple_ms, _) =
            mean_makespan(|s| SimpleCluster::new(params, s), &offspring, roots, runs);
        let (full_ms, _) = mean_makespan(|s| Cluster::new(params, s), &offspring, roots, runs);
        let (rsu_ms, _) = mean_makespan(|s| Rsu91::new(n, s), &offspring, roots, runs);
        let (steal_ms, _) = mean_makespan(|s| WorkStealing::new(n, s), &offspring, roots, runs);
        rows.push(vec![
            n.to_string(),
            f3(none_proc),
            f3(none_ms),
            f3(rsu_ms),
            f3(steal_ms),
            f3(simple_ms),
            f3(full_ms),
            f3(base / simple_ms),
            f3(base / full_ms),
        ]);
    }
    let headers = vec![
        "n",
        "tree size",
        "makespan none",
        "makespan rsu91",
        "makespan stealing",
        "makespan simple",
        "makespan full",
        "speedup simple",
        "speedup full",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape: speedup grows with n towards the ideal n× (the tree is");
    println!("serial without balancing since all packets sit on processor 0).");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
