//! Replays a `dlb-trace` JSONL trace into derived series: cumulative
//! balancing operations per step against the Lemma 5/6 cost bounds,
//! per-step max/mean load ratio, and migration volume.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin trace_analyze --
//!         --in trace.jsonl [--out-csv results/trace.csv]
//!         [--svg results/trace.svg] [--check]`
//!
//! `--check` validates the schema instead of analysing: every line must
//! parse as a known event *and* re-render byte-identically (the CI
//! trace-schema gate runs this).

use std::fs::File;
use std::io::BufReader;

use dlb_experiments::analyze::{analyze, check_lines, csv_rows, parse_lines, CSV_HEADERS};
use dlb_experiments::args::Args;
use dlb_experiments::report::{render_table, write_csv};
use dlb_experiments::svg::{write_chart, ChartConfig, Series};

fn main() {
    let args = Args::from_env();
    let input: String = args.get("in", String::new());
    assert!(!input.is_empty(), "required: --in <trace.jsonl>");
    let reader = || BufReader::new(File::open(&input).unwrap_or_else(|e| panic!("{input}: {e}")));

    if args.flag("check") {
        match check_lines(reader()) {
            Ok(n) => {
                println!("{input}: {n} lines, schema OK (parse + byte-stable re-render)");
                return;
            }
            Err(e) => {
                eprintln!("{input}: schema check FAILED\n{e}");
                std::process::exit(1);
            }
        }
    }

    let events = parse_lines(reader()).unwrap_or_else(|e| panic!("{input}: {e}"));
    let runs = analyze(&events);
    println!("{input}: {} events, {} run(s)\n", events.len(), runs.len());

    let mut summary = Vec::new();
    let mut all_rows = Vec::new();
    for (idx, run) in runs.iter().enumerate() {
        let label = run.info.as_ref().map_or("-".to_string(), |i| {
            format!("{} n={} d={} f={} C={}", i.strategy, i.n, i.delta, i.f, i.c)
        });
        let last_ratio = run
            .steps
            .iter()
            .rev()
            .find_map(|r| run.max_over_mean(r))
            .map_or("-".to_string(), |r| format!("{r:.3}"));
        summary.push(vec![
            idx.to_string(),
            label,
            run.balance_initiated.to_string(),
            run.metrics.balance_ops.to_string(),
            run.packets_migrated.to_string(),
            run.faults.to_string(),
            last_ratio,
        ]);
        all_rows.extend(csv_rows(idx, run));
    }
    println!(
        "{}",
        render_table(
            &[
                "run",
                "config",
                "balance events",
                "metrics.balance_ops",
                "migrated",
                "faults",
                "final max/mean"
            ],
            &summary,
        )
    );

    if args.has("out-csv") {
        let out: String = args.get("out-csv", String::new());
        write_csv(&out, &CSV_HEADERS, &all_rows).expect("CSV written");
        println!("wrote {out}");
    }

    if args.has("svg") {
        let out: String = args.get("svg", String::new());
        // Chart the first run that has per-step data.
        let run = runs
            .iter()
            .find(|r| !r.steps.is_empty())
            .expect("no per-step events to chart");
        let mut series = vec![Series {
            name: "ops (cumulative)".into(),
            points: run
                .steps
                .iter()
                .map(|r| (r.step as f64, r.ops_cum as f64))
                .collect(),
        }];
        let ratio: Vec<(f64, f64)> = run
            .steps
            .iter()
            .filter_map(|r| run.max_over_mean(r).map(|v| (r.step as f64, v)))
            .collect();
        if !ratio.is_empty() {
            series.push(Series {
                name: "max/mean load".into(),
                points: ratio,
            });
        }
        write_chart(
            &out,
            &ChartConfig {
                title: "trace replay: balancing ops and load ratio".into(),
                x_label: "step".into(),
                y_label: "ops / ratio".into(),
                ..Default::default()
            },
            &series,
        )
        .expect("SVG written");
        println!("wrote {out}");
    }
}
