//! §6 cost analysis: measured balancing operations of the decrease
//! simulation versus the Lemma 5 lower/upper bounds and the improved
//! Lemma 6 bound, across `f`, `δ` and the decrease ratio `c/x`.
//!
//! Usage: `cargo run --release -p dlb-experiments --bin lemma_bounds
//!         [--n 64] [--runs 50] [--x 1000]`

use dlb_core::one_proc::mean_decrease_ops;
use dlb_core::Params;
use dlb_experiments::args::Args;
use dlb_experiments::report::{f3, render_table, write_csv};
use dlb_theory::CostBounds;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 64);
    let runs: usize = args.get("runs", 50);
    let x: u64 = args.get("x", 1000);
    let out: String = args.get("out", "results/lemma_bounds.csv".to_string());

    let grid: Vec<(usize, f64, u64)> = vec![
        (1, 1.05, x / 2),
        (1, 1.1, x / 4),
        (1, 1.1, x / 2),
        (1, 1.1, 3 * x / 4),
        (1, 1.3, x / 2),
        (1, 1.8, x / 2),
        (2, 1.1, x / 2),
        (4, 1.1, x / 2),
        (8, 1.1, x / 2),
    ];

    println!("Lemmas 5/6: balancing operations to simulate a decrease of c from x = {x}");
    println!("({n} processors, {runs} runs per row)\n");

    let mut rows = Vec::new();
    for &(delta, f, c) in &grid {
        let params = Params::new(n, delta, f, 4).expect("grid valid");
        let cb = CostBounds::for_params(params.algo());
        let measured = mean_decrease_ops(params, x, c, runs, 5);
        let fmt = |v: Option<u64>| v.map_or("-".to_string(), |t| t.to_string());
        rows.push(vec![
            delta.to_string(),
            format!("{f:.2}"),
            c.to_string(),
            fmt(cb.lemma5_lower(x, c)),
            f3(measured),
            fmt(cb.lemma6_upper(x, c, 100_000)),
            fmt(cb.lemma5_upper(x, c)),
        ]);
    }
    let headers = vec![
        "delta",
        "f",
        "c",
        "lemma5 lower",
        "measured",
        "lemma6 upper",
        "lemma5 upper",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape: lower <= measured <= upper; the Lemma 6 bound tighter than");
    println!("Lemma 5; cost very sensitive to f, nearly independent of delta and of x at");
    println!("fixed c/x ('-' marks configurations outside a bound's validity domain).");
    write_csv(&out, &headers, &rows).expect("CSV written");
    println!("\nwrote {out}");
}
