//! Dependency-free SVG line charts for the figure binaries.
//!
//! Each experiment binary can emit the paper's figures as standalone SVG
//! files (`--svg results/figX.svg`) in addition to CSV: multi-series line
//! charts with axes, ticks, and a legend.  The writer is deliberately
//! small — axis scaling, polyline generation and text escaping — but
//! fully tested, since broken SVG fails silently in viewers.

use std::fmt::Write as _;
use std::path::Path;

/// One named data series (x shared implicitly: sample index or explicit
/// x-values).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` samples, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from y-values at x = 0, 1, 2, …
    pub fn from_ys(name: &str, ys: &[f64]) -> Self {
        Series {
            name: name.to_string(),
            points: ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        }
    }
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Chart title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Total width in pixels.
    pub width: u32,
    /// Total height in pixels.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 720,
            height: 420,
        }
    }
}

const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

/// Escapes text for SVG/XML content.
pub fn escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '&' => "&amp;".chars().collect::<Vec<_>>(),
            '<' => "&lt;".chars().collect(),
            '>' => "&gt;".chars().collect(),
            '"' => "&quot;".chars().collect(),
            '\'' => "&apos;".chars().collect(),
            other => vec![other],
        })
        .collect()
}

/// Renders a multi-series line chart to an SVG string.
///
/// # Panics
///
/// Panics if no series contains any point.
pub fn line_chart(config: &ChartConfig, series: &[Series]) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!all.is_empty(), "need at least one data point");
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    // Pad the y-range slightly and include zero when close.
    let pad = (y_max - y_min) * 0.05;
    let y_lo = if y_min >= 0.0 && y_min < (y_max - y_min) * 0.5 {
        0.0
    } else {
        y_min - pad
    };
    let y_hi = y_max + pad;

    let (w, h) = (config.width as f64, config.height as f64);
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}" font-family="sans-serif" font-size="12">"#,
        config.width, config.height, config.width, config.height
    );
    let _ = writeln!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Title.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        escape(&config.title)
    );
    // Axes.
    let _ = writeln!(
        out,
        r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h,
        MARGIN_L + plot_w,
        MARGIN_T + plot_h
    );
    let _ = writeln!(
        out,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h
    );
    // Ticks: 5 per axis.
    for k in 0..=5 {
        let fx = x_min + (x_max - x_min) * k as f64 / 5.0;
        let fy = y_lo + (y_hi - y_lo) * k as f64 / 5.0;
        let px = sx(fx);
        let py = sy(fy);
        let _ = writeln!(
            out,
            r#"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="black"/><text x="{px}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 5.0,
            MARGIN_T + plot_h + 20.0,
            format_tick(fx)
        );
        let _ = writeln!(
            out,
            r#"<line x1="{}" y1="{py}" x2="{MARGIN_L}" y2="{py}" stroke="black"/><text x="{}" y="{}" text-anchor="end">{}</text>"#,
            MARGIN_L - 5.0,
            MARGIN_L - 8.0,
            py + 4.0,
            format_tick(fy)
        );
    }
    // Axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 8.0,
        escape(&config.x_label)
    );
    let _ = writeln!(
        out,
        r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(&config.y_label)
    );
    // Series.
    for (k, s) in series.iter().enumerate() {
        if s.points.is_empty() {
            continue;
        }
        let colour = PALETTE[k % PALETTE.len()];
        let path: String = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            r#"<polyline points="{path}" fill="none" stroke="{colour}" stroke-width="1.5"/>"#
        );
        // Legend entry.
        let ly = MARGIN_T + 16.0 * k as f64;
        let lx = MARGIN_L + plot_w + 10.0;
        let _ = writeln!(
            out,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{colour}" stroke-width="2"/><text x="{}" y="{}">{}</text>"#,
            lx + 18.0,
            lx + 24.0,
            ly + 4.0,
            escape(&s.name)
        );
    }
    out.push_str("</svg>\n");
    out
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Writes a chart to a file, creating parent directories.
pub fn write_chart<P: AsRef<Path>>(
    path: P,
    config: &ChartConfig,
    series: &[Series],
) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, line_chart(config, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic_config() -> ChartConfig {
        ChartConfig {
            title: "t < 5 & \"quoted\"".into(),
            x_label: "time".into(),
            y_label: "load".into(),
            ..Default::default()
        }
    }

    #[test]
    fn escape_covers_xml_specials() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn chart_is_wellformed_and_contains_series() {
        let series = vec![
            Series::from_ys("mean", &[1.0, 2.0, 3.0, 2.5]),
            Series::from_ys("max", &[2.0, 3.0, 4.0, 3.5]),
        ];
        let svg = line_chart(&basic_config(), &series);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("mean") && svg.contains("max"));
        // The title is escaped.
        assert!(svg.contains("t &lt; 5 &amp; &quot;quoted&quot;"));
        // Tags balance.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let svg = line_chart(&basic_config(), &[Series::from_ys("flat", &[5.0, 5.0])]);
        assert!(svg.contains("polyline"));
        assert!(!svg.contains("NaN") && !svg.contains("inf"), "{svg}");
    }

    #[test]
    fn single_point_is_handled() {
        let series = vec![Series {
            name: "dot".into(),
            points: vec![(3.0, 7.0)],
        }];
        let svg = line_chart(&basic_config(), &series);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "at least one data point")]
    fn empty_chart_panics() {
        line_chart(
            &basic_config(),
            &[Series {
                name: "empty".into(),
                points: vec![],
            }],
        );
    }

    #[test]
    fn write_chart_creates_directories() {
        let dir = std::env::temp_dir().join("dlb_svg_test");
        let path = dir.join("sub").join("chart.svg");
        write_chart(&path, &basic_config(), &[Series::from_ys("s", &[1.0, 2.0])]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("</svg>"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
