//! Table 1: borrow-machinery statistics as a function of the borrow
//! limit `C` (per-run averages over the §7 workload, `f = 1.1`, `δ = 1`).

use crate::parallel::{par_map, stream_seed, StreamId};
use crate::quality::paper_trace;
use dlb_core::{Cluster, ExchangePolicy, LoadBalancer, Metrics, Params};

/// One row of Table 1.
///
/// Counters are *per-processor per-run* averages: dividing the run totals
/// by `n` reproduces the paper's magnitudes almost exactly (e.g. total
/// borrow ≈ 108, remote borrow ≈ 4 at `C = 4`), so that is evidently the
/// unit Table 1 uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Borrow limit `C`.
    pub c: usize,
    /// Borrowing operations ("total borrow").
    pub total_borrow: f64,
    /// Remote exchanges of markers against generator packets
    /// ("remote borrow").
    pub remote_borrow: f64,
    /// Invocations of the §4 reduce-borrow procedure ("borrow fail").
    pub borrow_fail: f64,
    /// Initiated decrease simulations ("decrease sim").
    pub decrease_sim: f64,
}

/// Computes one row of Table 1 over `jobs` workers (per-run metrics are
/// reduced in run-index order, so the row is identical for any `jobs`).
pub fn table1_row(
    n: usize,
    steps: usize,
    runs: usize,
    c: usize,
    policy: ExchangePolicy,
    base_seed: u64,
    jobs: usize,
) -> Table1Row {
    let params = Params::new(n, 1, 1.1, c)
        .expect("paper parameters valid")
        .with_exchange(policy);
    let per_run: Vec<Metrics> = par_map(jobs, runs, |r| {
        let trace = paper_trace(
            n,
            steps,
            stream_seed(base_seed, r as u64, StreamId::Workload),
        );
        let mut cluster =
            Cluster::new(params, stream_seed(base_seed, r as u64, StreamId::Balancer));
        crate::quality::run_on_trace(&mut cluster, &trace);
        *cluster.metrics()
    });
    let mut acc = Table1Row {
        c,
        total_borrow: 0.0,
        remote_borrow: 0.0,
        borrow_fail: 0.0,
        decrease_sim: 0.0,
    };
    for m in &per_run {
        acc.total_borrow += m.total_borrow as f64;
        acc.remote_borrow += m.remote_borrow as f64;
        acc.borrow_fail += m.borrow_fail as f64;
        acc.decrease_sim += m.decrease_sim as f64;
    }
    let scale = runs as f64 * n as f64;
    acc.total_borrow /= scale;
    acc.remote_borrow /= scale;
    acc.borrow_fail /= scale;
    acc.decrease_sim /= scale;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_c_reduces_remote_operations() {
        // Table 1's headline: total borrows stay roughly constant while
        // remote borrows / decrease sims collapse as C grows.
        let small_c = table1_row(16, 200, 4, 2, ExchangePolicy::Strict, 11, 1);
        let large_c = table1_row(16, 200, 4, 16, ExchangePolicy::Strict, 11, 1);
        assert!(small_c.total_borrow > 0.0);
        assert!(
            large_c.remote_borrow <= small_c.remote_borrow,
            "remote: C=2 {} vs C=16 {}",
            small_c.remote_borrow,
            large_c.remote_borrow
        );
        let rel_diff =
            (large_c.total_borrow - small_c.total_borrow).abs() / small_c.total_borrow.max(1.0);
        assert!(
            rel_diff < 0.6,
            "total borrow roughly stable: {small_c:?} vs {large_c:?}"
        );
    }

    #[test]
    fn rows_are_deterministic() {
        let a = table1_row(8, 100, 3, 4, ExchangePolicy::Strict, 5, 1);
        let b = table1_row(8, 100, 3, 4, ExchangePolicy::Strict, 5, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_rows_are_bit_identical_to_sequential() {
        let seq = table1_row(8, 100, 5, 4, ExchangePolicy::Strict, 5, 1);
        for jobs in [2, 4] {
            assert_eq!(
                seq,
                table1_row(8, 100, 5, 4, ExchangePolicy::Strict, 5, jobs)
            );
        }
    }
}
