//! Replay of `dlb-trace` JSONL traces into derived series.
//!
//! A trace is self-describing: each `RunStarted` event carries the
//! parameter triple, so the analysis can rebuild the §6 cost bounds
//! (Lemmas 5/6) without access to the scenario that produced it.  The
//! `trace_analyze` binary drives this module; the logic lives here so it
//! is unit-testable against a live engine.
//!
//! Derived per-run series:
//!
//! * cumulative balancing operations per step (one `BalanceInitiated`
//!   event = one operation), compared against the Lemma 5 lower/upper
//!   and Lemma 6 bounds for the observed max-load decrease;
//! * per-step max/mean load ratio from `LoadSample` snapshots;
//! * cumulative migration volume from `PacketsMigrated`;
//! * the engine's full `Metrics`, reconstructed by summing `StepDelta`
//!   increments.

use std::collections::BTreeMap;
use std::io::BufRead;

use dlb_core::Metrics;
use dlb_theory::{AlgoParams, CostBounds};
use dlb_trace::TraceEvent;

/// The configuration a `RunStarted` event announced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// Run index within the scenario.
    pub run: u64,
    /// The run's RNG seed.
    pub seed: u64,
    /// Processor count.
    pub n: u64,
    /// Strategy name (e.g. `spaa93-cluster`).
    pub strategy: String,
    /// Neighbourhood size `δ`.
    pub delta: u64,
    /// Trigger factor `f`.
    pub f: f64,
    /// Borrow limit `C`.
    pub c: u64,
}

/// Aggregates accumulated for one logical step.
#[derive(Debug, Clone, Copy, Default)]
struct StepAccum {
    ops: u64,
    migrated: u64,
    load: Option<(u64, u64, u64)>, // (min, max, total); last sample wins
}

/// One per-step row of the derived series (cumulative counters).
#[derive(Debug, Clone, Copy)]
pub struct StepRow {
    /// Logical step.
    pub step: u64,
    /// Balancing operations up to and including this step.
    pub ops_cum: u64,
    /// Packets moved by balancing up to and including this step.
    pub migrated_cum: u64,
    /// Most recent `LoadSample` at this step, if any.
    pub load: Option<(u64, u64, u64)>,
}

/// Everything derived from one run's events.
#[derive(Debug, Clone)]
pub struct RunAnalysis {
    /// The announcing `RunStarted`, when the trace had one.
    pub info: Option<RunInfo>,
    /// `Metrics` reconstructed by summing `StepDelta` increments.
    pub metrics: Metrics,
    /// Total `BalanceInitiated` events (equals the engine's
    /// `balance_ops` counter for the synchronous clusters).
    pub balance_initiated: u64,
    /// Total packets moved (sum of `PacketsMigrated.count`).
    pub packets_migrated: u64,
    /// Fault / recovery event counts.
    pub faults: u64,
    /// Crash recoveries observed.
    pub recoveries: u64,
    /// Per-step derived series, in step order.
    pub steps: Vec<StepRow>,
}

impl RunAnalysis {
    fn new(info: Option<RunInfo>) -> Self {
        RunAnalysis {
            info,
            metrics: Metrics::new(),
            balance_initiated: 0,
            packets_migrated: 0,
            faults: 0,
            recoveries: 0,
            steps: Vec::new(),
        }
    }

    /// max/mean ratio of the last load sample at `row` (needs `n`).
    pub fn max_over_mean(&self, row: &StepRow) -> Option<f64> {
        let (_, max, total) = row.load?;
        let n = self.info.as_ref()?.n;
        if n == 0 || total == 0 {
            return None;
        }
        Some(max as f64 / (total as f64 / n as f64))
    }

    /// The §6 cost bounds for this run's parameters, when they are
    /// valid for `dlb-theory`.
    pub fn cost_bounds(&self) -> Option<CostBounds> {
        let info = self.info.as_ref()?;
        let params = AlgoParams::new(info.n as usize, info.delta as usize, info.f).ok()?;
        Some(CostBounds::for_params(&params))
    }
}

/// Parses every non-empty line of a JSONL trace.
pub fn parse_lines<R: BufRead>(reader: R) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", no + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_line(&line).map_err(|e| format!("line {}: {e}", no + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Validates that every line parses *and* re-renders byte-identically
/// (the CI trace-schema gate).  Returns the number of validated lines.
pub fn check_lines<R: BufRead>(reader: R) -> Result<usize, String> {
    let mut count = 0usize;
    for (no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", no + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_line(&line).map_err(|e| format!("line {}: {e}", no + 1))?;
        let back = ev.to_line();
        if back != line {
            return Err(format!(
                "line {}: not byte-stable\n  input:  {line}\n  output: {back}",
                no + 1
            ));
        }
        count += 1;
    }
    Ok(count)
}

/// Splits an event stream into runs (on `RunStarted`) and derives the
/// per-run series.  Events before the first `RunStarted` form an
/// anonymous run with `info: None`.
pub fn analyze(events: &[TraceEvent]) -> Vec<RunAnalysis> {
    let mut runs: Vec<(RunAnalysis, BTreeMap<u64, StepAccum>)> = Vec::new();
    for ev in events {
        if let TraceEvent::RunStarted {
            run,
            seed,
            n,
            strategy,
            delta,
            f,
            c,
        } = ev
        {
            runs.push((
                RunAnalysis::new(Some(RunInfo {
                    run: *run,
                    seed: *seed,
                    n: *n,
                    strategy: strategy.clone(),
                    delta: *delta,
                    f: *f,
                    c: *c,
                })),
                BTreeMap::new(),
            ));
            continue;
        }
        if runs.is_empty() {
            runs.push((RunAnalysis::new(None), BTreeMap::new()));
        }
        let (current, accum) = runs.last_mut().expect("pushed above");
        match ev {
            TraceEvent::BalanceInitiated { step, .. } => {
                current.balance_initiated += 1;
                accum.entry(*step).or_default().ops += 1;
            }
            TraceEvent::PacketsMigrated { step, count, .. } => {
                current.packets_migrated += count;
                accum.entry(*step).or_default().migrated += count;
            }
            TraceEvent::FaultInjected { .. } => current.faults += 1,
            TraceEvent::CrashRecovered { .. } => current.recoveries += 1,
            TraceEvent::StepDelta { counters, .. } => {
                for (name, v) in counters {
                    let base = current.metrics.get_field(name).unwrap_or(0);
                    current.metrics.set_field(name, base + v);
                }
            }
            TraceEvent::LoadSample {
                step,
                min,
                max,
                total,
            } => {
                accum.entry(*step).or_default().load = Some((*min, *max, *total));
            }
            // The schema-v2 serving events (`req`/`req_done`/`redirect`)
            // describe requests, not the balancing algorithm this
            // analysis reconstructs; `dlb serve` reports them itself.
            TraceEvent::MarkerMoved { .. }
            | TraceEvent::StepProfile { .. }
            | TraceEvent::RequestRouted { .. }
            | TraceEvent::RequestCompleted { .. }
            | TraceEvent::RequestsRedirected { .. }
            | TraceEvent::AcceptorHandoff { .. }
            | TraceEvent::ArenaContender { .. }
            | TraceEvent::RunFinished { .. } => {}
            TraceEvent::RunStarted { .. } => unreachable!("handled above"),
        }
    }
    runs.into_iter()
        .map(|(mut run, accum)| {
            let (mut ops, mut migrated) = (0u64, 0u64);
            run.steps = accum
                .into_iter()
                .map(|(step, a)| {
                    ops += a.ops;
                    migrated += a.migrated;
                    StepRow {
                        step,
                        ops_cum: ops,
                        migrated_cum: migrated,
                        load: a.load,
                    }
                })
                .collect();
            run
        })
        .collect()
}

/// CSV rows for one analysed run: cumulative ops and migration volume,
/// the max/mean load ratio, and the Lemma 5/6 bounds on the operations
/// needed for the max-load decrease observed so far (empty cells where
/// a bound's domain or the required context is missing).
pub fn csv_rows(run_idx: usize, run: &RunAnalysis) -> Vec<Vec<String>> {
    let bounds = run.cost_bounds();
    let x0 = run.steps.iter().find_map(|r| r.load.map(|(_, max, _)| max));
    let fmt = |v: Option<u64>| v.map_or(String::new(), |t| t.to_string());
    run.steps
        .iter()
        .map(|row| {
            let decrease = match (x0, row.load) {
                (Some(x0), Some((_, max, _))) => Some(x0.saturating_sub(max)),
                _ => None,
            };
            let bound =
                |f: &dyn Fn(&CostBounds, u64, u64) -> Option<u64>| match (&bounds, x0, decrease) {
                    (Some(b), Some(x0), Some(c)) if c > 0 && c < x0 => f(b, x0, c),
                    _ => None,
                };
            vec![
                run_idx.to_string(),
                row.step.to_string(),
                row.ops_cum.to_string(),
                row.migrated_cum.to_string(),
                row.load
                    .map_or(String::new(), |(_, max, _)| max.to_string()),
                run.max_over_mean(row)
                    .map_or(String::new(), |r| format!("{r:.4}")),
                fmt(bound(&|b, x, c| b.lemma5_lower(x, c))),
                fmt(bound(&|b, x, c| b.lemma6_upper(x, c, 100_000))),
                fmt(bound(&|b, x, c| b.lemma5_upper(x, c))),
            ]
        })
        .collect()
}

/// Header row matching [`csv_rows`].
pub const CSV_HEADERS: [&str; 9] = [
    "run",
    "step",
    "ops_cum",
    "migrated_cum",
    "max_load",
    "max_over_mean",
    "lemma5_lower",
    "lemma6_upper",
    "lemma5_upper",
];

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::{Cluster, LoadBalancer, LoadEvent, Params};
    use dlb_trace::BufferSink;
    use std::io::Cursor;

    fn traced_cluster_events(seed: u64, steps: usize) -> (Vec<TraceEvent>, Metrics, Vec<u64>) {
        let params = Params::paper_section7(8);
        let mut cluster = Cluster::with_initial_load(params, seed, 0);
        let buf = BufferSink::new();
        cluster.set_trace_sink(buf.handle());
        let events = vec![LoadEvent::Generate; 8];
        let mut trace = vec![TraceEvent::RunStarted {
            run: 0,
            seed,
            n: 8,
            strategy: "spaa93-cluster".into(),
            delta: params.delta() as u64,
            f: params.f(),
            c: params.c_borrow() as u64,
        }];
        for step in 0..steps {
            cluster.step(&events);
            let loads = cluster.loads();
            trace.push(TraceEvent::LoadSample {
                step: step as u64,
                min: *loads.iter().min().unwrap(),
                max: *loads.iter().max().unwrap(),
                total: loads.iter().sum(),
            });
        }
        trace.extend(buf.take());
        trace.push(TraceEvent::RunFinished { run: 0 });
        (trace, *cluster.metrics(), cluster.loads())
    }

    #[test]
    fn op_counts_match_engine_metrics_exactly() {
        // Satellite: trace_analyze op-counts equal the engine's
        // `balance_ops` on a fixed seed, and the StepDelta replay
        // reproduces the whole Metrics struct.
        let (trace, metrics, _) = traced_cluster_events(42, 200);
        let runs = analyze(&trace);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].balance_initiated, metrics.balance_ops);
        assert_eq!(runs[0].metrics, metrics);
        assert!(metrics.balance_ops > 0, "workload must balance");
    }

    #[test]
    fn jsonl_round_trip_preserves_analysis() {
        let (trace, metrics, _) = traced_cluster_events(7, 100);
        let text: String = trace.iter().map(|e| e.to_line() + "\n").collect();
        assert_eq!(check_lines(Cursor::new(text.clone())).unwrap(), trace.len());
        let parsed = parse_lines(Cursor::new(text)).unwrap();
        assert_eq!(parsed, trace);
        let runs = analyze(&parsed);
        assert_eq!(runs[0].metrics, metrics);
    }

    #[test]
    fn check_lines_rejects_garbage_and_unstable_lines() {
        assert!(check_lines(Cursor::new("not json\n")).is_err());
        // Valid JSON, but key order differs from the canonical rendering.
        let ev = TraceEvent::RunFinished { run: 3 };
        let line = ev.to_line();
        let spaced = line.replace(':', ": ");
        assert_ne!(line, spaced);
        assert!(check_lines(Cursor::new(spaced)).is_err());
        assert_eq!(check_lines(Cursor::new(line + "\n")).unwrap(), 1);
    }

    #[test]
    fn derived_series_accumulate_and_bounds_apply() {
        let info = TraceEvent::RunStarted {
            run: 0,
            seed: 1,
            n: 64,
            strategy: "test".into(),
            delta: 1,
            f: 1.1,
            c: 4,
        };
        let mut trace = vec![info];
        // A shrinking max load: 1000 → 600 over three sampled steps.
        for (step, max) in [(0u64, 1000u64), (1, 800), (2, 600)] {
            trace.push(TraceEvent::BalanceInitiated {
                step,
                initiator: 0,
                partners: vec![1],
                trigger: 1.2,
            });
            trace.push(TraceEvent::PacketsMigrated {
                step,
                initiator: 0,
                count: 10,
            });
            trace.push(TraceEvent::LoadSample {
                step,
                min: 0,
                max,
                total: 2 * max,
            });
        }
        let runs = analyze(&trace);
        let run = &runs[0];
        assert_eq!(run.steps.len(), 3);
        assert_eq!(run.steps[2].ops_cum, 3);
        assert_eq!(run.steps[2].migrated_cum, 30);
        let rows = csv_rows(0, run);
        assert_eq!(rows.len(), 3);
        // Step 0: no decrease yet, bound cells empty.
        assert!(rows[0][6].is_empty());
        // Step 2: decrease of 400 from x0 = 1000 — bounds present and
        // ordered lower <= lemma6 <= lemma5 upper.
        let lower: u64 = rows[2][6].parse().unwrap();
        let l6: u64 = rows[2][7].parse().unwrap();
        let upper: u64 = rows[2][8].parse().unwrap();
        assert!(lower <= l6 && l6 <= upper, "{lower} {l6} {upper}");
        // Ratio = max / (total / n) = 64 / 2.
        assert_eq!(rows[2][5], "32.0000");
    }

    #[test]
    fn events_before_run_start_form_anonymous_run() {
        let trace = vec![TraceEvent::StepDelta {
            step: 0,
            counters: vec![("generated".into(), 5)],
        }];
        let runs = analyze(&trace);
        assert_eq!(runs.len(), 1);
        assert!(runs[0].info.is_none());
        assert_eq!(runs[0].metrics.generated, 5);
        assert!(runs[0].cost_bounds().is_none());
    }
}
