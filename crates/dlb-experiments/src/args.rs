//! Minimal `--key value` argument parsing for the experiment binaries
//! (no external CLI dependency).  A `--name` followed by another
//! `--option` (or by nothing) is a boolean flag, equivalent to
//! `--name true`.

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments; unknown bare words are rejected.
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (used by tests).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                panic!("unexpected argument {key:?}; expected --key value pairs");
            };
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_string(), // bare flag, e.g. --smoke
            };
            values.insert(name.to_string(), value);
        }
        Args { values }
    }

    /// Returns `--name` parsed as `T`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value does not parse.
    pub fn get<T: FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => default,
            Some(raw) => match raw.parse() {
                Ok(v) => v,
                Err(e) => panic!("invalid value {raw:?} for --{name}: {e}"),
            },
        }
    }

    /// True when `--name` was supplied.
    pub fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// True when `--name` was supplied as a bare flag or with a truthy
    /// value (`true`/`1`/`yes`).
    pub fn flag(&self, name: &str) -> bool {
        matches!(
            self.values.get(name).map(String::as_str),
            Some("true" | "1" | "yes")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse_from(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_typed_values() {
        let a = args(&["--delta", "4", "--f", "1.8", "--out", "x.csv"]);
        assert_eq!(a.get("delta", 1usize), 4);
        assert!((a.get("f", 1.1f64) - 1.8).abs() < 1e-12);
        assert_eq!(a.get::<String>("out", "d".into()), "x.csv");
        assert_eq!(a.get("runs", 100usize), 100, "default used");
        assert!(a.has("delta") && !a.has("runs"));
    }

    #[test]
    fn bare_flags_parse_as_true() {
        let a = args(&["--smoke", "--jobs", "4", "--verbose"]);
        assert!(a.flag("smoke") && a.flag("verbose"));
        assert_eq!(a.get("jobs", 1usize), 4);
        assert!(!a.flag("jobs") && !a.flag("absent"));
        assert!(args(&["--smoke", "false"]).has("smoke"));
        assert!(!args(&["--smoke", "false"]).flag("smoke"));
    }

    #[test]
    #[should_panic(expected = "expected --key value")]
    fn bare_word_panics() {
        args(&["delta", "4"]);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_parse_panics() {
        let a = args(&["--delta", "abc"]);
        a.get("delta", 1usize);
    }
}
