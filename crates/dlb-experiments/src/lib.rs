//! Experiment harness regenerating every table and figure of the paper's
//! evaluation, plus the theory-validation tables and the ablations listed
//! in DESIGN.md.
//!
//! Each binary under `src/bin/` is one experiment; the shared logic lives
//! here so it is unit-testable at reduced sizes:
//!
//! | binary              | paper artefact                                   |
//! |---------------------|--------------------------------------------------|
//! | `thm_bounds`        | Theorems 1–3 (FIX tables, convergence)           |
//! | `thm4_check`        | Theorem 4 bound vs. the full algorithm           |
//! | `fig6_variation`    | Figure 6 (variation density curves)              |
//! | `fig7_quality`      | Figures 7/8 (balancing quality over time)        |
//! | `fig9_distribution` | Figures 9/10 (per-processor distributions)       |
//! | `table1_borrow`     | Table 1 (borrow statistics vs C)                 |
//! | `lemma_bounds`      | §6 (Lemma 5/6 bounds vs simulation)              |
//! | `baseline_compare`  | §1/§5 qualitative claims vs baselines            |
//! | `scaling`           | "up to 1024 processors" scaling claim            |
//! | `ablation`          | full vs simple variant, exchange policy, locality|
//! | `faults_sweep`      | balance quality vs injected loss / crash rates   |
//! | `arena`             | league table: trigger rule vs literature rivals  |
//! | `bench_experiments` | sequential vs `--jobs N` timings + checksums     |
//!
//! Monte Carlo binaries take `--jobs N` (default: available cores); the
//! [`parallel`] harness guarantees byte-identical output for every `N`.

pub mod analyze;
pub mod arena;
pub mod args;
pub mod faultsweep;
pub mod parallel;
pub mod quality;
pub mod report;
pub mod svg;
pub mod table1;
pub mod variation;

pub use parallel::{default_jobs, par_map, stream_seed, StreamId};
pub use quality::{balancing_quality, distribution_at, QualityCurves, SnapshotDistribution};
pub use report::{ascii_plot, render_table, write_csv};
pub use table1::{table1_row, Table1Row};
