//! Balancing-quality measurements: Figures 7/8 (load curves over time),
//! Figures 9/10 (per-processor distributions at fixed times) and the
//! Theorem 4 bound check.
//!
//! Methodology mirrors §7: the §7 phase workload on `n` processors, every
//! experiment repeated over `runs` seeded runs; we record the mean load
//! (over processors and runs) plus the minimum and maximum load *ever
//! observed in any run* at each time step.  For comparability across
//! parameter sets, run `r` always replays the same recorded event trace.
//!
//! Runs execute on the [`crate::parallel`] pool (`jobs` workers) and are
//! reduced in run-index order, so every aggregate is bit-identical for
//! any `jobs` value.  Each run's workload trace and balancer draw from
//! independent [`stream_seed`] streams.

use crate::parallel::{par_map, stream_seed, StreamId};
use dlb_core::{Cluster, LoadBalancer, Params};
use dlb_theory::TheoremBounds;
use dlb_workload::phase::{PhaseConfig, PhaseWorkload};
use dlb_workload::trace::EventTrace;
use dlb_workload::{drive, Workload};

/// Mean/min/max load per time step, aggregated over processors and runs
/// (the curves of Figures 7 and 8).
#[derive(Debug, Clone)]
pub struct QualityCurves {
    /// Mean load over processors and runs, per step.
    pub mean: Vec<f64>,
    /// Minimum load of any processor in any run, per step.
    pub min: Vec<u64>,
    /// Maximum load of any processor in any run, per step.
    pub max: Vec<u64>,
}

impl QualityCurves {
    /// `max[t] − min[t]` at the final step: the paper's visual gap.
    pub fn final_spread(&self) -> u64 {
        let last = self.mean.len() - 1;
        self.max[last] - self.min[last]
    }

    /// Largest `max/mean` over all steps with `mean ≥ floor` (small means
    /// make the ratio meaningless at startup).
    pub fn worst_ratio(&self, floor: f64) -> f64 {
        self.mean
            .iter()
            .zip(self.max.iter())
            .filter(|(&m, _)| m >= floor)
            .map(|(&m, &mx)| mx as f64 / m)
            .fold(1.0, f64::max)
    }
}

/// Records the §7 phase workload trace for run `r` (same trace for every
/// parameter set, so differences are attributable to the balancer).
pub fn paper_trace(n: usize, steps: usize, run: u64) -> EventTrace {
    let mut workload = PhaseWorkload::new(n, steps, PhaseConfig::paper_section7(), run);
    EventTrace::record(&mut workload, steps)
}

/// Figures 7/8 for an arbitrary balancer factory: `make(seed)` builds
/// the balancer for one run from that run's balancer-stream seed, and is
/// then driven by the run's recorded paper trace (recorded from the
/// run's independent workload stream).  Runs execute on `jobs` workers;
/// the reduction is in run-index order, so the curves are identical for
/// every `jobs` value.
pub fn quality_curves_with<B: LoadBalancer>(
    make: impl Fn(u64) -> B + Sync,
    n: usize,
    steps: usize,
    runs: usize,
    base_seed: u64,
    jobs: usize,
) -> QualityCurves {
    let per_run = par_map(jobs, runs, |r| {
        let trace = paper_trace(
            n,
            steps,
            stream_seed(base_seed, r as u64, StreamId::Workload),
        );
        let mut replay = trace.replay();
        let mut balancer = make(stream_seed(base_seed, r as u64, StreamId::Balancer));
        let mut run = QualityCurves {
            mean: vec![0.0; steps],
            min: vec![u64::MAX; steps],
            max: vec![0; steps],
        };
        let mut loads = Vec::with_capacity(n);
        drive(&mut balancer, &mut replay, steps, |t, b| {
            b.loads_into(&mut loads);
            run.mean[t] = loads.iter().map(|&l| l as f64).sum::<f64>() / n as f64;
            run.min[t] = *loads.iter().min().expect("n > 0");
            run.max[t] = *loads.iter().max().expect("n > 0");
        });
        run
    });
    let mut mean = vec![0.0f64; steps];
    let mut min = vec![u64::MAX; steps];
    let mut max = vec![0u64; steps];
    for run in &per_run {
        for t in 0..steps {
            mean[t] += run.mean[t];
            min[t] = min[t].min(run.min[t]);
            max[t] = max[t].max(run.max[t]);
        }
    }
    for m in &mut mean {
        *m /= runs as f64;
    }
    QualityCurves { mean, min, max }
}

/// Figures 7/8 with the full virtual-class algorithm.
pub fn balancing_quality(
    params: Params,
    steps: usize,
    runs: usize,
    base_seed: u64,
    jobs: usize,
) -> QualityCurves {
    quality_curves_with(
        |seed| Cluster::new(params, seed),
        params.n(),
        steps,
        runs,
        base_seed,
        jobs,
    )
}

/// Per-processor load distribution at one checkpoint (Figures 9/10):
/// mean over runs plus min/max ever observed, per processor.
#[derive(Debug, Clone)]
pub struct SnapshotDistribution {
    /// The global time step of the snapshot.
    pub t: usize,
    /// Mean load per processor over runs.
    pub mean: Vec<f64>,
    /// Minimum load per processor over runs.
    pub min: Vec<u64>,
    /// Maximum load per processor over runs.
    pub max: Vec<u64>,
}

impl SnapshotDistribution {
    /// Gap between the most and least loaded processor means.
    pub fn mean_spread(&self) -> f64 {
        let lo = self.mean.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = self.mean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }
}

/// Figures 9/10: distributions at each checkpoint for the full algorithm.
pub fn distribution_at(
    params: Params,
    steps: usize,
    checkpoints: &[usize],
    runs: usize,
    base_seed: u64,
    jobs: usize,
) -> Vec<SnapshotDistribution> {
    let n = params.n();
    let fresh = || -> Vec<SnapshotDistribution> {
        checkpoints
            .iter()
            .map(|&t| SnapshotDistribution {
                t,
                mean: vec![0.0; n],
                min: vec![u64::MAX; n],
                max: vec![0; n],
            })
            .collect()
    };
    let per_run = par_map(jobs, runs, |r| {
        let trace = paper_trace(
            n,
            steps,
            stream_seed(base_seed, r as u64, StreamId::Workload),
        );
        let mut replay = trace.replay();
        let mut balancer =
            Cluster::new(params, stream_seed(base_seed, r as u64, StreamId::Balancer));
        let mut snaps = fresh();
        let mut loads = Vec::with_capacity(n);
        drive(&mut balancer, &mut replay, steps, |t, b| {
            for snap in snaps.iter_mut().filter(|s| s.t == t) {
                b.loads_into(&mut loads);
                for (i, &l) in loads.iter().enumerate() {
                    snap.mean[i] = l as f64;
                    snap.min[i] = l;
                    snap.max[i] = l;
                }
            }
        });
        snaps
    });
    let mut snaps = fresh();
    for run in &per_run {
        for (snap, run_snap) in snaps.iter_mut().zip(run.iter()) {
            for i in 0..n {
                snap.mean[i] += run_snap.mean[i];
                snap.min[i] = snap.min[i].min(run_snap.min[i]);
                snap.max[i] = snap.max[i].max(run_snap.max[i]);
            }
        }
    }
    for snap in &mut snaps {
        for m in &mut snap.mean {
            *m /= runs as f64;
        }
    }
    snaps
}

/// Theorem 4 check: estimates per-processor expected loads at the
/// checkpoints and verifies `E(l_i) ≤ f²·δ/(δ+1−f)·(E(l_j) + C)` for all
/// ordered pairs.  Returns `(pairs_checked, violations)`.
pub fn theorem4_check(
    params: Params,
    steps: usize,
    checkpoints: &[usize],
    runs: usize,
    base_seed: u64,
    jobs: usize,
) -> (u64, u64) {
    let bounds = TheoremBounds::for_params(params.algo());
    let snaps = distribution_at(params, steps, checkpoints, runs, base_seed, jobs);
    let mut checked = 0u64;
    let mut violations = 0u64;
    for snap in &snaps {
        for (i, &ei) in snap.mean.iter().enumerate() {
            for (j, &ej) in snap.mean.iter().enumerate() {
                if i == j {
                    continue;
                }
                checked += 1;
                if !bounds.theorem4_holds(ei, ej, params.c_borrow(), 0.0) {
                    violations += 1;
                }
            }
        }
    }
    (checked, violations)
}

/// Drives a single balancer over an existing trace and returns final
/// loads (helper shared by the comparison binaries).
pub fn run_on_trace<B: LoadBalancer>(balancer: &mut B, trace: &EventTrace) -> Vec<u64> {
    let mut replay = trace.replay();
    let steps = trace.steps();
    let mut events = Vec::new();
    for t in 0..steps {
        replay.events_at(t, &mut events);
        balancer.step(&events);
    }
    balancer.loads()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params::new(8, 1, 1.1, 4).expect("valid")
    }

    #[test]
    fn quality_curves_shape_and_ordering() {
        let q = balancing_quality(small_params(), 60, 3, 1, 1);
        assert_eq!(q.mean.len(), 60);
        for t in 0..60 {
            assert!(q.min[t] as f64 <= q.mean[t] + 1e-9, "t={t}");
            assert!(q.mean[t] <= q.max[t] as f64 + 1e-9, "t={t}");
        }
        assert!(q.worst_ratio(5.0) >= 1.0);
    }

    #[test]
    fn smaller_f_tightens_the_band() {
        // The headline claim of Figures 7/8: lower f (or higher δ) gives a
        // narrower min–max band.
        let tight = balancing_quality(Params::new(8, 4, 1.1, 4).unwrap(), 150, 5, 7, 1);
        let loose = balancing_quality(Params::new(8, 1, 1.8, 4).unwrap(), 150, 5, 7, 1);
        assert!(
            tight.final_spread() <= loose.final_spread(),
            "tight {} vs loose {}",
            tight.final_spread(),
            loose.final_spread()
        );
    }

    #[test]
    fn distribution_checkpoints_match_requested_times() {
        let snaps = distribution_at(small_params(), 50, &[10, 40], 3, 2, 1);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].t, 10);
        assert_eq!(snaps[1].t, 40);
        for snap in &snaps {
            assert_eq!(snap.mean.len(), 8);
            for i in 0..8 {
                assert!(snap.min[i] as f64 <= snap.mean[i] + 1e-9);
                assert!(snap.mean[i] <= snap.max[i] as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn theorem4_holds_on_small_instance() {
        let (checked, violations) = theorem4_check(small_params(), 80, &[40, 79], 5, 3, 1);
        assert!(checked > 0);
        assert_eq!(violations, 0, "Theorem 4 must hold empirically");
    }

    #[test]
    fn identical_seeds_reproduce_curves() {
        let a = balancing_quality(small_params(), 40, 2, 9, 1);
        let b = balancing_quality(small_params(), 40, 2, 9, 1);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn parallel_curves_are_bit_identical_to_sequential() {
        for jobs in [2, 4] {
            let seq = balancing_quality(small_params(), 50, 5, 13, 1);
            let par = balancing_quality(small_params(), 50, 5, 13, jobs);
            assert_eq!(seq.mean, par.mean, "jobs={jobs}");
            assert_eq!(seq.min, par.min, "jobs={jobs}");
            assert_eq!(seq.max, par.max, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_distribution_is_bit_identical_to_sequential() {
        let seq = distribution_at(small_params(), 50, &[10, 40], 4, 2, 1);
        let par = distribution_at(small_params(), 50, &[10, 40], 4, 2, 3);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
        }
    }

    #[test]
    fn workload_and_balancer_streams_are_decorrelated() {
        // Regression for the correlated-seeding bug: the trace seed and
        // the balancer seed of one run must differ (the old scheme fed
        // `base + r` to both).
        let w = stream_seed(2024, 0, StreamId::Workload);
        let b = stream_seed(2024, 0, StreamId::Balancer);
        assert_ne!(w, b);
    }
}
