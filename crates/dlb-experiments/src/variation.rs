//! Figure 6 data: variation density of a non-generating processor in the
//! one-processor-generator model, over balancing steps, for the paper's
//! parameter grid (`δ ∈ {1, 2, 4}`, `f ∈ {1.1, 1.2}`, processor counts
//! `∈ {2, 3, …, 10, 15, 20, 25, 30, 35}`, up to 150 steps).
//!
//! The curves come from the exact `O(t)` moment recursion of
//! `dlb-theory::moments` (cross-validated there against exhaustive
//! enumeration and Monte-Carlo); a Monte-Carlo column is included so the
//! binary's output shows both engines side by side.

use crate::parallel::par_map;
use dlb_theory::moments::{monte_carlo, vd_curve, Selection};

/// One Figure 6 curve.
#[derive(Debug, Clone)]
pub struct VdCurve {
    /// Neighbourhood size `δ`.
    pub delta: usize,
    /// Trigger factor `f`.
    pub f: f64,
    /// Number of processors `p` *excluding* the generator (the paper's
    /// processor counts are `p + 1`).
    pub p: usize,
    /// `VD(l_{i,t})` for `t = 0 ..= steps`.
    pub vd: Vec<f64>,
}

impl VdCurve {
    /// Converged (final) variation density.
    pub fn final_vd(&self) -> f64 {
        *self.vd.last().expect("non-empty curve")
    }
}

/// The processor counts of Figure 6.
pub fn paper_processor_counts() -> Vec<usize> {
    let mut counts: Vec<usize> = (2..=10).collect();
    counts.extend([15, 20, 25, 30, 35]);
    counts
}

/// Computes the full Figure 6 grid exactly, fanning the (feasible) grid
/// points out over `jobs` workers; the output order is the grid order
/// regardless of `jobs` (the recursion is exact, so the values are too).
pub fn figure6_curves(
    deltas: &[usize],
    fs: &[f64],
    procs: &[usize],
    steps: usize,
    jobs: usize,
) -> Vec<VdCurve> {
    let mut grid = Vec::new();
    for &delta in deltas {
        for &f in fs {
            for &n in procs {
                let p = n - 1; // paper counts include the generator
                if delta > p {
                    continue;
                }
                grid.push((delta, f, p));
            }
        }
    }
    par_map(jobs, grid.len(), |i| {
        let (delta, f, p) = grid[i];
        VdCurve {
            delta,
            f,
            p,
            vd: vd_curve(p, delta, f, steps),
        }
    })
}

/// Monte-Carlo check of one grid point: returns `(exact_vd, mc_vd)` after
/// `steps` balancing operations.
pub fn mc_crosscheck(
    delta: usize,
    f: f64,
    n: usize,
    steps: usize,
    runs: usize,
    seed: u64,
) -> (f64, f64) {
    let p = n - 1;
    let exact = vd_curve(p, delta, f, steps)[steps];
    let (_, _, _, mc) = monte_carlo(p, delta, f, steps, runs, seed, Selection::Subset);
    (exact, mc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_skips_infeasible_delta() {
        // δ = 4 needs at least 5 processors (p >= 4).
        let curves = figure6_curves(&[4], &[1.1], &[2, 3, 4, 5, 6], 10, 1);
        assert_eq!(curves.len(), 2, "only n = 5 and n = 6 are feasible");
        assert!(curves.iter().all(|c| c.p >= 4));
    }

    #[test]
    fn paper_grid_size() {
        let counts = paper_processor_counts();
        assert_eq!(counts.len(), 14);
        let curves = figure6_curves(&[1, 2, 4], &[1.1, 1.2], &counts, 150, 2);
        // δ=1: 14, δ=2: 13 (n=2 infeasible), δ=4: 11 (n=2,3,4 infeasible),
        // each × 2 values of f.
        assert_eq!(curves.len(), (14 + 13 + 11) * 2);
        for c in &curves {
            assert_eq!(c.vd.len(), 151);
            assert!(c.final_vd() >= 0.0 && c.final_vd() < 1.0, "{c:?}");
        }
    }

    #[test]
    fn parallel_grid_matches_sequential() {
        let counts = [2usize, 5, 10];
        let seq = figure6_curves(&[1, 2], &[1.1], &counts, 40, 1);
        let par = figure6_curves(&[1, 2], &[1.1], &counts, 40, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!((a.delta, a.p), (b.delta, b.p), "grid order preserved");
            assert_eq!(a.vd, b.vd);
        }
    }

    #[test]
    fn crosscheck_engines_agree() {
        let (exact, mc) = mc_crosscheck(2, 1.2, 10, 30, 30_000, 17);
        assert!((exact - mc).abs() < 0.03, "exact {exact} vs MC {mc}");
    }
}
