//! Balance quality under injected faults: the logic behind the
//! `faults_sweep` binary.
//!
//! Two sweeps over the asynchronous protocol simulator with `dlb-faults`
//! injection:
//!
//! * **loss sweep** — message loss (control *and* transfer plane) from 0%
//!   upward; the hardened timeout/retry machinery keeps the protocol live
//!   and the extended conservation ledger accounts every destroyed
//!   packet;
//! * **crash sweep** — a growing fraction of processors crashed mid-run
//!   (frozen, later recovering); survivors keep balancing around the
//!   holes.
//!
//! Every cell asserts extended conservation after every tick and zero
//! leaked locks after quiescence, so the sweep doubles as a protocol
//! soundness harness.  All randomness is seeded: the same
//! [`SweepConfig`] renders byte-identical JSON on every run (the
//! determinism regression test relies on this).

use crate::parallel::{par_map, stream_seed, StreamId};
use crate::svg::{ChartConfig, Series};
use dlb_core::{imbalance_stats, Params};
use dlb_faults::{CrashEvent, CrashMode, FaultPlan};
use dlb_json::{Json, ToJson};
use dlb_net::{AsyncConfig, AsyncNetwork, AsyncStats};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Sweep dimensions and simulation sizes.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Processors.
    pub n: usize,
    /// Workload ticks per run (quiescence excluded).
    pub steps: u64,
    /// Message latency in ticks.
    pub latency: u64,
    /// Independent runs averaged per sweep point.
    pub runs: u64,
    /// Seed for the workload action stream.
    pub workload_seed: u64,
    /// Base fault plan (its seed anchors the injector; the swept knob is
    /// overridden per point).
    pub base: FaultPlan,
    /// Loss rates to sweep (applied to both message classes).
    pub losses: Vec<f64>,
    /// Crashed-processor counts to sweep.
    pub crash_counts: Vec<usize>,
    /// Worker threads for the per-cell Monte Carlo runs (the output is
    /// bit-identical for every value; 1 = inline).
    pub jobs: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n: 32,
            steps: 3_000,
            latency: 4,
            runs: 3,
            workload_seed: 5,
            base: FaultPlan::reliable(),
            losses: vec![0.0, 0.05, 0.10, 0.15, 0.20],
            crash_counts: vec![0, 1, 2, 4, 8],
            jobs: 1,
        }
    }
}

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Swept coordinate: loss probability, or crashed fraction of `n`.
    pub x: f64,
    /// Time-averaged max/mean load ratio (lower is better, 1.0 ideal).
    pub quality: f64,
    /// Protocol counters summed over the runs.
    pub stats: AsyncStats,
    /// Load destroyed by faults (lost ledger), summed over the runs.
    pub lost_load: u64,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("x".into(), self.x.to_json()),
            ("quality".into(), self.quality.to_json()),
            ("completed_ops".into(), self.stats.completed_ops.to_json()),
            ("aborted_ops".into(), self.stats.aborted_ops.to_json()),
            ("retries".into(), self.stats.retries.to_json()),
            (
                "timeout_recoveries".into(),
                self.stats.timeout_recoveries.to_json(),
            ),
            ("lost_messages".into(), self.stats.lost_messages.to_json()),
            (
                "duplicated_messages".into(),
                self.stats.duplicated_messages.to_json(),
            ),
            ("crashes".into(), self.stats.crashes.to_json()),
            ("recoveries".into(), self.stats.recoveries.to_json()),
            ("lost_load".into(), self.lost_load.to_json()),
        ])
    }
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The configuration the sweep ran with.
    pub config: SweepConfig,
    /// Quality vs message-loss probability.
    pub loss_sweep: Vec<SweepPoint>,
    /// Quality vs crashed-processor fraction.
    pub crash_sweep: Vec<SweepPoint>,
}

impl ToJson for SweepResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), "faults_sweep".to_json()),
            (
                "config".into(),
                Json::Obj(vec![
                    ("n".into(), (self.config.n as u64).to_json()),
                    ("steps".into(), self.config.steps.to_json()),
                    ("latency".into(), self.config.latency.to_json()),
                    ("runs".into(), self.config.runs.to_json()),
                    ("workload_seed".into(), self.config.workload_seed.to_json()),
                    ("fault_seed".into(), self.config.base.seed.to_json()),
                ]),
            ),
            (
                "loss_sweep".into(),
                Json::Arr(self.loss_sweep.iter().map(|p| p.to_json()).collect()),
            ),
            (
                "crash_sweep".into(),
                Json::Arr(self.crash_sweep.iter().map(|p| p.to_json()).collect()),
            ),
        ])
    }
}

impl SweepResult {
    /// The two sweeps as chart series (x in percent).
    pub fn chart(&self) -> (ChartConfig, Vec<Series>) {
        let config = ChartConfig {
            title: format!(
                "Balance quality under faults ({} procs, latency {})",
                self.config.n, self.config.latency
            ),
            x_label: "fault rate (%)".into(),
            y_label: "avg max/mean load".into(),
            ..ChartConfig::default()
        };
        let series = vec![
            Series {
                name: "message loss".into(),
                points: self
                    .loss_sweep
                    .iter()
                    .map(|p| (p.x * 100.0, p.quality))
                    .collect(),
            },
            Series {
                name: "crashed procs".into(),
                points: self
                    .crash_sweep
                    .iter()
                    .map(|p| (p.x * 100.0, p.quality))
                    .collect(),
            },
        ];
        (config, series)
    }
}

/// Runs one sweep cell: `runs` seeded simulations under `plan`,
/// asserting extended conservation after every tick and no leaked locks
/// after quiescence.
///
/// # Panics
///
/// Panics when conservation breaks or a lock leaks — that is the point:
/// the experiment doubles as a soundness harness.
pub fn run_cell(cfg: &SweepConfig, plan: &FaultPlan) -> SweepPoint {
    let params = Params::new(cfg.n, 2, 1.3, 4).expect("valid params");
    let per_run = par_map(cfg.jobs, cfg.runs as usize, |run| {
        let run = run as u64;
        let mut run_plan = plan.clone();
        run_plan.seed = stream_seed(plan.seed, run, StreamId::Faults);
        let net_cfg = AsyncConfig::reliable(
            params,
            cfg.latency,
            stream_seed(cfg.workload_seed, run, StreamId::Network),
        );
        let mut net = AsyncNetwork::with_faults(net_cfg, run_plan).expect("valid plan");
        let mut wl_rng =
            ChaCha8Rng::seed_from_u64(stream_seed(cfg.workload_seed, run, StreamId::Workload));
        let mut ratio = 0.0;
        let mut samples = 0usize;
        for t in 0..cfg.steps {
            let actions: Vec<i8> = (0..cfg.n)
                .map(|_| match wl_rng.gen_range(0..10) {
                    0..=4 => 1,
                    5..=7 => -1,
                    _ => 0,
                })
                .collect();
            net.tick(t, &actions);
            net.check_conservation()
                .expect("extended conservation at every tick");
            if t >= cfg.steps / 5 && t % 20 == 0 {
                let s = imbalance_stats(&net.loads());
                if s.mean >= 1.0 {
                    ratio += s.max_over_mean;
                    samples += 1;
                }
            }
        }
        net.quiesce();
        net.check_conservation()
            .expect("extended conservation after quiescence");
        assert_eq!(
            net.locked_count(),
            0,
            "no processor may stay locked after quiescence"
        );
        (ratio / samples.max(1) as f64, *net.stats(), net.lost())
    });
    let mut quality_acc = 0.0;
    let mut stats = AsyncStats::default();
    let mut lost_load = 0u64;
    for (quality, run_stats, lost) in &per_run {
        quality_acc += quality;
        stats += *run_stats;
        lost_load += lost;
    }
    SweepPoint {
        x: 0.0,
        quality: quality_acc / cfg.runs as f64,
        stats,
        lost_load,
    }
}

/// Runs the full sweep.
pub fn sweep(cfg: &SweepConfig) -> SweepResult {
    let loss_sweep = cfg
        .losses
        .iter()
        .map(|&loss| {
            let mut plan = cfg.base.clone();
            plan.loss = loss;
            plan.transfer_loss = loss;
            SweepPoint {
                x: loss,
                ..run_cell(cfg, &plan)
            }
        })
        .collect();
    let crash_sweep = cfg
        .crash_counts
        .iter()
        .map(|&count| {
            let mut plan = cfg.base.clone();
            plan.crash_mode = CrashMode::Frozen;
            plan.crashes = (0..count)
                .map(|i| CrashEvent {
                    proc: i * cfg.n / count.max(1),
                    at: cfg.steps / 4,
                    recover_at: Some(3 * cfg.steps / 4),
                })
                .collect();
            SweepPoint {
                x: count as f64 / cfg.n as f64,
                ..run_cell(cfg, &plan)
            }
        })
        .collect();
    SweepResult {
        config: cfg.clone(),
        loss_sweep,
        crash_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            n: 8,
            steps: 400,
            runs: 1,
            losses: vec![0.0, 0.2],
            crash_counts: vec![0, 2],
            ..SweepConfig::default()
        }
    }

    #[test]
    fn sweep_exercises_the_fault_machinery() {
        let result = sweep(&tiny());
        assert_eq!(result.loss_sweep.len(), 2);
        assert_eq!(result.crash_sweep.len(), 2);
        let lossy = &result.loss_sweep[1];
        assert!(lossy.stats.lost_messages > 0, "20% loss must drop messages");
        assert!(
            lossy.stats.retries + lossy.stats.timeout_recoveries > 0,
            "recovery machinery must fire: {:?}",
            lossy.stats
        );
        let crashed = &result.crash_sweep[1];
        assert!(crashed.stats.crashes >= 2, "both scheduled crashes happen");
        assert!(crashed.stats.recoveries >= 2, "both recoveries happen");
    }

    #[test]
    fn json_output_is_deterministic_across_runs() {
        // Satellite requirement: same seed + plan => byte-identical JSON.
        let a = sweep(&tiny()).to_json().render_pretty();
        let b = sweep(&tiny()).to_json().render_pretty();
        assert_eq!(a, b, "faults_sweep output must be byte-stable");
        assert!(a.contains("\"experiment\": \"faults_sweep\""), "{a}");
    }

    #[test]
    fn parallel_sweep_renders_byte_identical_json() {
        let seq = sweep(&tiny()).to_json().render_pretty();
        let par = sweep(&SweepConfig {
            jobs: 3,
            runs: 3,
            ..tiny()
        })
        .to_json()
        .render_pretty();
        let seq3 = sweep(&SweepConfig { runs: 3, ..tiny() })
            .to_json()
            .render_pretty();
        assert_eq!(seq3, par, "jobs must not change the rendered sweep");
        assert_ne!(seq, seq3, "sanity: more runs change the sweep");
    }

    #[test]
    fn chart_renders_both_series() {
        let result = sweep(&tiny());
        let (config, series) = result.chart();
        let svg = crate::svg::line_chart(&config, &series);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("message loss") && svg.contains("crashed procs"));
    }
}
