//! Deterministic parallel execution of independent Monte Carlo runs.
//!
//! The §7 experiments repeat every measurement over `runs` seeded runs;
//! the runs are independent, so they fan out across worker threads.  Two
//! invariants make the parallelism invisible to the results:
//!
//! 1. **In-order reduction** — [`par_map`] returns the per-run results
//!    in run-index order regardless of which worker finished first, so a
//!    caller folding them (including non-associative `f64` sums) gets
//!    bit-identical aggregates for every `jobs` value, including 1.
//! 2. **Hashed seed streams** — [`stream_seed`] derives the seed for
//!    each `(run, component)` pair through a SplitMix64 finaliser, so a
//!    run's workload trace and its balancer (and any fault injector or
//!    network on top) draw from uncorrelated streams.  The previous
//!    `base_seed + run` scheme handed adjacent ChaCha seeds to adjacent
//!    runs *and* the same seed to the trace and the balancer of one run,
//!    which correlated the ensembles the experiments average over.
//!
//! Work is executed by a process-lifetime pool: worker threads are
//! spawned once (grown lazily to the largest `jobs − 1` ever requested)
//! and *park on a condvar* between jobs, so an idle pool costs nothing
//! and a [`par_map`] call costs a couple of mutex operations rather than
//! `jobs` thread spawns.  The earlier implementation spawned and joined
//! a fresh `std::thread::scope` per call, which put thread creation and
//! teardown (tens of microseconds each, serialised through the kernel)
//! on the measurement path of every experiment — on short workloads the
//! spawn overhead alone ate the parallel gain.  Within a job, idle
//! workers claim run indices from a shared atomic cursor, so uneven run
//! times do not serialise the tail.  The calling thread participates as
//! one of the `jobs` workers.  Concurrent top-level calls serialise on a
//! submission lock; calls nested inside a pool worker (or inside the
//! caller's own slice of the work) run inline on that thread, so nesting
//! cannot deadlock and still returns index-ordered results.
//!
//! No external crate is needed; the pool is ~100 lines of `std`.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Worker count used when `--jobs` is not given: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// True on pool workers and on a caller while it executes its own
    /// share of a job: nested `par_map` calls from such threads run
    /// inline instead of re-entering the (single-job) pool.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The job a worker executes: a lifetime-erased borrow of the caller's
/// work closure.  Validity is guaranteed by the submission protocol —
/// the caller does not return from [`par_map`] until every worker that
/// claimed this reference has dropped out of it (`running == 0`).
#[derive(Clone, Copy)]
struct TaskRef(&'static (dyn Fn() + Sync));

struct PoolState {
    /// Bumped once per submitted job; a worker only claims a task whose
    /// generation differs from the last one it executed.
    generation: u64,
    /// The current job, or `None` between jobs / after the caller
    /// closed submission.
    task: Option<TaskRef>,
    /// How many more workers may still join the current job (keeps a
    /// large pool from exceeding a smaller `--jobs` request).
    slots_open: usize,
    /// Workers currently inside the current job's closure.
    running: usize,
    /// Worker threads spawned so far (they never exit).
    spawned: usize,
    /// Set when a worker's closure panicked; re-raised by the caller.
    panicked: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The caller parks here until `running` drains to zero.
    done_cv: Condvar,
    /// Serialises top-level `par_map` calls (the pool holds one job).
    submit: Mutex<()>,
}

/// Poison-tolerant lock: a panic inside a caller-supplied closure can
/// poison the submission lock while `par_map` unwinds; the pool's own
/// invariants never depend on poisoning, so we keep going.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    fn new() -> Arc<Pool> {
        Arc::new(Pool {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                slots_open: 0,
                running: 0,
                spawned: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
        })
    }

    fn global() -> &'static Arc<Pool> {
        static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
        POOL.get_or_init(Pool::new)
    }

    /// Grows the pool to at least `needed` parked workers.
    fn ensure_workers(self: &Arc<Self>, needed: usize) {
        let mut st = lock(&self.state);
        while st.spawned < needed {
            st.spawned += 1;
            let pool = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("dlb-par-{}", st.spawned))
                .spawn(move || pool.worker_loop())
                .expect("spawn pool worker");
        }
    }

    fn worker_loop(&self) {
        IN_POOL.with(|flag| flag.set(true));
        let mut last_gen = 0u64;
        loop {
            let task = {
                let mut st = lock(&self.state);
                loop {
                    if st.generation != last_gen && st.slots_open > 0 {
                        if let Some(task) = st.task {
                            last_gen = st.generation;
                            st.slots_open -= 1;
                            st.running += 1;
                            break task;
                        }
                    }
                    st = self
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| (task.0)()));
            let mut st = lock(&self.state);
            if outcome.is_err() {
                st.panicked = true;
            }
            st.running -= 1;
            if st.running == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// Maps `f` over `0..count` on `jobs` workers (the calling thread plus
/// `jobs − 1` pooled threads), returning results in index order.
///
/// `jobs <= 1` runs inline on the calling thread; any higher value
/// produces the *same* `Vec` (same values, same order), so sequential
/// and parallel paths share one code path and cannot drift apart.
pub fn par_map<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs == 1 || IN_POOL.with(|flag| flag.get()) {
        return (0..count).map(f).collect();
    }

    let pool = Pool::global();
    let _submit = lock(&pool.submit);
    pool.ensure_workers(jobs - 1);

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        let value = f(i);
        *lock(&slots[i]) = Some(value);
    };

    // Publish the job.  The reference is lifetime-erased; see `TaskRef`
    // for why this is sound.
    {
        let work_ref: &(dyn Fn() + Sync) = &work;
        let task = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work_ref)
        });
        let mut st = lock(&pool.state);
        st.generation += 1;
        st.task = Some(task);
        st.slots_open = jobs - 1;
        pool.work_cv.notify_all();
    }

    // Participate as one of the `jobs` workers.  IN_POOL makes nested
    // par_map calls from inside `f` run inline (re-entering the
    // single-job pool from here would deadlock on the submission lock).
    IN_POOL.with(|flag| flag.set(true));
    let own = catch_unwind(AssertUnwindSafe(&work));
    IN_POOL.with(|flag| flag.set(false));

    // Close submission and wait for every worker that claimed the task
    // to leave it; only then may the borrow of `work`/`slots` end.
    let worker_panicked = {
        let mut st = lock(&pool.state);
        st.task = None;
        st.slots_open = 0;
        while st.running > 0 {
            st = pool
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        std::mem::take(&mut st.panicked)
    };
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    assert!(!worker_panicked, "a par_map worker panicked");

    slots
        .into_iter()
        .map(|slot| {
            lock(&slot)
                .take()
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

/// A component of one run that needs its own random stream.
///
/// Listing the consumers explicitly (instead of ad-hoc xor constants)
/// keeps any two components of the same run provably on different
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamId {
    /// The workload trace generator (`paper_trace` and friends).
    Workload = 1,
    /// The balancer under test (cluster tie-breaking, partner choice).
    Balancer = 2,
    /// A fault injector layered on the run.
    Faults = 3,
    /// An asynchronous network simulator layered on the run.
    Network = 4,
}

/// Derives an independent seed for `(run, component)` from `base`.
///
/// Three chained SplitMix64 finalisation steps: adjacent runs, adjacent
/// components and adjacent base seeds all land on unrelated 64-bit
/// values (full avalanche), unlike the old `base.wrapping_add(run)`
/// scheme which seeded adjacent runs with adjacent integers and reused
/// one seed for several components.
pub fn stream_seed(base: u64, run: u64, component: StreamId) -> u64 {
    splitmix(splitmix(splitmix(base).wrapping_add(run)).wrapping_add(component as u64))
}

/// SplitMix64 finalisation step (Steele, Lea & Flood; the γ-increment is
/// folded in so `splitmix(0) != 0`).
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for jobs in [1, 2, 4, 9] {
            let out = par_map(jobs, 37, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_map_float_fold_is_bit_identical_across_jobs() {
        // The exact guarantee the experiments rely on: folding the
        // returned Vec in order gives bit-identical f64 sums.
        let fold = |jobs: usize| -> f64 {
            par_map(jobs, 100, |i| ((i as f64) * 0.37).sin())
                .into_iter()
                .fold(0.0, |acc, x| acc + x)
        };
        let seq = fold(1).to_bits();
        for jobs in [2, 3, 8] {
            assert_eq!(seq, fold(jobs).to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn repeated_calls_reuse_the_pool() {
        // Exercises worker re-claiming across generations: the pool is
        // spawned once and every later call must drain correctly.
        for round in 0..50u64 {
            let out = par_map(4, 16, |i| i as u64 + round);
            assert_eq!(out, (0..16).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_par_map_runs_inline_and_stays_ordered() {
        let out = par_map(4, 4, |i| par_map(4, 3, |j| i * 10 + j));
        let expect: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..3).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn shrinking_jobs_respects_the_limit() {
        // Grow the pool with a wide call, then check a narrow call still
        // admits at most jobs−1 pooled workers (slots_open budget).
        let _ = par_map(8, 32, |i| i);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = par_map(2, 24, |i| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            concurrent.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out, (0..24).collect::<Vec<_>>());
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "jobs=2 ran {} ways parallel",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn panicking_closure_propagates_and_pool_survives() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(3, 20, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool must still be usable afterwards.
        assert_eq!(par_map(3, 5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn stream_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 2024, u64::MAX] {
            for run in 0..8 {
                for comp in [
                    StreamId::Workload,
                    StreamId::Balancer,
                    StreamId::Faults,
                    StreamId::Network,
                ] {
                    assert!(
                        seen.insert(stream_seed(base, run, comp)),
                        "collision at base={base} run={run} {comp:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_seed_avalanches_across_adjacent_runs() {
        // Adjacent runs must not produce adjacent seeds (the old bug).
        let a = stream_seed(7, 0, StreamId::Workload);
        let b = stream_seed(7, 1, StreamId::Workload);
        assert!(a.abs_diff(b) > 1 << 32, "{a} vs {b}");
        // And the two components of one run must differ likewise.
        let c = stream_seed(7, 0, StreamId::Balancer);
        assert!(a.abs_diff(c) > 1 << 32, "{a} vs {c}");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
