//! Deterministic parallel execution of independent Monte Carlo runs.
//!
//! The §7 experiments repeat every measurement over `runs` seeded runs;
//! the runs are independent, so they fan out across worker threads.  Two
//! invariants make the parallelism invisible to the results:
//!
//! 1. **In-order reduction** — [`par_map`] returns the per-run results
//!    in run-index order regardless of which worker finished first, so a
//!    caller folding them (including non-associative `f64` sums) gets
//!    bit-identical aggregates for every `jobs` value, including 1.
//! 2. **Hashed seed streams** — [`stream_seed`] derives the seed for
//!    each `(run, component)` pair through a SplitMix64 finaliser, so a
//!    run's workload trace and its balancer (and any fault injector or
//!    network on top) draw from uncorrelated streams.  The previous
//!    `base_seed + run` scheme handed adjacent ChaCha seeds to adjacent
//!    runs *and* the same seed to the trace and the balancer of one run,
//!    which correlated the ensembles the experiments average over.
//!
//! The pool is a hand-rolled work-stealing loop over `std::thread::scope`
//! (a shared atomic cursor; idle workers steal the next run index), so
//! uneven run times do not serialise the tail and no external crate is
//! needed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used when `--jobs` is not given: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..count` on `jobs` worker threads, returning results
/// in index order.
///
/// `jobs <= 1` runs inline on the calling thread; any higher value
/// produces the *same* `Vec` (same values, same order), so sequential
/// and parallel paths share one code path and cannot drift apart.
pub fn par_map<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs == 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("slot lock") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

/// A component of one run that needs its own random stream.
///
/// Listing the consumers explicitly (instead of ad-hoc xor constants)
/// keeps any two components of the same run provably on different
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamId {
    /// The workload trace generator (`paper_trace` and friends).
    Workload = 1,
    /// The balancer under test (cluster tie-breaking, partner choice).
    Balancer = 2,
    /// A fault injector layered on the run.
    Faults = 3,
    /// An asynchronous network simulator layered on the run.
    Network = 4,
}

/// Derives an independent seed for `(run, component)` from `base`.
///
/// Three chained SplitMix64 finalisation steps: adjacent runs, adjacent
/// components and adjacent base seeds all land on unrelated 64-bit
/// values (full avalanche), unlike the old `base.wrapping_add(run)`
/// scheme which seeded adjacent runs with adjacent integers and reused
/// one seed for several components.
pub fn stream_seed(base: u64, run: u64, component: StreamId) -> u64 {
    splitmix(splitmix(splitmix(base).wrapping_add(run)).wrapping_add(component as u64))
}

/// SplitMix64 finalisation step (Steele, Lea & Flood; the γ-increment is
/// folded in so `splitmix(0) != 0`).
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for jobs in [1, 2, 4, 9] {
            let out = par_map(jobs, 37, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_map_float_fold_is_bit_identical_across_jobs() {
        // The exact guarantee the experiments rely on: folding the
        // returned Vec in order gives bit-identical f64 sums.
        let fold = |jobs: usize| -> f64 {
            par_map(jobs, 100, |i| ((i as f64) * 0.37).sin())
                .into_iter()
                .fold(0.0, |acc, x| acc + x)
        };
        let seq = fold(1).to_bits();
        for jobs in [2, 3, 8] {
            assert_eq!(seq, fold(jobs).to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn stream_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 2024, u64::MAX] {
            for run in 0..8 {
                for comp in [
                    StreamId::Workload,
                    StreamId::Balancer,
                    StreamId::Faults,
                    StreamId::Network,
                ] {
                    assert!(
                        seen.insert(stream_seed(base, run, comp)),
                        "collision at base={base} run={run} {comp:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_seed_avalanches_across_adjacent_runs() {
        // Adjacent runs must not produce adjacent seeds (the old bug).
        let a = stream_seed(7, 0, StreamId::Workload);
        let b = stream_seed(7, 1, StreamId::Workload);
        assert!(a.abs_diff(b) > 1 << 32, "{a} vs {b}");
        // And the two components of one run must differ likewise.
        let c = stream_seed(7, 0, StreamId::Balancer);
        assert!(a.abs_diff(c) > 1 << 32, "{a} vs {c}");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
