//! Deterministic parallel execution of independent Monte Carlo runs.
//!
//! The §7 experiments repeat every measurement over `runs` seeded runs;
//! the runs are independent, so they fan out across worker threads.  Two
//! invariants make the parallelism invisible to the results:
//!
//! 1. **In-order reduction** — [`par_map`] returns the per-run results
//!    in run-index order regardless of which worker finished first, so a
//!    caller folding them (including non-associative `f64` sums) gets
//!    bit-identical aggregates for every `jobs` value, including 1.
//! 2. **Hashed seed streams** — [`stream_seed`] derives the seed for
//!    each `(run, component)` pair through a SplitMix64 finaliser, so a
//!    run's workload trace and its balancer (and any fault injector or
//!    network on top) draw from uncorrelated streams.  The previous
//!    `base_seed + run` scheme handed adjacent ChaCha seeds to adjacent
//!    runs *and* the same seed to the trace and the balancer of one run,
//!    which correlated the ensembles the experiments average over.
//!
//! The pool itself lives in the leaf crate [`dlb_pool`] (promoted there
//! so `dlb-core`'s intra-run wave executor can share it without a
//! dependency cycle); [`par_map`] and [`default_jobs`] are re-exported
//! here so every experiment binary keeps its import path.  Because the
//! process has exactly one pool and nested calls run inline, a run-level
//! `--jobs J` composed with an engine-level `--step-jobs S` occupies at
//! most `J` threads — the two levels share one budget instead of
//! multiplying into `J × S` threads.

pub use dlb_pool::{default_jobs, par_map};

/// A component of one run that needs its own random stream.
///
/// Listing the consumers explicitly (instead of ad-hoc xor constants)
/// keeps any two components of the same run provably on different
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamId {
    /// The workload trace generator (`paper_trace` and friends).
    Workload = 1,
    /// The balancer under test (cluster tie-breaking, partner choice).
    Balancer = 2,
    /// A fault injector layered on the run.
    Faults = 3,
    /// An asynchronous network simulator layered on the run.
    Network = 4,
}

/// Derives an independent seed for `(run, component)` from `base`.
///
/// Three chained SplitMix64 finalisation steps: adjacent runs, adjacent
/// components and adjacent base seeds all land on unrelated 64-bit
/// values (full avalanche), unlike the old `base.wrapping_add(run)`
/// scheme which seeded adjacent runs with adjacent integers and reused
/// one seed for several components.
pub fn stream_seed(base: u64, run: u64, component: StreamId) -> u64 {
    splitmix(splitmix(splitmix(base).wrapping_add(run)).wrapping_add(component as u64))
}

/// SplitMix64 finalisation step (Steele, Lea & Flood; the γ-increment is
/// folded in so `splitmix(0) != 0`).
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 2024, u64::MAX] {
            for run in 0..8 {
                for comp in [
                    StreamId::Workload,
                    StreamId::Balancer,
                    StreamId::Faults,
                    StreamId::Network,
                ] {
                    assert!(
                        seen.insert(stream_seed(base, run, comp)),
                        "collision at base={base} run={run} {comp:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_seed_avalanches_across_adjacent_runs() {
        // Adjacent runs must not produce adjacent seeds (the old bug).
        let a = stream_seed(7, 0, StreamId::Workload);
        let b = stream_seed(7, 1, StreamId::Workload);
        assert!(a.abs_diff(b) > 1 << 32, "{a} vs {b}");
        // And the two components of one run must differ likewise.
        let c = stream_seed(7, 0, StreamId::Balancer);
        assert!(a.abs_diff(c) > 1 << 32, "{a} vs {c}");
    }

    #[test]
    fn par_map_reexport_is_live() {
        // The pool moved to dlb-pool; the re-export must keep working
        // for every experiment binary importing from here.
        assert_eq!(par_map(4, 5, |i| i * 3), vec![0, 3, 6, 9, 12]);
        assert!(default_jobs() >= 1);
    }
}
