//! Plain-text rendering (tables, line plots) and CSV output for the
//! experiment binaries.

use std::io::Write;
use std::path::Path;

/// Renders an aligned ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Renders one or more named series as a crude ASCII line plot
/// (`height` rows, one column per sample; series are marked with
/// distinct glyphs, collisions show the later series).
pub fn ascii_plot(series: &[(&str, &[f64])], height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    assert!(
        !series.is_empty() && height >= 2,
        "need data and height >= 2"
    );
    let width = series
        .iter()
        .map(|(_, s)| s.len())
        .max()
        .expect("non-empty");
    let lo = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::INFINITY, f64::min);
    let hi = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if (hi - lo).abs() < 1e-12 {
        1.0
    } else {
        hi - lo
    };
    let mut grid = vec![vec![' '; width]; height];
    for (k, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[k % GLYPHS.len()];
        for (x, &v) in s.iter().enumerate() {
            let y = ((v - lo) / span * (height - 1) as f64).round() as usize;
            grid[height - 1 - y][x] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("max = {hi:.4}\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("min = {lo:.4}   legend: "));
    for (k, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{}={} ", GLYPHS[k % GLYPHS.len()], name));
    }
    out.push('\n');
    out
}

/// Writes rows as CSV (creating parent directories as needed).
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(file, "{}", headers.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Convenience: formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[3].contains("long-name"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn plot_contains_extremes_and_legend() {
        let data = [1.0, 2.0, 3.0, 2.0, 1.0];
        let out = ascii_plot(&[("loads", &data)], 5);
        assert!(out.contains("max = 3.0000"));
        assert!(out.contains("min = 1.0000"));
        assert!(out.contains("*=loads"));
    }

    #[test]
    fn plot_flat_series_does_not_divide_by_zero() {
        let data = [2.0, 2.0, 2.0];
        let out = ascii_plot(&[("flat", &data)], 3);
        assert!(out.contains("max = 2.0000"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("dlb_report_test");
        let path = dir.join("nested").join("out.csv");
        write_csv(&path, &["t", "mean"], &[vec!["0".into(), "1.5".into()]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "t,mean\n0,1.5\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
