//! Property tests for the balancer arena: the league table is
//! byte-identical for every `--jobs` count and across repeated runs, the
//! trigger-rule contender consumes its RNG streams exactly as a direct
//! simulation does, and the four literature balancers conserve load and
//! freeze crashed processors under arbitrary crash windows.

use dlb_baselines::{DimensionExchange, DynamicAveraging, LocallyOptimal, Quasirandom};
use dlb_core::{Cluster, LoadBalancer, LoadEvent, LoadRecorder, Params};
use dlb_experiments::arena::{
    league_csv_rows, run_league, ArenaConfig, Contender, DEFAULT_CONV_THRESHOLD,
};
use dlb_experiments::quality::paper_trace;
use dlb_experiments::{stream_seed, StreamId};
use dlb_faults::{CrashEvent, CrashMode, FaultInjector, FaultPlan};
use dlb_net::Topology;
use dlb_workload::Workload;
use proptest::{prop_assert, prop_assert_eq, proptest};

const N: usize = 8;

fn cube() -> Topology {
    Topology::Hypercube { dim: 3 }
}

/// The full league: trigger rule plus all four literature balancers.
fn contenders() -> Vec<Contender> {
    let params = Params::new(N, 1, 1.1, 4).expect("valid params");
    vec![
        Contender::new("spaa93-full", move |seed| {
            Box::new(Cluster::new(params, seed))
        }),
        Contender::new("quasirandom", |_| Box::new(Quasirandom::new(cube()))),
        Contender::new("dynamic-averaging", |seed| {
            Box::new(DynamicAveraging::new(cube(), seed))
        }),
        Contender::new("locally-optimal", |_| Box::new(LocallyOptimal::new(cube()))),
        Contender::new("dimension-exchange", |_| {
            Box::new(DimensionExchange::new(cube()))
        }),
    ]
}

fn arena_cfg(steps: usize, runs: usize, seed: u64, jobs: usize) -> ArenaConfig {
    ArenaConfig {
        n: N,
        steps,
        runs,
        seed,
        warmup_fraction: 0.25,
        conv_threshold: DEFAULT_CONV_THRESHOLD,
        faults: Some(FaultPlan {
            seed: 5,
            crash_mode: CrashMode::Frozen,
            crashes: vec![CrashEvent {
                proc: 2,
                at: (steps / 4) as u64,
                recover_at: Some((steps / 2) as u64),
            }],
            ..FaultPlan::default()
        }),
        jobs,
    }
}

fn league_csv(cfg: &ArenaConfig) -> Vec<Vec<String>> {
    let entrants = contenders();
    let result = run_league(cfg, &entrants, |s| paper_trace(N, cfg.steps, s), false);
    league_csv_rows(&result.rows, Some(6))
}

proptest! {
    #[test]
    fn league_parallel_equals_sequential(
        steps in 30usize..60,
        runs in 1usize..4,
        jobs in 2usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let seq = league_csv(&arena_cfg(steps, runs, seed, 1));
        let par = league_csv(&arena_cfg(steps, runs, seed, jobs));
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn repeated_leagues_are_identical(
        steps in 30usize..60,
        runs in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = arena_cfg(steps, runs, seed, 2);
        prop_assert_eq!(league_csv(&cfg), league_csv(&cfg));
    }

    /// The trigger-rule contender inside the league draws from exactly
    /// the RNG streams a standalone simulation of the same run would —
    /// racing it against rivals must not perturb a single draw.
    #[test]
    fn trigger_rule_fingerprint_survives_the_league(
        steps in 40usize..80,
        runs in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = arena_cfg(steps, runs, seed, 1);
        let rows = {
            let entrants = contenders();
            run_league(&cfg, &entrants, |s| paper_trace(N, steps, s), false).rows
        };
        let full = &rows[0];
        prop_assert_eq!(&full.strategy, "spaa93-full");

        // Re-simulate directly with the same per-run streams.
        let params = Params::new(N, 1, 1.1, 4).expect("valid params");
        let warmup = (steps as f64 * 0.25) as usize;
        let mut recorder = LoadRecorder::new(warmup, 3.0);
        let mut ops = 0u64;
        for r in 0..runs {
            let mut balancer = Cluster::new(params, stream_seed(seed, r as u64, StreamId::Balancer));
            let trace = paper_trace(N, steps, stream_seed(seed, r as u64, StreamId::Workload));
            let mut replay = trace.replay();
            let mut plan = cfg.faults.clone().expect("faults set");
            plan.seed = stream_seed(plan.seed, r as u64, StreamId::Faults);
            let injector = FaultInjector::new(plan, N).expect("valid plan");
            let mut run_recorder = LoadRecorder::new(warmup, 3.0);
            let mut events = Vec::new();
            let mut loads = Vec::new();
            for t in 0..steps {
                replay.events_at(t, &mut events);
                balancer.step_masked(&events, &injector.mask_at(t as u64));
                balancer.loads_into(&mut loads);
                run_recorder.record(&loads);
            }
            recorder.merge(&run_recorder);
            ops += balancer.metrics().balance_ops;
        }
        prop_assert_eq!(full.ops_per_run, ops as f64 / runs as f64);
        prop_assert_eq!(full.mean_ratio, recorder.mean_ratio());
        prop_assert_eq!(full.worst_ratio, recorder.worst_ratio());
    }

    /// Conservation and crash-freezing for the four literature
    /// balancers, under an arbitrary crash window: a frozen processor's
    /// load never changes while it is down, no packet is created or
    /// destroyed, and `loads_into` agrees with `loads`.
    #[test]
    fn literature_balancers_conserve_and_freeze(
        which in 0usize..4,
        seed in 0u64..u64::MAX,
        crash_proc in 0usize..N,
        crash_at in 5usize..20,
        crash_len in 1usize..20,
        steps in 40usize..70,
    ) {
        let mut balancer: Box<dyn LoadBalancer> = match which {
            0 => Box::new(Quasirandom::new(cube())),
            1 => Box::new(DynamicAveraging::new(cube(), seed)),
            2 => Box::new(LocallyOptimal::new(cube())),
            _ => Box::new(DimensionExchange::new(cube())),
        };
        let mut mask = vec![false; N];
        let mut events = vec![LoadEvent::Idle; N];
        let mut loads = Vec::new();
        for t in 0..steps {
            // Deterministic generate-only workload (no consumes, so the
            // total must equal the generated counter exactly).
            for (i, e) in events.iter_mut().enumerate() {
                *e = if (t + i) % 3 != 0 {
                    LoadEvent::Generate
                } else {
                    LoadEvent::Idle
                };
            }
            let down = t >= crash_at && t < crash_at + crash_len;
            mask[crash_proc] = down;
            let frozen = balancer.loads()[crash_proc];
            balancer.step_masked(&events, &mask);
            balancer.loads_into(&mut loads);
            prop_assert_eq!(&loads, &balancer.loads(), "loads_into agrees");
            if down {
                prop_assert_eq!(loads[crash_proc], frozen, "crashed proc frozen at t={}", t);
            }
            let total: u64 = loads.iter().sum();
            prop_assert_eq!(total, balancer.metrics().generated, "conservation at t={}", t);
        }
        prop_assert!(balancer.metrics().generated > 0);
    }
}
