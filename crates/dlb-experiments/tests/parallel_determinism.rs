//! Property tests: for arbitrary small experiment shapes, the parallel
//! harness aggregates to output byte-identical to the sequential run.
//!
//! "Byte-identical" is checked on the `Debug` rendering of the full
//! result (which includes every `f64` digit-exactly) — the same
//! guarantee the `--jobs` flag makes for the binaries' CSV/JSON output.

use dlb_core::{ExchangePolicy, Params};
use dlb_experiments::quality::QualityCurves;
use dlb_experiments::{balancing_quality, distribution_at, table1_row};
use proptest::{prop_assert_eq, proptest};

fn render(q: &QualityCurves) -> String {
    format!("{:?} {:?} {:?}", q.mean, q.min, q.max)
}

proptest! {
    #[test]
    fn quality_curves_parallel_equals_sequential(
        n_idx in 0usize..3,
        delta_idx in 0usize..2,
        f_idx in 0usize..3,
        steps in 10usize..40,
        runs in 1usize..6,
        jobs in 2usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let n = [4usize, 6, 9][n_idx];
        let delta = [1usize, 2][delta_idx];
        let f = [1.1f64, 1.4, 1.8][f_idx];
        let params = Params::new(n, delta, f, 4).expect("valid small params");
        let seq = balancing_quality(params, steps, runs, seed, 1);
        let par = balancing_quality(params, steps, runs, seed, jobs);
        prop_assert_eq!(render(&seq), render(&par));
    }

    #[test]
    fn distribution_parallel_equals_sequential(
        steps in 20usize..50,
        runs in 1usize..5,
        jobs in 2usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let params = Params::new(6, 1, 1.2, 4).expect("valid small params");
        let checkpoints = [steps / 4, steps - 1];
        let seq = distribution_at(params, steps, &checkpoints, runs, seed, 1);
        let par = distribution_at(params, steps, &checkpoints, runs, seed, jobs);
        prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    #[test]
    fn table1_parallel_equals_sequential(
        steps in 20usize..60,
        runs in 1usize..6,
        jobs in 2usize..6,
        c_idx in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let c = [2usize, 4, 8][c_idx];
        let seq = table1_row(8, steps, runs, c, ExchangePolicy::Strict, seed, 1);
        let par = table1_row(8, steps, runs, c, ExchangePolicy::Strict, seed, jobs);
        prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }
}
