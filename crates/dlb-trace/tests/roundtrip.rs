//! Property tests: every `TraceEvent` survives event → JSONL → event,
//! and the re-rendered line is byte-identical to the first rendering
//! (the invariant the CI trace-schema gate relies on).

use dlb_trace::TraceEvent;
use proptest::prelude::*;

const STRATEGY_NAMES: [&str; 4] = ["spaa93-full", "spaa93-simple", "random", "async"];
const FAULT_KINDS: [&str; 4] = ["loss", "transfer_loss", "duplicate", "crash"];
const COUNTER_NAMES: [&str; 6] = [
    "balance_ops",
    "packets_migrated",
    "markers_migrated",
    "messages",
    "generated",
    "consumed",
];

fn check(ev: TraceEvent) -> Result<(), TestCaseError> {
    let line = ev.to_line();
    let back = TraceEvent::from_line(&line)
        .map_err(|e| TestCaseError::fail(format!("parse failed: {e} on {line}")))?;
    prop_assert_eq!(&ev, &back, "value round-trip, line: {}", line);
    prop_assert_eq!(&line, &back.to_line(), "byte round-trip");
    Ok(())
}

proptest! {
    #[test]
    fn run_started_round_trips(
        run in any::<u64>(),
        seed in any::<u64>(),
        n in any::<u64>(),
        name_idx in 0usize..STRATEGY_NAMES.len(),
        delta in any::<u64>(),
        // Mix fractional and whole-valued f (whole f64s render as bare
        // integers and must decode back losslessly).
        f_int in 0u32..8,
        f_frac in 0f64..1.0,
        whole in any::<bool>(),
        c in any::<u64>(),
    ) {
        let f = f_int as f64 + if whole { 0.0 } else { f_frac };
        check(TraceEvent::RunStarted {
            run, seed, n,
            strategy: STRATEGY_NAMES[name_idx].to_string(),
            delta, f, c,
        })?;
    }

    #[test]
    fn balance_initiated_round_trips(
        step in any::<u64>(),
        initiator in any::<u64>(),
        partners in prop::collection::vec(any::<u64>(), 0..8),
        t_int in 0u32..1000,
        t_frac in 0f64..1.0,
        whole in any::<bool>(),
    ) {
        let trigger = t_int as f64 + if whole { 0.0 } else { t_frac };
        check(TraceEvent::BalanceInitiated { step, initiator, partners, trigger })?;
    }

    #[test]
    fn packets_migrated_round_trips(
        step in any::<u64>(),
        initiator in any::<u64>(),
        count in any::<u64>(),
    ) {
        check(TraceEvent::PacketsMigrated { step, initiator, count })?;
    }

    #[test]
    fn marker_moved_round_trips(
        step in any::<u64>(),
        initiator in any::<u64>(),
        count in any::<u64>(),
    ) {
        check(TraceEvent::MarkerMoved { step, initiator, count })?;
    }

    #[test]
    fn fault_injected_round_trips(
        step in any::<u64>(),
        proc in any::<u64>(),
        kind_idx in 0usize..FAULT_KINDS.len(),
    ) {
        check(TraceEvent::FaultInjected {
            step, proc,
            kind: FAULT_KINDS[kind_idx].to_string(),
        })?;
    }

    #[test]
    fn crash_recovered_round_trips(step in any::<u64>(), proc in any::<u64>()) {
        check(TraceEvent::CrashRecovered { step, proc })?;
    }

    #[test]
    fn step_profile_round_trips(
        step in any::<u64>(),
        wall_ns in any::<u64>(),
        ops in any::<u64>(),
    ) {
        check(TraceEvent::StepProfile { step, wall_ns, ops })?;
    }

    #[test]
    fn step_delta_round_trips(
        step in any::<u64>(),
        picks in prop::collection::vec((0usize..COUNTER_NAMES.len(), any::<u64>()), 0..6),
    ) {
        // One entry per distinct counter, like the emitter produces
        // (duplicate object keys would not survive a round-trip).
        let mut seen = std::collections::HashSet::new();
        let counters: Vec<(String, u64)> = picks
            .into_iter()
            .filter(|(i, _)| seen.insert(*i))
            .map(|(i, v)| (COUNTER_NAMES[i].to_string(), v))
            .collect();
        check(TraceEvent::StepDelta { step, counters })?;
    }

    #[test]
    fn load_sample_round_trips(
        step in any::<u64>(),
        min in any::<u64>(),
        max in any::<u64>(),
        total in any::<u64>(),
    ) {
        check(TraceEvent::LoadSample { step, min, max, total })?;
    }

    #[test]
    fn request_routed_round_trips(
        step in any::<u64>(),
        req in any::<u64>(),
        shard in any::<u64>(),
    ) {
        check(TraceEvent::RequestRouted { step, req, shard })?;
    }

    #[test]
    fn request_completed_round_trips(
        step in any::<u64>(),
        req in any::<u64>(),
        shard in any::<u64>(),
        latency_ticks in any::<u64>(),
    ) {
        check(TraceEvent::RequestCompleted { step, req, shard, latency_ticks })?;
    }

    #[test]
    fn requests_redirected_round_trips(
        step in any::<u64>(),
        from in any::<u64>(),
        to in any::<u64>(),
        count in any::<u64>(),
    ) {
        check(TraceEvent::RequestsRedirected { step, from, to, count })?;
    }

    #[test]
    fn acceptor_handoff_round_trips(
        step in any::<u64>(),
        from in any::<u64>(),
        to in any::<u64>(),
        count in any::<u64>(),
    ) {
        check(TraceEvent::AcceptorHandoff { step, from, to, count })?;
    }

    #[test]
    fn run_finished_round_trips(run in any::<u64>()) {
        check(TraceEvent::RunFinished { run })?;
    }
}
