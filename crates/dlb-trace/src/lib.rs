//! Structured event tracing for the dlb simulators.
//!
//! The paper's §6 results bound the *number of balancing operations*
//! needed to track a workload change, and §7's claims are time-series
//! claims — neither is observable from end-of-run aggregates alone.
//! This crate defines a typed event vocabulary ([`TraceEvent`]), a
//! pluggable consumer trait ([`TraceSink`]) and three stock sinks:
//!
//! * [`NullSink`] — reports itself disabled so emitters skip event
//!   construction entirely; attaching it costs one branch per site.
//! * [`RingSink`] — keeps the last `cap` events in memory.
//! * [`FileSink`] — byte-stable JSONL via `dlb-json`'s insertion-ordered
//!   object rendering: the same run always produces the same bytes,
//!   which is what lets CI diff traces across `--jobs` values.
//!
//! Events carry a logical step/time so multi-threaded producers can
//! buffer locally and merge deterministically ([`merge_by_clock`]).
//!
//! The line format is versioned ([`SCHEMA_VERSION`]); parsers reject
//! lines they cannot round-trip, so the schema cannot drift silently.

use dlb_json::{req, FromJson, Json, ToJson};
use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// Version of the JSONL event schema emitted by [`TraceEvent::to_line`].
///
/// Bump on any change to tags, field names or field meaning, and record
/// the change in DESIGN.md.
///
/// v2 added the per-request serving events (`req`, `req_done`,
/// `redirect`); every v1 event renders byte-identically to v1.
///
/// v3 added `handoff` (`AcceptorHandoff`): a sharded wall-mode acceptor
/// sent a rebalance donation plan to a peer acceptor's inbox; every v2
/// event renders byte-identically to v2.
///
/// v4 added `arena` (`ArenaContender`): the balancer arena announces
/// which contender the following run belongs to, making a multi-strategy
/// league trace self-describing; every v3 event renders byte-identically
/// to v3.
pub const SCHEMA_VERSION: u64 = 4;

/// One observable event in a simulation run.
///
/// `step` is the substrate's logical clock: the driver step for the
/// synchronous clusters, simulated time for the desim event loop, and
/// packets-processed for the threaded runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A run began; carries enough of the configuration to make the
    /// trace self-describing (`trace_analyze` rebuilds the Lemma 5/6
    /// bounds from `n`, `delta`, `f`, `c`).
    RunStarted {
        run: u64,
        seed: u64,
        n: u64,
        strategy: String,
        delta: u64,
        f: f64,
        c: u64,
    },
    /// A processor's trigger fired and it started a balancing operation
    /// with the sampled `partners`. `trigger` is the f-factor ratio
    /// (current self-generated load over the value at the last balance).
    BalanceInitiated {
        step: u64,
        initiator: u64,
        partners: Vec<u64>,
        trigger: f64,
    },
    /// `count` packets left `initiator` during one balancing operation.
    PacketsMigrated {
        step: u64,
        initiator: u64,
        count: u64,
    },
    /// `count` borrowed-packet markers moved off `initiator`.
    MarkerMoved {
        step: u64,
        initiator: u64,
        count: u64,
    },
    /// The fault injector fired: `kind` is one of `loss`,
    /// `transfer_loss`, `duplicate` or `crash`.
    FaultInjected { step: u64, proc: u64, kind: String },
    /// A crashed processor rejoined.
    CrashRecovered { step: u64, proc: u64 },
    /// Wall-clock profile of one driver step (only emitted under
    /// `--profile`; wall times are machine-dependent by nature).
    StepProfile { step: u64, wall_ns: u64, ops: u64 },
    /// Per-step increments of the engine's `Metrics` counters (zero
    /// entries omitted). Summing the deltas over a run reproduces the
    /// run's final `Metrics` exactly.
    StepDelta {
        step: u64,
        counters: Vec<(String, u64)>,
    },
    /// Load distribution snapshot after one driver step.
    LoadSample {
        step: u64,
        min: u64,
        max: u64,
        total: u64,
    },
    /// `dlb-serve`: a request was placed on a shard (`step` is the
    /// arrival tick in simulated mode, elapsed ticks in wall mode).
    RequestRouted { step: u64, req: u64, shard: u64 },
    /// `dlb-serve`: a request finished service; `latency_ticks` is
    /// measured from its *scheduled* arrival (open-loop, so queue delay
    /// under overload is charged to the service, not hidden).
    RequestCompleted {
        step: u64,
        req: u64,
        shard: u64,
        latency_ticks: u64,
    },
    /// `dlb-serve`: `count` queued requests moved between shards — a
    /// trigger-rule rebalance or a crash redistribution.  The service
    /// analogue of `PacketsMigrated`.
    RequestsRedirected {
        step: u64,
        from: u64,
        to: u64,
        count: u64,
    },
    /// `dlb-serve` wall mode: acceptor `from` handed acceptor `to` a
    /// rebalance donation plan covering `count` queued requests (0 for
    /// a pure trigger-baseline reset).  Deliveries are traced at their
    /// landing as `req`/`redirect`; this event makes the cross-group
    /// control flow itself observable.
    AcceptorHandoff {
        step: u64,
        from: u64,
        to: u64,
        count: u64,
    },
    /// Balancer arena: the following run belongs to contender `label`
    /// (its `LoadBalancer::name` is `strategy`), driven by `seed`.  Like
    /// the run delimiters it orders by position, not by step.
    ArenaContender {
        run: u64,
        label: String,
        strategy: String,
        seed: u64,
    },
    /// A run finished.
    RunFinished { run: u64 },
}

impl TraceEvent {
    /// The logical step/time the event is anchored to (`None` for the
    /// run delimiters, which order by position instead).
    pub fn step(&self) -> Option<u64> {
        match self {
            TraceEvent::RunStarted { .. }
            | TraceEvent::ArenaContender { .. }
            | TraceEvent::RunFinished { .. } => None,
            TraceEvent::BalanceInitiated { step, .. }
            | TraceEvent::PacketsMigrated { step, .. }
            | TraceEvent::MarkerMoved { step, .. }
            | TraceEvent::FaultInjected { step, .. }
            | TraceEvent::CrashRecovered { step, .. }
            | TraceEvent::StepProfile { step, .. }
            | TraceEvent::StepDelta { step, .. }
            | TraceEvent::LoadSample { step, .. }
            | TraceEvent::RequestRouted { step, .. }
            | TraceEvent::RequestCompleted { step, .. }
            | TraceEvent::RequestsRedirected { step, .. }
            | TraceEvent::AcceptorHandoff { step, .. } => Some(*step),
        }
    }

    /// Renders the event as one compact JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().render()
    }

    /// Parses one JSONL line back into an event.
    pub fn from_line(line: &str) -> Result<TraceEvent, String> {
        let v = Json::parse(line)?;
        TraceEvent::from_json(&v)
    }
}

fn u(v: u64) -> Json {
    Json::Int(v as i128)
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        match self {
            TraceEvent::RunStarted {
                run,
                seed,
                n,
                strategy,
                delta,
                f,
                c,
            } => Json::Obj(vec![
                ("t".into(), "run_start".to_json()),
                ("run".into(), u(*run)),
                ("seed".into(), u(*seed)),
                ("n".into(), u(*n)),
                ("strategy".into(), strategy.to_json()),
                ("delta".into(), u(*delta)),
                ("f".into(), Json::Float(*f)),
                ("c".into(), u(*c)),
            ]),
            TraceEvent::BalanceInitiated {
                step,
                initiator,
                partners,
                trigger,
            } => Json::Obj(vec![
                ("t".into(), "balance".to_json()),
                ("step".into(), u(*step)),
                ("init".into(), u(*initiator)),
                (
                    "partners".into(),
                    Json::Arr(partners.iter().map(|&p| u(p)).collect()),
                ),
                ("trigger".into(), Json::Float(*trigger)),
            ]),
            TraceEvent::PacketsMigrated {
                step,
                initiator,
                count,
            } => Json::Obj(vec![
                ("t".into(), "packets".to_json()),
                ("step".into(), u(*step)),
                ("init".into(), u(*initiator)),
                ("count".into(), u(*count)),
            ]),
            TraceEvent::MarkerMoved {
                step,
                initiator,
                count,
            } => Json::Obj(vec![
                ("t".into(), "marker".to_json()),
                ("step".into(), u(*step)),
                ("init".into(), u(*initiator)),
                ("count".into(), u(*count)),
            ]),
            TraceEvent::FaultInjected { step, proc, kind } => Json::Obj(vec![
                ("t".into(), "fault".to_json()),
                ("step".into(), u(*step)),
                ("proc".into(), u(*proc)),
                ("kind".into(), kind.to_json()),
            ]),
            TraceEvent::CrashRecovered { step, proc } => Json::Obj(vec![
                ("t".into(), "recover".to_json()),
                ("step".into(), u(*step)),
                ("proc".into(), u(*proc)),
            ]),
            TraceEvent::StepProfile { step, wall_ns, ops } => Json::Obj(vec![
                ("t".into(), "profile".to_json()),
                ("step".into(), u(*step)),
                ("wall_ns".into(), u(*wall_ns)),
                ("ops".into(), u(*ops)),
            ]),
            TraceEvent::StepDelta { step, counters } => Json::Obj(vec![
                ("t".into(), "delta".to_json()),
                ("step".into(), u(*step)),
                (
                    "counters".into(),
                    Json::Obj(counters.iter().map(|(k, v)| (k.clone(), u(*v))).collect()),
                ),
            ]),
            TraceEvent::LoadSample {
                step,
                min,
                max,
                total,
            } => Json::Obj(vec![
                ("t".into(), "load".to_json()),
                ("step".into(), u(*step)),
                ("min".into(), u(*min)),
                ("max".into(), u(*max)),
                ("total".into(), u(*total)),
            ]),
            TraceEvent::RequestRouted { step, req, shard } => Json::Obj(vec![
                ("t".into(), "req".to_json()),
                ("step".into(), u(*step)),
                ("req".into(), u(*req)),
                ("shard".into(), u(*shard)),
            ]),
            TraceEvent::RequestCompleted {
                step,
                req,
                shard,
                latency_ticks,
            } => Json::Obj(vec![
                ("t".into(), "req_done".to_json()),
                ("step".into(), u(*step)),
                ("req".into(), u(*req)),
                ("shard".into(), u(*shard)),
                ("latency_ticks".into(), u(*latency_ticks)),
            ]),
            TraceEvent::RequestsRedirected {
                step,
                from,
                to,
                count,
            } => Json::Obj(vec![
                ("t".into(), "redirect".to_json()),
                ("step".into(), u(*step)),
                ("from".into(), u(*from)),
                ("to".into(), u(*to)),
                ("count".into(), u(*count)),
            ]),
            TraceEvent::AcceptorHandoff {
                step,
                from,
                to,
                count,
            } => Json::Obj(vec![
                ("t".into(), "handoff".to_json()),
                ("step".into(), u(*step)),
                ("from".into(), u(*from)),
                ("to".into(), u(*to)),
                ("count".into(), u(*count)),
            ]),
            TraceEvent::ArenaContender {
                run,
                label,
                strategy,
                seed,
            } => Json::Obj(vec![
                ("t".into(), "arena".to_json()),
                ("run".into(), u(*run)),
                ("label".into(), label.to_json()),
                ("strategy".into(), strategy.to_json()),
                ("seed".into(), u(*seed)),
            ]),
            TraceEvent::RunFinished { run } => Json::Obj(vec![
                ("t".into(), "run_end".to_json()),
                ("run".into(), u(*run)),
            ]),
        }
    }
}

impl FromJson for TraceEvent {
    fn from_json(v: &Json) -> Result<Self, String> {
        let tag: String = req(v, "t")?;
        match tag.as_str() {
            "run_start" => Ok(TraceEvent::RunStarted {
                run: req(v, "run")?,
                seed: req(v, "seed")?,
                n: req(v, "n")?,
                strategy: req(v, "strategy")?,
                delta: req(v, "delta")?,
                f: req(v, "f")?,
                c: req(v, "c")?,
            }),
            "balance" => Ok(TraceEvent::BalanceInitiated {
                step: req(v, "step")?,
                initiator: req(v, "init")?,
                partners: req(v, "partners")?,
                trigger: req(v, "trigger")?,
            }),
            "packets" => Ok(TraceEvent::PacketsMigrated {
                step: req(v, "step")?,
                initiator: req(v, "init")?,
                count: req(v, "count")?,
            }),
            "marker" => Ok(TraceEvent::MarkerMoved {
                step: req(v, "step")?,
                initiator: req(v, "init")?,
                count: req(v, "count")?,
            }),
            "fault" => Ok(TraceEvent::FaultInjected {
                step: req(v, "step")?,
                proc: req(v, "proc")?,
                kind: req(v, "kind")?,
            }),
            "recover" => Ok(TraceEvent::CrashRecovered {
                step: req(v, "step")?,
                proc: req(v, "proc")?,
            }),
            "profile" => Ok(TraceEvent::StepProfile {
                step: req(v, "step")?,
                wall_ns: req(v, "wall_ns")?,
                ops: req(v, "ops")?,
            }),
            "delta" => {
                let obj = dlb_json::field(v, "counters")?;
                let fields = match obj {
                    Json::Obj(fields) => fields,
                    _ => return Err("'counters' is not an object".into()),
                };
                let mut counters = Vec::with_capacity(fields.len());
                for (k, val) in fields {
                    counters.push((k.clone(), u64::from_json(val)?));
                }
                Ok(TraceEvent::StepDelta {
                    step: req(v, "step")?,
                    counters,
                })
            }
            "load" => Ok(TraceEvent::LoadSample {
                step: req(v, "step")?,
                min: req(v, "min")?,
                max: req(v, "max")?,
                total: req(v, "total")?,
            }),
            "req" => Ok(TraceEvent::RequestRouted {
                step: req(v, "step")?,
                req: req(v, "req")?,
                shard: req(v, "shard")?,
            }),
            "req_done" => Ok(TraceEvent::RequestCompleted {
                step: req(v, "step")?,
                req: req(v, "req")?,
                shard: req(v, "shard")?,
                latency_ticks: req(v, "latency_ticks")?,
            }),
            "redirect" => Ok(TraceEvent::RequestsRedirected {
                step: req(v, "step")?,
                from: req(v, "from")?,
                to: req(v, "to")?,
                count: req(v, "count")?,
            }),
            "handoff" => Ok(TraceEvent::AcceptorHandoff {
                step: req(v, "step")?,
                from: req(v, "from")?,
                to: req(v, "to")?,
                count: req(v, "count")?,
            }),
            "arena" => Ok(TraceEvent::ArenaContender {
                run: req(v, "run")?,
                label: req(v, "label")?,
                strategy: req(v, "strategy")?,
                seed: req(v, "seed")?,
            }),
            "run_end" => Ok(TraceEvent::RunFinished {
                run: req(v, "run")?,
            }),
            other => Err(format!("unknown event tag '{other}'")),
        }
    }
}

/// Consumer of trace events.
///
/// `record` takes the event by reference so a disabled sink costs no
/// clone; `enabled` lets emitters skip building events at all.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}

    /// Whether emitters should bother constructing events. Stock sinks
    /// return `true`; [`NullSink`] returns `false`, which is what makes
    /// "tracing disabled" a single predictable branch per site.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps the most recent `cap` events in memory.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap == 0` keeps none).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap,
            buf: VecDeque::new(),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the ring, returning the retained events oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
    }
}

/// Streams events as JSONL to a buffered writer; one event per line,
/// byte-stable for identical event sequences.
pub struct FileSink<W: std::io::Write> {
    out: std::io::BufWriter<W>,
}

impl FileSink<std::fs::File> {
    /// Creates (truncating) `path` and streams JSONL into it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(FileSink::from_writer(std::fs::File::create(path)?))
    }
}

impl<W: std::io::Write> FileSink<W> {
    /// Streams JSONL into an arbitrary writer (tests use `Vec<u8>`).
    pub fn from_writer(w: W) -> Self {
        FileSink {
            out: std::io::BufWriter::new(w),
        }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> std::io::Result<W> {
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: std::io::Write> TraceSink for FileSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        let mut line = event.to_line();
        line.push('\n');
        self.out
            .write_all(line.as_bytes())
            .expect("trace write failed");
    }

    fn flush(&mut self) {
        self.out.flush().expect("trace flush failed");
    }
}

/// Cheaply cloneable, thread-safe handle to a sink.
///
/// Engines store an `Option<SharedSink>`; `enabled` is sampled once at
/// construction so the per-event hot path with a [`NullSink`] attached
/// is a branch, not a mutex acquisition.
#[derive(Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<dyn TraceSink + Send>>,
    enabled: bool,
}

impl SharedSink {
    /// Wraps any sink in a shared handle.
    pub fn new<S: TraceSink + Send + 'static>(sink: S) -> Self {
        let enabled = sink.enabled();
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
            enabled,
        }
    }

    /// Whether emitters should construct events for this sink.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event.
    pub fn record(&self, event: &TraceEvent) {
        if self.enabled {
            self.inner.lock().expect("sink lock").record(event);
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.inner.lock().expect("sink lock").flush();
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, event: &TraceEvent) {
        SharedSink::record(self, event);
    }

    fn flush(&mut self) {
        SharedSink::flush(self);
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

/// In-memory collector whose contents can be taken back out — the
/// bridge between engine-held [`SharedSink`]s and callers that need the
/// events afterwards (e.g. to write runs to a file in run-index order).
#[derive(Clone, Default)]
pub struct BufferSink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl BufferSink {
    /// An empty collector.
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// A [`SharedSink`] handle feeding this collector.
    pub fn handle(&self) -> SharedSink {
        SharedSink::new(self.clone())
    }

    /// Takes the collected events, leaving the collector empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("buffer lock"))
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.lock().expect("buffer lock").push(event.clone());
    }
}

/// Deterministically merges per-producer event streams by logical
/// clock.
///
/// Each stream is a producer's locally-ordered `(clock, event)` buffer.
/// Events are ordered by `(clock, producer index, position)` — a total
/// order independent of thread scheduling, so the merged trace of a
/// threaded run is reproducible.
pub fn merge_by_clock(streams: Vec<Vec<(u64, TraceEvent)>>) -> Vec<TraceEvent> {
    let mut keyed: Vec<(u64, usize, usize, TraceEvent)> = Vec::new();
    for (producer, stream) in streams.into_iter().enumerate() {
        for (pos, (clock, event)) in stream.into_iter().enumerate() {
            keyed.push((clock, producer, pos, event));
        }
    }
    keyed.sort_by_key(|&(clock, producer, pos, _)| (clock, producer, pos));
    keyed.into_iter().map(|(_, _, _, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStarted {
                run: 3,
                seed: 42,
                n: 64,
                strategy: "spaa93-full".into(),
                delta: 1,
                f: 1.1,
                c: 4,
            },
            TraceEvent::BalanceInitiated {
                step: 17,
                initiator: 5,
                partners: vec![9, 2, 61],
                trigger: 1.25,
            },
            TraceEvent::PacketsMigrated {
                step: 17,
                initiator: 5,
                count: 12,
            },
            TraceEvent::MarkerMoved {
                step: 17,
                initiator: 5,
                count: 2,
            },
            TraceEvent::FaultInjected {
                step: 30,
                proc: 7,
                kind: "loss".into(),
            },
            TraceEvent::CrashRecovered { step: 44, proc: 7 },
            TraceEvent::StepProfile {
                step: 17,
                wall_ns: 12345,
                ops: 3,
            },
            TraceEvent::StepDelta {
                step: 17,
                counters: vec![("balance_ops".into(), 1), ("packets_migrated".into(), 12)],
            },
            TraceEvent::LoadSample {
                step: 17,
                min: 0,
                max: 31,
                total: 512,
            },
            TraceEvent::RequestRouted {
                step: 90,
                req: 1001,
                shard: 6,
            },
            TraceEvent::RequestCompleted {
                step: 95,
                req: 1001,
                shard: 6,
                latency_ticks: 5,
            },
            TraceEvent::RequestsRedirected {
                step: 96,
                from: 6,
                to: 2,
                count: 14,
            },
            TraceEvent::AcceptorHandoff {
                step: 97,
                from: 0,
                to: 1,
                count: 9,
            },
            TraceEvent::ArenaContender {
                run: 3,
                label: "quasirandom".into(),
                strategy: "quasirandom".into(),
                seed: 99,
            },
            TraceEvent::RunFinished { run: 3 },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        for ev in sample_events() {
            let line = ev.to_line();
            let back = TraceEvent::from_line(&line).expect("parse");
            assert_eq!(ev, back, "line: {line}");
            // Byte stability: re-rendering the parsed event reproduces
            // the original line exactly.
            assert_eq!(line, back.to_line());
        }
    }

    #[test]
    fn whole_valued_trigger_still_round_trips() {
        // `{}` renders 2.0 as "2", which parses back as an integer; the
        // f64 decode must absorb that.
        let ev = TraceEvent::BalanceInitiated {
            step: 1,
            initiator: 0,
            partners: vec![],
            trigger: 2.0,
        };
        let back = TraceEvent::from_line(&ev.to_line()).expect("parse");
        assert_eq!(ev, back);
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(TraceEvent::from_line("{\"t\":\"nope\"}").is_err());
        assert!(TraceEvent::from_line("not json").is_err());
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(!SharedSink::new(NullSink).enabled());
        assert!(SharedSink::new(RingSink::new(4)).enabled());
    }

    #[test]
    fn ring_sink_keeps_last_cap_events() {
        let mut ring = RingSink::new(2);
        for ev in sample_events() {
            ring.record(&ev);
        }
        assert_eq!(ring.len(), 2);
        let kept = ring.into_events();
        let all = sample_events();
        assert_eq!(kept, all[all.len() - 2..].to_vec());
    }

    #[test]
    fn file_sink_writes_one_line_per_event() {
        let mut sink = FileSink::from_writer(Vec::new());
        for ev in sample_events() {
            sink.record(&ev);
        }
        let bytes = sink.into_inner().expect("inner");
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for (line, ev) in lines.iter().zip(sample_events()) {
            assert_eq!(TraceEvent::from_line(line).expect("parse"), ev);
        }
    }

    #[test]
    fn buffer_sink_hands_events_back() {
        let buf = BufferSink::new();
        let handle = buf.handle();
        for ev in sample_events() {
            handle.record(&ev);
        }
        assert_eq!(buf.take(), sample_events());
        assert!(buf.take().is_empty());
    }

    #[test]
    fn merge_by_clock_is_deterministic_and_clock_ordered() {
        let a = vec![
            (1, TraceEvent::RunFinished { run: 0 }),
            (5, TraceEvent::RunFinished { run: 1 }),
        ];
        let b = vec![
            (1, TraceEvent::RunFinished { run: 2 }),
            (3, TraceEvent::RunFinished { run: 3 }),
        ];
        let merged = merge_by_clock(vec![a.clone(), b.clone()]);
        // Clock 1: producer 0 before producer 1; then clocks 3, 5.
        let runs: Vec<u64> = merged
            .iter()
            .map(|e| match e {
                TraceEvent::RunFinished { run } => *run,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(runs, vec![0, 2, 3, 1]);
        // Stream order in, same answer out — keyed by producer index.
        assert_eq!(merged, merge_by_clock(vec![a, b]));
    }
}
