//! PR-5 intra-step parallelism contract: stepping with `step_jobs > 1`
//! (draw phase sequential, balance operations executed in conflict-free
//! waves on the worker pool) must be *bit-identical* to the sequential
//! engines — and those are already bit-identical to the dense reference
//! implementations (see `opt_equivalence.rs`).  These proptests replay
//! random small instances three ways — parallel optimized, sequential
//! optimized, and `dlb_core::reference` — and compare loads, metrics,
//! the full `d`/`b` marker matrices, and the merged trace byte stream
//! for every `step_jobs` in {1, 2, 4, 8}.

use dlb_core::reference::{RefCluster, RefSimpleCluster};
use dlb_core::{Cluster, LoadBalancer, LoadEvent, Params, SimpleCluster, DEFAULT_WAVE_THRESHOLD};
use dlb_trace::BufferSink;
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

const STEP_JOBS: [usize; 4] = [1, 2, 4, 8];

/// Both flush paths: 0 forces the wave executor for every flush; the
/// default makes these small instances take the sequential fallback.
const THRESHOLDS: [usize; 2] = [0, DEFAULT_WAVE_THRESHOLD];

/// Same mixed workload shape as `opt_equivalence.rs`: build-up first,
/// drain-down after the halfway point.
fn events_at(rng: &mut ChaCha8Rng, n: usize, t: usize, steps: usize) -> Vec<LoadEvent> {
    let draining = t * 2 > steps;
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen();
            let (p_gen, p_con) = if draining { (0.2, 0.6) } else { (0.55, 0.3) };
            if x < p_gen {
                LoadEvent::Generate
            } else if x < p_gen + p_con {
                LoadEvent::Consume
            } else {
                LoadEvent::Idle
            }
        })
        .collect()
}

/// The trace stream as raw JSONL bytes — the strongest equality we can
/// ask for (field order, numeric formatting, event order).
fn trace_bytes(buffer: &BufferSink) -> Vec<u8> {
    let mut out = Vec::new();
    for ev in buffer.take() {
        out.extend_from_slice(ev.to_line().as_bytes());
        out.push(b'\n');
    }
    out
}

proptest! {
    /// Full virtual-class model: parallel == sequential == reference on
    /// loads, metrics, the complete `d`/`b` matrices, and trace bytes.
    #[test]
    fn full_cluster_is_bit_identical_across_step_jobs(
        n_idx in 0usize..4,
        delta_idx in 0usize..2,
        initial in 0u64..3,
        seed in 0u64..1_000_000,
    ) {
        let n = [2usize, 3, 5, 9][n_idx];
        let delta = [1usize, 2][delta_idx].min(n - 1);
        let params = Params::new(n, delta, 1.2, 4).unwrap();
        let initial = initial * 5;
        let steps = 50;

        // Sequential baseline plus the dense reference, traced.
        let mut seq = Cluster::with_initial_load(params, seed, initial);
        let seq_buf = BufferSink::new();
        seq.set_trace_sink(seq_buf.handle());
        let mut reference = RefCluster::with_initial_load(params, seed, initial);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let mut trace = Vec::new();
        for t in 0..steps {
            let events = events_at(&mut ev_rng, n, t, steps);
            seq.step(&events);
            reference.step(&events);
            trace.push(events);
        }
        prop_assert_eq!(seq.loads(), reference.loads());
        prop_assert_eq!(seq.metrics(), reference.metrics());
        let seq_trace = trace_bytes(&seq_buf);

        for jobs in STEP_JOBS {
          for threshold in THRESHOLDS {
            let mut par = Cluster::with_initial_load(params, seed, initial);
            par.set_step_jobs(jobs);
            par.set_wave_threshold(threshold);
            let par_buf = BufferSink::new();
            par.set_trace_sink(par_buf.handle());
            for events in &trace {
                par.step(events);
            }
            prop_assert_eq!(
                par.loads(), seq.loads(), "loads diverged at step_jobs={}", jobs);
            prop_assert_eq!(
                par.metrics(), seq.metrics(), "metrics diverged at step_jobs={}", jobs);
            for i in 0..n {
                for c in 0..n {
                    prop_assert_eq!(
                        par.d(i, c), seq.d(i, c),
                        "d[{}][{}] diverged at step_jobs={}", i, c, jobs);
                    prop_assert_eq!(
                        par.b(i, c), seq.b(i, c),
                        "b[{}][{}] diverged at step_jobs={}", i, c, jobs);
                }
            }
            prop_assert_eq!(
                trace_bytes(&par_buf), seq_trace.clone(),
                "trace bytes diverged at step_jobs={}", jobs);
            prop_assert!(par.check_invariants().is_ok());
          }
        }
    }

    /// Practical variant under a changing down-mask: parallel ==
    /// sequential == reference on loads, metrics, and trace bytes.
    #[test]
    fn simple_cluster_is_bit_identical_across_step_jobs(
        n_idx in 0usize..3,
        delta_idx in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let n = [3usize, 6, 10][n_idx];
        let delta = [1usize, 3][delta_idx].min(n - 1);
        let params = Params::new(n, delta, 1.3, 4).unwrap();
        let steps = 60;

        let mut seq = SimpleCluster::new(params, seed);
        let seq_buf = BufferSink::new();
        seq.set_trace_sink(seq_buf.handle());
        let mut reference = RefSimpleCluster::new(params, seed);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let mut mask_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
        let mut trace = Vec::new();
        let mut down = vec![false; n];
        for t in 0..steps {
            if t % 7 == 0 {
                for f in down.iter_mut() {
                    *f = mask_rng.gen_bool(0.25);
                }
            }
            let events = events_at(&mut ev_rng, n, t, steps);
            seq.step_masked(&events, &down);
            reference.step_masked(&events, &down);
            trace.push((events, down.clone()));
        }
        prop_assert_eq!(seq.loads(), reference.loads());
        prop_assert_eq!(seq.metrics(), reference.metrics());
        let seq_trace = trace_bytes(&seq_buf);

        for jobs in STEP_JOBS {
          for threshold in THRESHOLDS {
            let mut par = SimpleCluster::new(params, seed);
            par.set_step_jobs(jobs);
            par.set_wave_threshold(threshold);
            let par_buf = BufferSink::new();
            par.set_trace_sink(par_buf.handle());
            for (events, down) in &trace {
                par.step_masked(events, down);
            }
            prop_assert_eq!(
                par.loads(), seq.loads(), "loads diverged at step_jobs={}", jobs);
            prop_assert_eq!(
                par.metrics(), seq.metrics(), "metrics diverged at step_jobs={}", jobs);
            prop_assert_eq!(
                trace_bytes(&par_buf), seq_trace.clone(),
                "trace bytes diverged at step_jobs={}", jobs);
            prop_assert!(par.check_invariants().is_ok());
          }
        }
    }
}
