//! PR-9 sparse-engine contract: the compressed-row [`Cluster`] must be
//! *bit-identical* to both the retired flat-arena [`DenseCluster`] and
//! the naive [`RefCluster`] oracle — same RNG consumption, same loads,
//! same metrics, same full `d`/`b` matrices, same trace bytes, on every
//! reachable state, for every `step_jobs` setting and under crash
//! masks.  These proptests drive all three side by side on random small
//! instances and compare full state after every step, mirroring the
//! PR-4 `opt_equivalence` suite one engine generation later.

use dlb_core::reference::RefCluster;
use dlb_core::{Cluster, DenseCluster, ExchangePolicy, LoadBalancer, LoadEvent, Params};
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Deterministic mixed workload: per-processor generate/consume/idle
/// draws from a seeded stream, biased by `phase` so runs visit both
/// load build-up and drain-down regimes.
fn events_at(rng: &mut ChaCha8Rng, n: usize, t: usize, steps: usize) -> Vec<LoadEvent> {
    let draining = t * 2 > steps;
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen();
            let (p_gen, p_con) = if draining { (0.2, 0.6) } else { (0.55, 0.3) };
            if x < p_gen {
                LoadEvent::Generate
            } else if x < p_gen + p_con {
                LoadEvent::Consume
            } else {
                LoadEvent::Idle
            }
        })
        .collect()
}

/// Renders a trace event stream to its serialized line form — the byte
/// representation persisted by `FileSink` — so stream comparisons catch
/// divergence in any field, not just the fields a struct `==` sees.
fn trace_lines(events: &[dlb_trace::TraceEvent]) -> Vec<String> {
    events.iter().map(|e| e.to_line()).collect()
}

proptest! {
    #[test]
    fn sparse_matches_dense_and_reference_step_for_step(
        n_idx in 0usize..4,
        delta_idx in 0usize..2,
        c_idx in 0usize..3,
        aggressive in 0usize..2,
        jobs_idx in 0usize..2,
        initial in 0u64..3,
        seed in 0u64..1_000_000,
    ) {
        let n = [2usize, 3, 5, 9][n_idx];
        let delta = [1usize, 2][delta_idx].min(n - 1);
        let c_borrow = [0usize, 2, 4][c_idx];
        let jobs = [1usize, 4][jobs_idx];
        let mut params = Params::new(n, delta, 1.2, c_borrow).unwrap();
        if aggressive == 1 {
            params = params.with_exchange(ExchangePolicy::Aggressive);
        }
        let initial = initial * 5;
        let mut sparse = Cluster::with_initial_load(params, seed, initial);
        let mut dense = DenseCluster::with_initial_load(params, seed, initial);
        let mut oracle = RefCluster::with_initial_load(params, seed, initial);
        sparse.set_step_jobs(jobs);
        dense.set_step_jobs(jobs);
        // Threshold 0 forces the wave executor even for tiny flushes so
        // the parallel path is exercised at these sizes.
        sparse.set_wave_threshold(0);
        dense.set_wave_threshold(0);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let steps = 60;
        for t in 0..steps {
            let events = events_at(&mut ev_rng, n, t, steps);
            sparse.step(&events);
            dense.step(&events);
            oracle.step(&events);
            prop_assert_eq!(sparse.loads(), oracle.loads(), "loads diverged at step {}", t);
            prop_assert_eq!(sparse.loads(), dense.loads(), "dense loads diverged at step {}", t);
            prop_assert_eq!(sparse.metrics(), oracle.metrics(), "metrics diverged at step {}", t);
            prop_assert_eq!(sparse.metrics(), dense.metrics(), "dense metrics diverged at step {}", t);
            for i in 0..n {
                let (active_d, active_b) = sparse.active_classes(i);
                let mut seen_d = 0usize;
                let mut seen_b = 0usize;
                for c in 0..n {
                    let d = sparse.d(i, c);
                    let b = sparse.b(i, c);
                    prop_assert_eq!(d, oracle.d(i, c), "d[{}][{}] at step {}", i, c, t);
                    prop_assert_eq!(b, oracle.b(i, c), "b[{}][{}] at step {}", i, c, t);
                    prop_assert_eq!(d, dense.d(i, c), "dense d[{}][{}] at step {}", i, c, t);
                    prop_assert_eq!(b, dense.b(i, c), "dense b[{}][{}] at step {}", i, c, t);
                    seen_d += (d > 0) as usize;
                    seen_b += (b > 0) as usize;
                }
                prop_assert_eq!(active_d, seen_d, "active d count of {} at step {}", i, t);
                prop_assert_eq!(active_b, seen_b, "active b count of {} at step {}", i, t);
            }
        }
        prop_assert!(sparse.check_invariants().is_ok());
        prop_assert!(dense.check_invariants().is_ok());
        prop_assert!(oracle.check_invariants().is_ok());
        // The compressed representation can never exceed two dense
        // matrices plus the fixed per-processor vectors by construction;
        // at small n this is a smoke check, at large n the point.
        prop_assert!(sparse.state_bytes() > 0);
    }

    #[test]
    fn sparse_matches_dense_under_crash_masks(
        n_idx in 0usize..3,
        delta_idx in 0usize..2,
        jobs_idx in 0usize..2,
        initial in 0u64..3,
        seed in 0u64..1_000_000,
    ) {
        let n = [3usize, 6, 10][n_idx];
        let delta = [1usize, 2][delta_idx].min(n - 1);
        let jobs = [1usize, 4][jobs_idx];
        let params = Params::new(n, delta, 1.3, 4).unwrap();
        let initial = initial * 10;
        let mut sparse = Cluster::with_initial_load(params, seed, initial);
        let mut dense = DenseCluster::with_initial_load(params, seed, initial);
        let mut oracle = RefCluster::with_initial_load(params, seed, initial);
        sparse.set_step_jobs(jobs);
        dense.set_step_jobs(jobs);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let mut mask_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
        let steps = 80;
        let mut down = vec![false; n];
        for t in 0..steps {
            // Flip the mask every few steps so runs mix crashed and
            // all-alive phases; the full engines use the event-masking
            // `step_masked` default, which must agree bit-for-bit.
            if t % 7 == 0 {
                for f in down.iter_mut() {
                    *f = mask_rng.gen_bool(0.25);
                }
            }
            let events = events_at(&mut ev_rng, n, t, steps);
            sparse.step_masked(&events, &down);
            dense.step_masked(&events, &down);
            // The oracle has no mask entry point; apply the exact
            // event-masking rule the trait default uses.
            let masked: Vec<LoadEvent> = events
                .iter()
                .zip(down.iter())
                .map(|(&e, &d)| if d { LoadEvent::Idle } else { e })
                .collect();
            oracle.step(&masked);
            prop_assert_eq!(sparse.loads(), dense.loads(), "loads diverged at step {}", t);
            prop_assert_eq!(sparse.loads(), oracle.loads(), "oracle loads diverged at step {}", t);
            prop_assert_eq!(sparse.metrics(), dense.metrics(), "metrics diverged at step {}", t);
        }
        prop_assert!(sparse.check_invariants().is_ok());
        prop_assert!(dense.check_invariants().is_ok());
    }

    #[test]
    fn sparse_and_dense_emit_identical_trace_bytes(
        n_idx in 0usize..3,
        jobs_idx in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let n = [3usize, 5, 9][n_idx];
        let jobs = [1usize, 4][jobs_idx];
        let params = Params::paper_section7(n);
        let mut sparse = Cluster::new(params, seed);
        let mut dense = DenseCluster::new(params, seed);
        let sparse_buf = dlb_trace::BufferSink::new();
        let dense_buf = dlb_trace::BufferSink::new();
        sparse.set_trace_sink(sparse_buf.handle());
        dense.set_trace_sink(dense_buf.handle());
        sparse.set_step_jobs(jobs);
        dense.set_step_jobs(jobs);
        sparse.set_wave_threshold(0);
        dense.set_wave_threshold(0);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let steps = 50;
        for t in 0..steps {
            let events = events_at(&mut ev_rng, n, t, steps);
            sparse.step(&events);
            dense.step(&events);
        }
        let sparse_events = sparse_buf.take();
        let dense_events = dense_buf.take();
        prop_assert!(
            !sparse_events.is_empty(),
            "workload must actually trigger balancing for the check to bite"
        );
        prop_assert_eq!(
            trace_lines(&sparse_events),
            trace_lines(&dense_events),
            "trace streams diverged"
        );
    }
}
