//! PR-4 optimization contract: the arena/active-list [`Cluster`] and the
//! candidate-caching [`SimpleCluster`] must be *bit-identical* to the
//! dense reference implementations retained in `dlb_core::reference` —
//! same RNG consumption, same loads, same metrics, same matrices, on
//! every reachable state.  These proptests drive both side by side on
//! random small instances and compare full state after every step.

use dlb_core::reference::{RefCluster, RefSimpleCluster};
use dlb_core::{Cluster, ExchangePolicy, LoadBalancer, LoadEvent, Params, SimpleCluster};
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Deterministic mixed workload: per-processor generate/consume/idle
/// draws from a seeded stream, biased by `phase` so runs visit both
/// load build-up and drain-down regimes.
fn events_at(rng: &mut ChaCha8Rng, n: usize, t: usize, steps: usize) -> Vec<LoadEvent> {
    let draining = t * 2 > steps;
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen();
            let (p_gen, p_con) = if draining { (0.2, 0.6) } else { (0.55, 0.3) };
            if x < p_gen {
                LoadEvent::Generate
            } else if x < p_gen + p_con {
                LoadEvent::Consume
            } else {
                LoadEvent::Idle
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn full_cluster_matches_reference_step_for_step(
        n_idx in 0usize..4,
        delta_idx in 0usize..2,
        c_idx in 0usize..3,
        aggressive in 0usize..2,
        initial in 0u64..3,
        seed in 0u64..1_000_000,
    ) {
        let n = [2usize, 3, 5, 9][n_idx];
        let delta = [1usize, 2][delta_idx].min(n - 1);
        let c_borrow = [0usize, 2, 4][c_idx];
        let mut params = Params::new(n, delta, 1.2, c_borrow).unwrap();
        if aggressive == 1 {
            params = params.with_exchange(ExchangePolicy::Aggressive);
        }
        let initial = initial * 5;
        let mut fast = Cluster::with_initial_load(params, seed, initial);
        let mut slow = RefCluster::with_initial_load(params, seed, initial);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let steps = 60;
        for t in 0..steps {
            let events = events_at(&mut ev_rng, n, t, steps);
            fast.step(&events);
            slow.step(&events);
            prop_assert_eq!(fast.loads(), slow.loads(), "loads diverged at step {}", t);
            prop_assert_eq!(fast.metrics(), slow.metrics(), "metrics diverged at step {}", t);
            for i in 0..n {
                for c in 0..n {
                    prop_assert_eq!(fast.d(i, c), slow.d(i, c), "d[{}][{}] at step {}", i, c, t);
                    prop_assert_eq!(fast.b(i, c), slow.b(i, c), "b[{}][{}] at step {}", i, c, t);
                }
            }
        }
        prop_assert!(fast.check_invariants().is_ok());
        prop_assert!(slow.check_invariants().is_ok());
    }

    #[test]
    fn simple_cluster_matches_reference_under_changing_masks(
        n_idx in 0usize..3,
        delta_idx in 0usize..2,
        initial in 0u64..3,
        seed in 0u64..1_000_000,
    ) {
        let n = [3usize, 6, 10][n_idx];
        let delta = [1usize, 3][delta_idx].min(n - 1);
        let params = Params::new(n, delta, 1.3, 4).unwrap();
        let initial = initial * 10;
        let mut fast = SimpleCluster::with_initial_load(params, seed, initial);
        let mut slow = RefSimpleCluster::with_initial_load(params, seed, initial);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let mut mask_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
        let steps = 80;
        let mut down = vec![false; n];
        for t in 0..steps {
            // Flip the mask every few steps so the cached candidate list
            // is exercised through rebuilds, including all-alive phases.
            if t % 7 == 0 {
                for f in down.iter_mut() {
                    *f = mask_rng.gen_bool(0.25);
                }
            }
            let events = events_at(&mut ev_rng, n, t, steps);
            fast.step_masked(&events, &down);
            slow.step_masked(&events, &down);
            prop_assert_eq!(fast.loads(), slow.loads(), "loads diverged at step {}", t);
            prop_assert_eq!(fast.metrics(), slow.metrics(), "metrics diverged at step {}", t);
        }
        prop_assert!(fast.check_invariants().is_ok());
        prop_assert!(slow.check_invariants().is_ok());
    }

    #[test]
    fn simple_cluster_matches_reference_unmasked(
        n_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let n = [2usize, 5, 12][n_idx];
        let params = Params::paper_section7(n);
        let mut fast = SimpleCluster::new(params, seed);
        let mut slow = RefSimpleCluster::new(params, seed);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let steps = 100;
        for t in 0..steps {
            let events = events_at(&mut ev_rng, n, t, steps);
            fast.step(&events);
            slow.step(&events);
            prop_assert_eq!(fast.loads(), slow.loads(), "loads diverged at step {}", t);
            prop_assert_eq!(fast.metrics(), slow.metrics(), "metrics diverged at step {}", t);
        }
    }
}
