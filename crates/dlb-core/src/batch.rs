//! Multi-packet time steps.
//!
//! §2: *"We can prove the same results if the processors are allowed to
//! generate/consume up to a constant number of packets per time step …,
//! since this can be modeled as a consecutive generation/consumption of
//! one load unit."*  [`step_batch`] implements exactly that modelling: a
//! batch step decomposes into rounds of single-packet events, interleaved
//! across processors so no processor runs ahead of the others by more
//! than one packet.

use crate::strategy::{LoadBalancer, LoadEvent};

/// What a processor does in one *batch* step: generate `generate` packets
/// and consume up to `consume` packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchEvent {
    /// Packets to generate this step.
    pub generate: u32,
    /// Packets to consume this step (skipped when unavailable).
    pub consume: u32,
}

impl BatchEvent {
    /// Generate `k` packets.
    pub fn gen(k: u32) -> Self {
        BatchEvent {
            generate: k,
            ..Default::default()
        }
    }

    /// Consume `k` packets.
    pub fn con(k: u32) -> Self {
        BatchEvent {
            consume: k,
            ..Default::default()
        }
    }

    /// Do nothing.
    pub fn idle() -> Self {
        BatchEvent::default()
    }
}

/// Applies one batch step to a balancer by §2's consecutive-single-unit
/// decomposition (generations first, then consumptions, round-robin
/// across processors).
pub fn step_batch<B: LoadBalancer + ?Sized>(balancer: &mut B, batches: &[BatchEvent]) {
    let n = balancer.n();
    assert_eq!(batches.len(), n, "one batch event per processor");
    let max_gen = batches.iter().map(|b| b.generate).max().unwrap_or(0);
    let max_con = batches.iter().map(|b| b.consume).max().unwrap_or(0);
    let mut events = vec![LoadEvent::Idle; n];
    for round in 0..max_gen {
        for (e, b) in events.iter_mut().zip(batches.iter()) {
            *e = if round < b.generate {
                LoadEvent::Generate
            } else {
                LoadEvent::Idle
            };
        }
        balancer.step(&events);
    }
    for round in 0..max_con {
        for (e, b) in events.iter_mut().zip(batches.iter()) {
            *e = if round < b.consume {
                LoadEvent::Consume
            } else {
                LoadEvent::Idle
            };
        }
        balancer.step(&events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::simple::SimpleCluster;

    #[test]
    fn batch_equals_singles_in_totals() {
        let params = Params::paper_section7(4);
        let mut cluster = SimpleCluster::new(params, 1);
        step_batch(
            &mut cluster,
            &[
                BatchEvent::gen(5),
                BatchEvent::gen(2),
                BatchEvent::idle(),
                BatchEvent::con(3),
            ],
        );
        let m = cluster.metrics();
        assert_eq!(m.generated, 7);
        // Consumption is bounded by availability; packets may have been
        // balanced onto processor 3 by then.
        assert!(m.consumed <= 3);
        assert_eq!(
            cluster.loads().iter().sum::<u64>(),
            m.generated - m.consumed
        );
    }

    #[test]
    fn batch_on_full_cluster_keeps_invariants() {
        let params = Params::paper_section7(6);
        let mut cluster = crate::cluster::Cluster::new(params, 3);
        for round in 0..50u32 {
            let batches: Vec<BatchEvent> = (0..6)
                .map(|i| {
                    if (i + round as usize).is_multiple_of(2) {
                        BatchEvent::gen(3)
                    } else {
                        BatchEvent {
                            generate: 1,
                            consume: 2,
                        }
                    }
                })
                .collect();
            step_batch(&mut cluster, &batches);
            cluster.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "one batch event per processor")]
    fn batch_size_mismatch_panics() {
        let params = Params::paper_section7(4);
        let mut cluster = SimpleCluster::new(params, 1);
        step_batch(&mut cluster, &[BatchEvent::idle()]);
    }

    #[test]
    fn empty_batches_are_noops() {
        let params = Params::paper_section7(3);
        let mut cluster = SimpleCluster::new(params, 1);
        step_batch(&mut cluster, &[BatchEvent::idle(); 3]);
        assert_eq!(cluster.metrics().generated, 0);
    }
}
