//! The balancing primitive: distributing indivisible packets of many load
//! classes over a group of processors so that
//!
//! 1. every class is split evenly over the group (±1 per the appendix
//!    constraint `|d_{l₁,j} − d_{l₂,j}| ≤ 1`), and
//! 2. the grand totals of the group members also differ by at most one
//!    (`|Σ_j d_{l₁,j} − Σ_j d_{l₂,j}| ≤ 1`) — the paper's "snake like
//!    distribution of packets".
//!
//! Both are achieved by a greedy rule: each class hands its `total mod m`
//! leftover packets to the members with the smallest running grand totals.
//! An induction shows the grand-total spread never exceeds one: if the
//! member totals lie in `{v, v+1}` with `k` members at `v` and the class
//! has `r ≤ m` leftovers, the leftovers go to the `k` members at `v`
//! first; the result again lies in a window of width one.

/// Evenly splits `total` into `m` shares differing by at most one,
/// listing the `total mod m` larger shares first.
pub fn even_shares(total: u64, m: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(m);
    even_shares_into(total, m, &mut out);
    out
}

/// [`even_shares`] into a caller-owned buffer (cleared first) — the
/// hot-path form used by the engines' reusable scratch space.
pub fn even_shares_into(total: u64, m: usize, out: &mut Vec<u64>) {
    assert!(m > 0, "cannot split over an empty group");
    let base = total / m as u64;
    let extras = (total % m as u64) as usize;
    out.clear();
    out.extend((0..m).map(|i| if i < extras { base + 1 } else { base }));
}

/// Allocation-free core of [`distribute_classes`]: writes the shares into
/// a flat row-major matrix `out[class * m + slot]` (resized as needed).
pub fn distribute_classes_flat(
    class_totals: &[u64],
    m: usize,
    running: &mut [u64],
    out: &mut Vec<u64>,
) {
    let mut order = Vec::with_capacity(m);
    distribute_classes_flat_with(class_totals, m, running, out, &mut order);
}

/// [`distribute_classes_flat`] with a caller-owned scratch buffer for the
/// extras ordering, so repeated calls allocate nothing.
pub fn distribute_classes_flat_with(
    class_totals: &[u64],
    m: usize,
    running: &mut [u64],
    out: &mut Vec<u64>,
    order: &mut Vec<usize>,
) {
    assert!(m > 0);
    assert_eq!(running.len(), m);
    out.clear();
    out.resize(class_totals.len() * m, 0);
    order.clear();
    order.extend(0..m);
    for (c, &total) in class_totals.iter().enumerate() {
        let base = total / m as u64;
        let extras = (total % m as u64) as usize;
        let row = &mut out[c * m..(c + 1) * m];
        for share in row.iter_mut() {
            *share = base;
        }
        if extras > 0 {
            order.sort_unstable_by_key(|&s| (running[s], s));
            for &s in &order[..extras] {
                row[s] += 1;
            }
        }
        if base > 0 || extras > 0 {
            // `zip` instead of indexing: the accumulation runs once per
            // (class, member) pair and is the hottest loop in a balance
            // op; pairing the slices lets the compiler drop the
            // per-element bounds checks.
            for (r, &share) in running.iter_mut().zip(row.iter()) {
                *r += share;
            }
        }
    }
}

/// Distributes per-class totals over `m` members.
///
/// `class_totals[j]` is the number of class-`j` packets held by the whole
/// group; the result `out[j][s]` is the number assigned to member slot
/// `s`.  `running` carries grand totals across *multiple* calls (pass
/// zeros for a standalone distribution) so that, e.g., the real-packet
/// matrix and the marker matrix can share one evenness budget if desired.
///
/// Postconditions (tested):
/// * per class: `Σ_s out[j][s] == class_totals[j]` and spread ≤ 1;
/// * per member: grand-total spread ≤ 1 (including `running`).
pub fn distribute_classes(class_totals: &[u64], m: usize, running: &mut [u64]) -> Vec<Vec<u64>> {
    assert!(m > 0);
    assert_eq!(running.len(), m);
    let mut flat = Vec::new();
    distribute_classes_flat(class_totals, m, running, &mut flat);
    flat.chunks(m).map(|row| row.to_vec()).collect()
}

/// Distributes `total` indivisible units over members with per-member
/// capacities, as evenly as the capacities allow (units go to the member
/// with the smallest current share among those with spare capacity).
///
/// Used for redistributing borrowed-packet markers, whose per-processor
/// count must never exceed the borrow limit `C`.
///
/// # Panics
///
/// Panics if `total` exceeds the aggregate capacity.
pub fn distribute_capped(total: u64, caps: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(caps.len());
    distribute_capped_into(total, caps, &mut out);
    out
}

/// [`distribute_capped`] into a caller-owned buffer (cleared first).
pub fn distribute_capped_into(total: u64, caps: &[u64], out: &mut Vec<u64>) {
    let capacity: u64 = caps.iter().sum();
    assert!(
        total <= capacity,
        "insufficient capacity: {total} > {capacity}"
    );
    out.clear();
    out.resize(caps.len(), 0);
    let mut remaining = total;
    while remaining > 0 {
        // One zipped min-scan per unit instead of indexed probes: the
        // filter and key would otherwise each re-check bounds on both
        // slices for every candidate.
        let idx = out
            .iter()
            .zip(caps.iter())
            .enumerate()
            .filter(|&(_, (&o, &c))| o < c)
            .min_by_key(|&(s, (&o, _))| (o, s))
            .map(|(s, _)| s)
            .expect("aggregate capacity checked above");
        out[idx] += 1;
        remaining -= 1;
    }
}

/// `max − min` of a slice (0 for empty input).
pub fn spread(values: &[u64]) -> u64 {
    match (values.iter().max(), values.iter().min()) {
        (Some(max), Some(min)) => max - min,
        _ => 0,
    }
}

/// Number of packets that change owners when the group moves from
/// `before[s]` to `after[s]` per member: `Σ max(before − after, 0)`
/// (equal to `Σ max(after − before, 0)` when totals are conserved).
pub fn moved(before: &[u64], after: &[u64]) -> u64 {
    before
        .iter()
        .zip(after.iter())
        .map(|(&x, &y)| x.saturating_sub(y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_shares_exact_and_remainder() {
        assert_eq!(even_shares(10, 2), vec![5, 5]);
        assert_eq!(even_shares(11, 2), vec![6, 5]);
        assert_eq!(even_shares(3, 5), vec![1, 1, 1, 0, 0]);
        assert_eq!(even_shares(0, 3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn even_shares_rejects_empty_group() {
        even_shares(1, 0);
    }

    #[test]
    fn distribute_single_class() {
        let mut running = vec![0u64; 3];
        let out = distribute_classes(&[7], 3, &mut running);
        assert_eq!(out[0].iter().sum::<u64>(), 7);
        assert_eq!(spread(&out[0]), 1);
    }

    #[test]
    fn distribute_many_classes_meets_both_constraints() {
        let totals = vec![7u64, 0, 13, 1, 1, 1, 2, 99];
        let m = 5;
        let mut running = vec![0u64; m];
        let out = distribute_classes(&totals, m, &mut running);
        for (j, shares) in out.iter().enumerate() {
            assert_eq!(shares.iter().sum::<u64>(), totals[j], "class {j} conserved");
            assert!(spread(shares) <= 1, "class {j} spread");
        }
        let grand: Vec<u64> = (0..m)
            .map(|s| out.iter().map(|shares| shares[s]).sum())
            .collect();
        assert!(spread(&grand) <= 1, "grand totals {grand:?}");
        assert_eq!(grand, running);
    }

    #[test]
    fn flat_and_nested_distributions_agree() {
        let totals = vec![7u64, 0, 13, 1, 99];
        let m = 4;
        let mut run_a = vec![0u64; m];
        let nested = distribute_classes(&totals, m, &mut run_a);
        let mut run_b = vec![0u64; m];
        let mut flat = Vec::new();
        distribute_classes_flat(&totals, m, &mut run_b, &mut flat);
        for (c, row) in nested.iter().enumerate() {
            assert_eq!(&flat[c * m..(c + 1) * m], row.as_slice(), "class {c}");
        }
        assert_eq!(run_a, run_b);
    }

    #[test]
    fn distribute_respects_prior_running_totals() {
        // A member that already carries more weight receives fewer extras.
        let mut running = vec![10u64, 0];
        let out = distribute_classes(&[1], 2, &mut running);
        assert_eq!(out[0], vec![0, 1], "extra goes to the lighter member");
    }

    #[test]
    fn moved_counts_departing_packets() {
        assert_eq!(moved(&[5, 0, 1], &[2, 2, 2]), 3);
        assert_eq!(moved(&[2, 2, 2], &[2, 2, 2]), 0);
    }

    #[test]
    fn capped_distribution_respects_caps_and_evenness() {
        let out = distribute_capped(7, &[4, 1, 4]);
        assert_eq!(out.iter().sum::<u64>(), 7);
        assert!(
            out.iter().zip([4u64, 1, 4]).all(|(&o, c)| o <= c),
            "{out:?}"
        );
        // With caps [4,1,4] the most even split of 7 is [3,1,3].
        assert_eq!(out, vec![3, 1, 3]);
        assert_eq!(distribute_capped(0, &[2, 2]), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "insufficient capacity")]
    fn capped_distribution_rejects_overflow() {
        distribute_capped(5, &[2, 2]);
    }

    #[test]
    fn adversarial_grand_total_spread_stays_one() {
        // Many classes with remainder 1 each: the greedy must rotate the
        // extras around the members.
        let totals = vec![1u64; 97];
        let m = 7;
        let mut running = vec![0u64; m];
        let out = distribute_classes(&totals, m, &mut running);
        let grand: Vec<u64> = (0..m).map(|s| out.iter().map(|sh| sh[s]).sum()).collect();
        assert!(spread(&grand) <= 1, "{grand:?}");
        assert_eq!(grand.iter().sum::<u64>(), 97);
    }
}
