//! Time-series recording of load distributions.
//!
//! Experiments repeatedly need "per-step imbalance statistics plus a
//! summary over a window"; [`LoadRecorder`] collects them once, correctly
//! (warm-up skipping, mean-floor filtering to avoid meaningless ratios on
//! a near-empty system) and exposes quantiles.

use crate::strategy::{imbalance_stats, ImbalanceStats, LoadSummary};

/// Collects per-step [`ImbalanceStats`] and summarises them.
#[derive(Debug, Clone)]
pub struct LoadRecorder {
    /// Ignore snapshots before this step (warm-up).
    warmup: usize,
    /// Ignore snapshots whose mean load is below this floor.
    mean_floor: f64,
    samples: Vec<ImbalanceStats>,
    steps_seen: usize,
}

impl LoadRecorder {
    /// A recorder that skips the first `warmup` steps and snapshots with
    /// mean load below `mean_floor`.
    pub fn new(warmup: usize, mean_floor: f64) -> Self {
        LoadRecorder {
            warmup,
            mean_floor,
            samples: Vec::new(),
            steps_seen: 0,
        }
    }

    /// Records one snapshot (call once per step with the current loads).
    pub fn record(&mut self, loads: &[u64]) {
        let step = self.steps_seen;
        self.steps_seen += 1;
        if step < self.warmup {
            return;
        }
        let stats = imbalance_stats(loads);
        if stats.mean >= self.mean_floor {
            self.samples.push(stats);
        }
    }

    /// Records one snapshot from an exact min/max/total summary over
    /// `n` processors — the O(1) counterpart of
    /// [`LoadRecorder::record`] for engines with an incremental
    /// [`crate::strategy::LoadBalancer::load_summary`].  Every ratio
    /// statistic and the mean-floor filter depend only on max and mean,
    /// both carried exactly (integer sums below 2⁵³ are exact in f64,
    /// so the mean matches [`imbalance_stats`] bit for bit); only the
    /// per-step standard deviation is not derivable without the full
    /// vector and is stored as 0.0.
    pub fn record_summary(&mut self, summary: LoadSummary, n: usize) {
        let step = self.steps_seen;
        self.steps_seen += 1;
        if step < self.warmup {
            return;
        }
        let mean = summary.mean(n);
        if mean >= self.mean_floor {
            let max_over_mean = if mean > 0.0 {
                summary.max as f64 / mean
            } else {
                1.0
            };
            self.samples.push(ImbalanceStats {
                min: summary.min,
                max: summary.max,
                mean,
                std_dev: 0.0,
                max_over_mean,
            });
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the per-step `max/mean` ratios (1.0 when empty).
    pub fn mean_ratio(&self) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        self.samples.iter().map(|s| s.max_over_mean).sum::<f64>() / self.samples.len() as f64
    }

    /// Quantile `q ∈ [0, 1]` of the per-step `max/mean` ratios
    /// (nearest-rank; 1.0 when empty).
    pub fn ratio_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.samples.is_empty() {
            return 1.0;
        }
        let mut ratios: Vec<f64> = self.samples.iter().map(|s| s.max_over_mean).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let idx = ((ratios.len() - 1) as f64 * q).round() as usize;
        ratios[idx]
    }

    /// Worst `max/mean` ratio retained (1.0 when empty).
    pub fn worst_ratio(&self) -> f64 {
        self.ratio_quantile(1.0)
    }

    /// Absorbs another recorder's retained samples (for aggregating
    /// across runs).
    pub fn merge(&mut self, other: &LoadRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Mean of the per-step standard deviations (0.0 when empty).
    pub fn mean_std_dev(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.std_dev).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_and_floor_are_respected() {
        let mut rec = LoadRecorder::new(2, 3.0);
        rec.record(&[100, 0]); // step 0: warm-up
        rec.record(&[100, 0]); // step 1: warm-up
        rec.record(&[1, 1]); // mean 1 < floor
        rec.record(&[10, 0]); // retained
        assert_eq!(rec.len(), 1);
        assert!((rec.mean_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_ordered() {
        let mut rec = LoadRecorder::new(0, 0.0);
        rec.record(&[4, 4]); // ratio 1
        rec.record(&[6, 2]); // ratio 1.5
        rec.record(&[8, 0]); // ratio 2
        assert!((rec.ratio_quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((rec.ratio_quantile(0.5) - 1.5).abs() < 1e-12);
        assert!((rec.worst_ratio() - 2.0).abs() < 1e-12);
        assert!(rec.ratio_quantile(0.5) <= rec.ratio_quantile(0.9));
    }

    #[test]
    fn empty_recorder_defaults() {
        let rec = LoadRecorder::new(0, 0.0);
        assert!(rec.is_empty());
        assert_eq!(rec.mean_ratio(), 1.0);
        assert_eq!(rec.worst_ratio(), 1.0);
        assert_eq!(rec.mean_std_dev(), 0.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LoadRecorder::new(0, 0.0);
        a.record(&[4, 4]);
        let mut b = LoadRecorder::new(0, 0.0);
        b.record(&[8, 0]);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.worst_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_domain_checked() {
        LoadRecorder::new(0, 0.0).ratio_quantile(1.5);
    }

    #[test]
    fn record_summary_matches_record_on_every_ratio_statistic() {
        let snapshots: [&[u64]; 5] = [&[100, 0], &[1, 1], &[10, 0], &[7, 3], &[0, 0]];
        let mut dense = LoadRecorder::new(1, 3.0);
        let mut summarised = LoadRecorder::new(1, 3.0);
        for loads in snapshots {
            dense.record(loads);
            summarised.record_summary(LoadSummary::from_loads(loads), loads.len());
        }
        assert_eq!(dense.len(), summarised.len());
        assert_eq!(dense.mean_ratio(), summarised.mean_ratio());
        assert_eq!(dense.ratio_quantile(0.95), summarised.ratio_quantile(0.95));
        assert_eq!(dense.worst_ratio(), summarised.worst_ratio());
    }
}
