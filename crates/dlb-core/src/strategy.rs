//! The common interface every balancing strategy implements (the full
//! algorithm, the practical variant and the baselines in
//! `dlb-baselines`), plus load-distribution statistics.

use crate::metrics::Metrics;
use dlb_json::{FromJson, Json, ToJson};

/// What a processor does in one global time step (§2: generate one packet,
/// consume one locally available packet, or do nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadEvent {
    /// Generate one work packet.
    Generate,
    /// Consume one locally available packet (skipped when none is held).
    Consume,
    /// Do nothing.
    Idle,
}

impl ToJson for LoadEvent {
    /// Single-letter encoding keeps serialised traces compact.
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                LoadEvent::Generate => "g",
                LoadEvent::Consume => "c",
                LoadEvent::Idle => "i",
            }
            .to_string(),
        )
    }
}

impl FromJson for LoadEvent {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value.as_str() {
            Some("g") => Ok(LoadEvent::Generate),
            Some("c") => Ok(LoadEvent::Consume),
            Some("i") => Ok(LoadEvent::Idle),
            other => Err(format!("unknown load event {other:?}")),
        }
    }
}

/// A distributed load balancing strategy driven by per-processor events.
pub trait LoadBalancer {
    /// Number of processors.
    fn n(&self) -> usize;

    /// Current number of packets on each processor.
    fn loads(&self) -> Vec<u64>;

    /// Writes the current loads into a caller-owned buffer (cleared
    /// first).  The default delegates to [`LoadBalancer::loads`]; engines
    /// on the hot path override it to avoid the per-call allocation —
    /// per-step observers (quality curves, distribution snapshots) call
    /// this with one reusable buffer per run.
    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads());
    }

    /// Advances one global time step; `events[i]` is processor `i`'s
    /// action.  `events.len()` must equal [`LoadBalancer::n`].
    fn step(&mut self, events: &[LoadEvent]);

    /// Advances one global time step given only the *active* processors:
    /// `active` lists the `(processor, event)` pairs whose event is not
    /// [`LoadEvent::Idle`], sorted by ascending processor index with no
    /// duplicates.  Semantically identical to [`LoadBalancer::step`] on
    /// the densified vector (idle everywhere else) — the engines override
    /// it to walk only the active pairs, making an idle processor cost
    /// nothing.  The default densifies, which is correct for every
    /// balancer but O(n).
    fn step_sparse(&mut self, active: &[(usize, LoadEvent)]) {
        check_sparse_events(active, self.n());
        let mut events = vec![LoadEvent::Idle; self.n()];
        for &(i, ev) in active {
            events[i] = ev;
        }
        self.step(&events);
    }

    /// Sparse counterpart of [`LoadBalancer::step_masked`]: advances one
    /// step with only the active `(processor, event)` pairs under a crash
    /// mask.  `down` is full-length (`n`); `active` is sorted-unique as in
    /// [`LoadBalancer::step_sparse`].  The default densifies and
    /// delegates, so sparse and dense masked stepping agree byte for byte
    /// on any balancer.
    fn step_sparse_masked(&mut self, active: &[(usize, LoadEvent)], down: &[bool]) {
        assert_eq!(down.len(), self.n(), "mask length mismatch");
        check_sparse_events(active, self.n());
        let mut events = vec![LoadEvent::Idle; self.n()];
        for &(i, ev) in active {
            events[i] = ev;
        }
        self.step_masked(&events, down);
    }

    /// Advances one step under a crash mask: `down[i]` marks processor `i`
    /// as crashed for this step.  A crashed processor performs no event
    /// (its generate/consume is suppressed) and — for engines that
    /// override this — neither initiates balancing nor serves as a
    /// partner, so its load is frozen.  The default implementation only
    /// masks the events; it is correct for any balancer but does not stop
    /// down processors from being picked as partners.
    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        let masked: Vec<LoadEvent> = events
            .iter()
            .zip(down.iter())
            .map(|(&e, &d)| if d { LoadEvent::Idle } else { e })
            .collect();
        self.step(&masked);
    }

    /// Cheap summary of the current load distribution: exact min, max and
    /// total.  Per-step observers that only need these (the CLI recorder,
    /// `LoadSample` trace rows) call this instead of cloning the full
    /// O(n) load vector.  Takes `&mut self` so engines can maintain the
    /// answer incrementally (lazy heaps built on first call); the default
    /// scans [`LoadBalancer::loads`], which is correct for every balancer
    /// but O(n).
    fn load_summary(&mut self) -> LoadSummary {
        LoadSummary::from_loads(&self.loads())
    }

    /// Activity counters accumulated so far.
    fn metrics(&self) -> &Metrics;

    /// Short human-readable strategy name for reports.
    fn name(&self) -> &'static str;

    /// Attaches a trace sink receiving structured balancing events.
    /// The default is a no-op so baselines without instrumentation
    /// still satisfy the trait; the SPAA'93 engines override it.
    fn set_trace_sink(&mut self, _sink: dlb_trace::SharedSink) {}

    /// Requests intra-step parallelism: balance operations drawn within
    /// one step are executed in conflict-free waves on up to `jobs`
    /// pooled workers.  Results, metrics and traces are bit-identical
    /// for every value (including 1 = fully sequential); the default is
    /// a no-op so strategies without a wave executor stay sequential.
    fn set_step_jobs(&mut self, _jobs: usize) {}

    /// Sets the minimum queued-operation count at which a flush uses the
    /// wave executor; smaller flushes run sequentially in trigger order
    /// (bit-identical — the waves reproduce exactly that order per
    /// processor), skipping wave planning and pool dispatch so
    /// `step_jobs > 1` never regresses tiny steps.  `0` forces waves for
    /// every flush.  The default is a no-op for strategies without a
    /// wave executor.
    fn set_wave_threshold(&mut self, _threshold: usize) {}
}

/// Default [`LoadBalancer::set_wave_threshold`] value: below this many
/// queued operations per flush, pool dispatch costs more than it saves.
pub const DEFAULT_WAVE_THRESHOLD: usize = 32;

/// Validates the [`LoadBalancer::step_sparse`] contract: indices
/// strictly ascending (hence unique) and in range.  O(active), called
/// by every engine implementation so a malformed list fails loudly
/// instead of silently diverging from the dense semantics.
pub fn check_sparse_events(active: &[(usize, LoadEvent)], n: usize) {
    let mut prev = None;
    for &(i, _) in active {
        assert!(i < n, "sparse event index {i} out of range (n = {n})");
        if let Some(p) = prev {
            assert!(p < i, "sparse events must be sorted by ascending processor");
        }
        prev = Some(i);
    }
}

/// Exact min/max/total of a load distribution, maintained incrementally
/// by the engines (see [`LoadBalancer::load_summary`]).  Mean is
/// `total / n`, so these three values carry everything the per-step
/// observers derive without touching the O(n) load vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSummary {
    /// Smallest per-processor load.
    pub min: u64,
    /// Largest per-processor load.
    pub max: u64,
    /// Sum of all loads.
    pub total: u64,
}

impl LoadSummary {
    /// Computes the summary by scanning a load snapshot.
    pub fn from_loads(loads: &[u64]) -> Self {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut total = 0u64;
        for &l in loads {
            min = min.min(l);
            max = max.max(l);
            total += l;
        }
        if loads.is_empty() {
            min = 0;
        }
        LoadSummary { min, max, total }
    }

    /// Mean load over `n` processors (0.0 for `n == 0`).
    pub fn mean(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.total as f64 / n as f64
        }
    }
}

/// Summary statistics of a load distribution snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceStats {
    /// Smallest per-processor load.
    pub min: u64,
    /// Largest per-processor load.
    pub max: u64,
    /// Mean load.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// `max / mean` (1.0 for an empty or perfectly flat system).
    pub max_over_mean: f64,
}

/// Computes [`ImbalanceStats`] for a load snapshot.
pub fn imbalance_stats(loads: &[u64]) -> ImbalanceStats {
    if loads.is_empty() {
        return ImbalanceStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
            max_over_mean: 1.0,
        };
    }
    let min = *loads.iter().min().expect("non-empty");
    let max = *loads.iter().max().expect("non-empty");
    let n = loads.len() as f64;
    let mean = loads.iter().map(|&x| x as f64).sum::<f64>() / n;
    let var = loads
        .iter()
        .map(|&x| (x as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let max_over_mean = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    ImbalanceStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
        max_over_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_flat_distribution() {
        let s = imbalance_stats(&[5, 5, 5, 5]);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.std_dev, 0.0);
        assert!((s.max_over_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_skewed_distribution() {
        let s = imbalance_stats(&[0, 10]);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 10);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 5.0).abs() < 1e-12);
        assert!((s.max_over_mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_and_zero() {
        let empty = imbalance_stats(&[]);
        assert_eq!(empty.max, 0);
        let zeros = imbalance_stats(&[0, 0]);
        assert_eq!(zeros.max_over_mean, 1.0);
    }
}
