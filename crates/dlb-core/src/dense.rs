//! The flat-arena (dense) engine for the full algorithm, retained as the
//! equivalence oracle for the sparse [`crate::Cluster`].
//!
//! This is the PR 4–6 engine verbatim: `d`/`b` live in flat row-major
//! n×n arenas with sorted active-class lists alongside, so class scans
//! cost O(active) but memory costs O(n²) — which caps it near n = 4096.
//! [`crate::Cluster`] replaces the arenas with compressed per-processor
//! rows ([`crate::sparse::SparseRow`]) and must stay *bit identical* to
//! this engine: same RNG consumption, same loads, metrics and trace
//! events (enforced by the `sparse_equivalence` proptests and the
//! benchmark fingerprint cross-checks at overlapping n).  The naive
//! per-struct reference oracle is [`crate::reference`]; this engine sits
//! between it and the sparse one in the equivalence chain and keeps the
//! wave executor, so `step_jobs` identity is cross-checked on both
//! representations.
//!
//! Algorithm documentation lives on [`crate::cluster`]; this file
//! intentionally mirrors its structure line for line so diffs between
//! the two engines stay reviewable.

use crate::balance::{
    distribute_capped_into, distribute_classes_flat_with, even_shares_into, moved,
};
use crate::metrics::Metrics;
use crate::params::{ExchangePolicy, Params};
use crate::strategy::{check_sparse_events, LoadBalancer, LoadEvent, LoadSummary};
use dlb_pool::par_map;
use dlb_trace::{SharedSink, TraceEvent};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Inserts `v` into a sorted list if absent.
#[inline]
fn insert_sorted(list: &mut Vec<u32>, v: u32) {
    if let Err(pos) = list.binary_search(&v) {
        list.insert(pos, v);
    }
}

/// Removes `v` from a sorted list if present.
#[inline]
fn remove_sorted(list: &mut Vec<u32>, v: u32) {
    if let Ok(pos) = list.binary_search(&v) {
        list.remove(pos);
    }
}

/// Merges sorted `src` into sorted `dst` (set union) using `buf` as
/// scratch.  Linear in `dst.len() + src.len()`.
fn merge_sorted_into(dst: &mut Vec<u32>, src: &[u32], buf: &mut Vec<u32>) {
    if src.is_empty() {
        return;
    }
    if dst.is_empty() {
        dst.extend_from_slice(src);
        return;
    }
    buf.clear();
    let (mut a, mut b) = (0usize, 0usize);
    while a < dst.len() && b < src.len() {
        match dst[a].cmp(&src[b]) {
            std::cmp::Ordering::Less => {
                buf.push(dst[a]);
                a += 1;
            }
            std::cmp::Ordering::Greater => {
                buf.push(src[b]);
                b += 1;
            }
            std::cmp::Ordering::Equal => {
                buf.push(dst[a]);
                a += 1;
                b += 1;
            }
        }
    }
    buf.extend_from_slice(&dst[a..]);
    buf.extend_from_slice(&src[b..]);
    std::mem::swap(dst, buf);
}

/// Scratch buffers for executing one full balance operation.  Each
/// executing thread owns a set (thread-local on pool workers), so the
/// parallel wave path stays as allocation-free as the sequential one in
/// steady state.
#[derive(Default)]
struct BalanceScratch {
    totals_d: Vec<u64>,
    totals_b: Vec<u64>,
    shares_d: Vec<u64>,
    shares_b: Vec<u64>,
    union: Vec<u32>,
    merge: Vec<u32>,
    order: Vec<usize>,
}

thread_local! {
    /// Per-thread balance scratch for wave execution.
    static WAVE_SCRATCH: std::cell::RefCell<BalanceScratch> =
        std::cell::RefCell::new(BalanceScratch::default());
}

/// What executing one full balance operation produced.  The caller folds
/// outcomes into the metrics and the trace in trigger order, which
/// reconstructs the exact sequential counter sums and event stream.
#[derive(Clone, Copy, Default)]
struct OpOutcome {
    /// The f-factor ratio that fired the trigger (0.0 unless tracing).
    trigger: f64,
    /// Net packets that physically moved between members.
    op_packets: u64,
    /// Markers that moved between members.
    op_markers: u64,
    /// Markers annihilated on their home processor afterwards.
    home_settled: u64,
}

/// Raw per-processor view of the state a balance operation touches.
///
/// Operations within one wave have pairwise-disjoint member sets (the
/// wave planner in [`DenseCluster::flush_pending`] enforces it), so
/// concurrent executors write disjoint arena rows, active lists and
/// per-processor entries — which is what makes the `Send`/`Sync` impls
/// sound.
struct ArenaView {
    n: usize,
    d: *mut u64,
    b: *mut u64,
    load: *mut u64,
    sum_b: *mut u64,
    l_old: *mut u64,
    active_d: *mut Vec<u32>,
    active_b: *mut Vec<u32>,
    settled: *mut u64,
}

unsafe impl Send for ArenaView {}
unsafe impl Sync for ArenaView {}

/// Executes one full balancing operation over `members` (initiator
/// first) through the raw view: the body of the appendix's equalisation,
/// hoisted out of [`DenseCluster::full_balance`] so the sequential path and
/// the wave executor share one implementation and cannot drift apart.
/// Consumes no RNG and emits nothing — it returns an [`OpOutcome`] the
/// caller folds in trigger order.
///
/// # Safety
///
/// No other thread may concurrently touch any state of the processors
/// in `members` (guaranteed by the conflict-free wave partition).
unsafe fn execute_full_balance(
    view: &ArenaView,
    members: &[usize],
    tracing: bool,
    s: &mut BalanceScratch,
) -> OpOutcome {
    let n = view.n;
    let m = members.len();
    let initiator = members[0];
    // The f-factor ratio that fired the trigger.  The initiator's row is
    // untouched between draw and execution (a queued operation involving
    // it would have been flushed before its event was processed), so
    // this read equals the draw-time value.
    let trigger = if tracing {
        *view.d.add(initiator * n + initiator) as f64 / (*view.l_old.add(initiator)).max(1) as f64
    } else {
        0.0
    };
    // Only the union of the members' active classes is balanced: for
    // every other class all members hold zero, which the snake
    // distribution maps to zero shares without touching the running
    // totals — bit-identical to the reference's dense 0..n sweep.
    s.union.clear();
    for &mm in members {
        merge_sorted_into(&mut s.union, &*view.active_d.add(mm), &mut s.merge);
        merge_sorted_into(&mut s.union, &*view.active_b.add(mm), &mut s.merge);
    }
    s.totals_d.clear();
    s.totals_b.clear();
    for &c in &s.union {
        let c = c as usize;
        s.totals_d
            .push(members.iter().map(|&mm| *view.d.add(mm * n + c)).sum());
        s.totals_b
            .push(members.iter().map(|&mm| *view.b.add(mm * n + c)).sum());
    }
    let mut run_d = [0u64; 64];
    let mut run_b = [0u64; 64];
    assert!(m <= 64, "group size bounded by the stack scratch");
    let (run_d, run_b) = (&mut run_d[..m], &mut run_b[..m]);
    distribute_classes_flat_with(&s.totals_d, m, run_d, &mut s.shares_d, &mut s.order);
    distribute_classes_flat_with(&s.totals_b, m, run_b, &mut s.shares_b, &mut s.order);

    // Packets are fungible (§2: any packet can be consumed by any
    // processor), so only the *net* load difference moves physically;
    // the per-class matrices are bookkeeping carried by the control
    // messages.  Markers are bookkeeping only.
    let mut op_packets = 0u64;
    for (si, &mm) in members.iter().enumerate() {
        op_packets += (*view.load.add(mm)).saturating_sub(run_d[si]);
    }
    let mut op_markers = 0u64;
    for (ci, &c) in s.union.iter().enumerate() {
        let row = &s.shares_b[ci * m..(ci + 1) * m];
        let c = c as usize;
        for (si, &mm) in members.iter().enumerate() {
            op_markers += (*view.b.add(mm * n + c)).saturating_sub(row[si]);
        }
    }
    for (si, &mm) in members.iter().enumerate() {
        // Every member's previously-active classes are in the union,
        // so writing the union's shares (and rebuilding the active
        // lists from the nonzero ones) covers the full row.
        let ad = &mut *view.active_d.add(mm);
        ad.clear();
        let ab = &mut *view.active_b.add(mm);
        ab.clear();
        for (ci, &c) in s.union.iter().enumerate() {
            let vd = s.shares_d[ci * m + si];
            *view.d.add(mm * n + c as usize) = vd;
            if vd > 0 {
                ad.push(c);
            }
            let vb = s.shares_b[ci * m + si];
            *view.b.add(mm * n + c as usize) = vb;
            if vb > 0 {
                ab.push(c);
            }
        }
        *view.load.add(mm) = run_d[si];
        *view.sum_b.add(mm) = run_b[si];
    }
    // Every participant counts this as a balancing of its own class
    // (§4: a group balance acts like δ + 1 self-initiated balances):
    // home markers annihilate and l_old resets.
    let mut home_settled = 0u64;
    for &mm in members {
        let cell = view.b.add(mm * n + mm);
        let k = *cell;
        if k > 0 {
            *cell = 0;
            remove_sorted(&mut *view.active_b.add(mm), mm as u32);
            *view.sum_b.add(mm) -= k;
            *view.settled.add(mm) += k;
            home_settled += k;
        }
        *view.l_old.add(mm) = *view.d.add(mm * n + mm);
    }
    OpOutcome {
        trigger,
        op_packets,
        op_markers,
        home_settled,
    }
}

/// The full virtual-load-class algorithm on `n` processors.
///
/// Deterministic: all randomness (partner choice, class choice) comes from
/// a seeded ChaCha stream.
pub struct DenseCluster {
    params: Params,
    /// Cached `params.n()`.
    n: usize,
    /// Flat row-major `d_{i,j}` arena: `d[i * n + j]`.
    d: Vec<u64>,
    /// Flat row-major `b_{i,j}` arena.
    b: Vec<u64>,
    /// Cached real loads `Σ_j d_{i,j}`.
    load: Vec<u64>,
    /// Cached marker counts `Σ_j b_{i,j}`.
    sum_b: Vec<u64>,
    /// Self-generated load `d_{i,i}` at the last balancing participation.
    l_old: Vec<u64>,
    /// Sorted classes `j` with `d_{i,j} > 0`, per processor.
    active_d: Vec<Vec<u32>>,
    /// Sorted classes `j` with `b_{i,j} > 0`, per processor.
    active_b: Vec<Vec<u32>>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    /// Ledger: fresh class-`j` packets generated (excluding marker
    /// repayments).
    fresh_generated: Vec<u64>,
    /// Ledger: class-`j` packets consumed directly by their generator.
    direct_consumed: Vec<u64>,
    /// Ledger: class-`j` markers settled (exchange or home annihilation).
    settled: Vec<u64>,
    /// Sum of loads the cluster was constructed with.
    initial_total: u64,
    /// Scratch buffers reused across balancing operations (all cleared
    /// before use; `mem::take`n where simultaneous borrows are needed).
    scratch_members: Vec<usize>,
    scratch_partners: Vec<usize>,
    scratch_group: Vec<usize>,
    scratch_sample: Vec<usize>,
    scratch_before_d: Vec<u64>,
    scratch_before_b: Vec<u64>,
    scratch_caps: Vec<u64>,
    scratch_new_d: Vec<u64>,
    scratch_new_b: Vec<u64>,
    /// Optional structured event sink (absent or disabled: emission
    /// sites reduce to one branch).
    sink: Option<SharedSink>,
    /// Driver steps completed — the logical clock stamped onto events.
    step_no: u64,
    /// Intra-step parallelism: balance operations drawn during a step
    /// are queued and executed in conflict-free waves on up to this many
    /// pooled workers.  1 (the default) executes every operation at its
    /// trigger, exactly as before.
    step_jobs: usize,
    /// Flushes with fewer queued operations than this run sequentially
    /// (see [`LoadBalancer::set_wave_threshold`]).
    wave_threshold: usize,
    /// True while inside the §4 settlement machinery (exchange /
    /// reduce-borrow): balances triggered there execute immediately,
    /// because the settlement loop reads arbitrary processors next.
    eager: bool,
    /// Member lists of queued balance operations, flat with stride
    /// δ + 1, initiator first, in trigger order.
    pending_members: Vec<usize>,
    /// Per-processor flag: member of some queued operation.
    pending_member: Vec<bool>,
    /// Wave-planning scratch: 1 + index of the last wave touching a
    /// processor (zeroed outside [`DenseCluster::flush_pending`]).
    wave_mark: Vec<u32>,
    /// Balance scratch for the sequential/eager execution path (wave
    /// workers use a thread-local set instead).
    scratch_wave: BalanceScratch,
    scratch_wave_of: Vec<u32>,
    scratch_wave_ops: Vec<usize>,
    scratch_outcomes: Vec<OpOutcome>,
}

impl DenseCluster {
    /// An empty cluster (all loads zero).
    pub fn new(params: Params, seed: u64) -> Self {
        Self::with_initial_load(params, seed, 0)
    }

    /// A cluster where every processor starts with `initial` self-generated
    /// packets (a *balanced state* in the sense of Theorems 1–4).
    pub fn with_initial_load(params: Params, seed: u64, initial: u64) -> Self {
        let n = params.n();
        let mut d = vec![0u64; n * n];
        let mut active_d = Vec::with_capacity(n);
        for i in 0..n {
            d[i * n + i] = initial;
            active_d.push(if initial > 0 {
                vec![i as u32]
            } else {
                Vec::new()
            });
        }
        DenseCluster {
            params,
            n,
            d,
            b: vec![0u64; n * n],
            load: vec![initial; n],
            sum_b: vec![0; n],
            l_old: vec![initial; n],
            active_d,
            active_b: vec![Vec::new(); n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            fresh_generated: vec![initial; n],
            direct_consumed: vec![0; n],
            settled: vec![0; n],
            initial_total: initial * n as u64,
            scratch_members: Vec::new(),
            scratch_partners: Vec::new(),
            scratch_group: Vec::new(),
            scratch_sample: Vec::new(),
            scratch_before_d: Vec::new(),
            scratch_before_b: Vec::new(),
            scratch_caps: Vec::new(),
            scratch_new_d: Vec::new(),
            scratch_new_b: Vec::new(),
            sink: None,
            step_no: 0,
            step_jobs: 1,
            wave_threshold: crate::strategy::DEFAULT_WAVE_THRESHOLD,
            eager: false,
            pending_members: Vec::new(),
            pending_member: vec![false; n],
            wave_mark: vec![0; n],
            scratch_wave: BalanceScratch::default(),
            scratch_wave_of: Vec::new(),
            scratch_wave_ops: Vec::new(),
            scratch_outcomes: Vec::new(),
        }
    }

    /// Whether events should be constructed at all this step.
    fn trace_on(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.enabled())
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// The parameter set this cluster runs with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Real load of processor `i`.
    pub fn load(&self, i: usize) -> u64 {
        self.load[i]
    }

    /// Virtual load of processor `i` (real packets plus borrowed markers),
    /// the quantity `l_i = Σ_j (d_{i,j} + b_{i,j})` of Theorem 4's proof.
    pub fn virtual_load(&self, i: usize) -> u64 {
        self.load[i] + self.sum_b[i]
    }

    /// Virtual class-`c` load on processor `i`: `d_{i,c} + b_{i,c}`.
    pub fn class_load(&self, i: usize, c: usize) -> u64 {
        self.d[i * self.n + c] + self.b[i * self.n + c]
    }

    /// `d_{i,c}`: real class-`c` packets on processor `i`.
    pub fn d(&self, i: usize, c: usize) -> u64 {
        self.d[i * self.n + c]
    }

    /// `b_{i,c}`: class-`c` markers on processor `i`.
    pub fn b(&self, i: usize, c: usize) -> u64 {
        self.b[i * self.n + c]
    }

    /// Adds `x > 0` class-`c` packets to `i`, maintaining the active list.
    #[inline]
    fn add_d(&mut self, i: usize, c: usize, x: u64) {
        let cell = &mut self.d[i * self.n + c];
        if *cell == 0 {
            insert_sorted(&mut self.active_d[i], c as u32);
        }
        *cell += x;
    }

    /// Removes `x > 0` class-`c` packets from `i`.
    #[inline]
    fn sub_d(&mut self, i: usize, c: usize, x: u64) {
        let cell = &mut self.d[i * self.n + c];
        *cell -= x;
        if *cell == 0 {
            remove_sorted(&mut self.active_d[i], c as u32);
        }
    }

    /// Adds `x > 0` class-`c` markers to `i`.
    #[inline]
    fn add_b(&mut self, i: usize, c: usize, x: u64) {
        let cell = &mut self.b[i * self.n + c];
        if *cell == 0 {
            insert_sorted(&mut self.active_b[i], c as u32);
        }
        *cell += x;
    }

    /// Removes `x > 0` class-`c` markers from `i`.
    #[inline]
    fn sub_b(&mut self, i: usize, c: usize, x: u64) {
        let cell = &mut self.b[i * self.n + c];
        *cell -= x;
        if *cell == 0 {
            remove_sorted(&mut self.active_b[i], c as u32);
        }
    }

    /// Verifies every structural invariant of the algorithm — including
    /// consistency of the active-class lists with the arenas — and returns
    /// a description of the first violation.  Used extensively in tests —
    /// `O(n²)`, so not called from the hot path.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.n;
        let c_borrow = self.params.c_borrow() as u64;
        for i in 0..n {
            let row_d = &self.d[i * n..(i + 1) * n];
            let row_b = &self.b[i * n..(i + 1) * n];
            let sum_d: u64 = row_d.iter().sum();
            if sum_d != self.load[i] {
                return Err(format!(
                    "proc {i}: load cache {} != sum(d) {sum_d}",
                    self.load[i]
                ));
            }
            let sum_b: u64 = row_b.iter().sum();
            if sum_b != self.sum_b[i] {
                return Err(format!(
                    "proc {i}: marker cache {} != sum(b) {sum_b}",
                    self.sum_b[i]
                ));
            }
            if self.sum_b[i] > c_borrow {
                return Err(format!(
                    "proc {i}: {} markers exceed C = {c_borrow}",
                    self.sum_b[i]
                ));
            }
            for (label, list, row) in [
                ("active_d", &self.active_d[i], row_d),
                ("active_b", &self.active_b[i], row_b),
            ] {
                if !list.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("proc {i}: {label} not strictly sorted"));
                }
                if list.iter().any(|&c| row[c as usize] == 0) {
                    return Err(format!("proc {i}: {label} lists a zero entry"));
                }
                let nonzero = row.iter().filter(|&&v| v > 0).count();
                if nonzero != list.len() {
                    return Err(format!(
                        "proc {i}: {label} tracks {} classes, arena has {nonzero}",
                        list.len()
                    ));
                }
            }
        }
        for c in 0..n {
            let virt: u64 = (0..n).map(|i| self.d[i * n + c] + self.b[i * n + c]).sum();
            let expect = self.fresh_generated[c]
                .checked_sub(self.direct_consumed[c] + self.settled[c])
                .ok_or_else(|| format!("class {c}: ledger went negative"))?;
            if virt != expect {
                return Err(format!(
                    "class {c}: virtual load {virt} != fresh {} - consumed {} - settled {}",
                    self.fresh_generated[c], self.direct_consumed[c], self.settled[c]
                ));
            }
        }
        let total: u64 = self.load.iter().sum();
        let expect = self.initial_total + self.metrics.generated - self.metrics.consumed;
        if total != expect {
            return Err(format!(
                "global load {total} != generated - consumed = {expect}"
            ));
        }
        Ok(())
    }

    fn generate(&mut self, i: usize) {
        self.metrics.generated += 1;
        if self.sum_b[i] > 0 {
            // Repay a marker: the new packet takes the identity of a
            // borrowed class, restoring its real packet.  Uniform over the
            // marked classes = uniform index into the sorted active list
            // (ascending order matches the reference's nth-match scan).
            let pick = self.rng.gen_range(0..self.active_b[i].len());
            let j = self.active_b[i][pick] as usize;
            self.sub_b(i, j, 1);
            self.sum_b[i] -= 1;
            self.add_d(i, j, 1);
            self.load[i] += 1;
        } else {
            self.add_d(i, i, 1);
            self.load[i] += 1;
            self.fresh_generated[i] += 1;
            self.trigger_check(i);
        }
    }

    fn consume(&mut self, i: usize) {
        if self.load[i] == 0 {
            self.metrics.consume_blocked += 1;
            return;
        }
        if self.d[i * self.n + i] > 0 {
            self.sub_d(i, i, 1);
            self.load[i] -= 1;
            self.direct_consumed[i] += 1;
            self.metrics.consumed += 1;
            self.trigger_check(i);
            return;
        }
        // d_{i,i} = 0: consume a foreign packet via the borrow machinery.
        // The settlement operations below read and write arbitrary
        // processors, so queued balance waves must land first and any
        // balance triggered inside must execute immediately.
        self.flush_pending();
        self.eager = true;
        self.consume_slow(i);
        self.eager = false;
    }

    /// The §4 settlement retry loop of [`DenseCluster::consume`].  Every
    /// settlement attempt either frees a marker slot or hands `i` a
    /// borrowable (or own-class) packet, so C + 2 attempts always
    /// suffice; the bound is a safety net, with failures counted.
    fn consume_slow(&mut self, i: usize) {
        let max_attempts = self.params.c_borrow() + 2;
        for _ in 0..max_attempts.max(4) {
            if self.load[i] == 0 {
                // Settlement operations may have drained the processor.
                self.metrics.consume_blocked += 1;
                return;
            }
            if self.d[i * self.n + i] > 0 {
                // Settlement balancing brought some of i's own packets home
                // (§4: "... or has received some of his own load packets").
                self.sub_d(i, i, 1);
                self.load[i] -= 1;
                self.direct_consumed[i] += 1;
                self.metrics.consumed += 1;
                self.trigger_check(i);
                return;
            }
            if (self.sum_b[i] as usize) < self.params.c_borrow() {
                if let Some(j) = self.random_borrowable_class(i) {
                    self.add_b(i, j, 1);
                    self.sum_b[i] += 1;
                    self.sub_d(i, j, 1);
                    self.load[i] -= 1;
                    self.metrics.total_borrow += 1;
                    self.metrics.consumed += 1;
                    return;
                }
            }
            // Capacity exhausted (or every loaded class already borrowed):
            // settle markers remotely, then retry.
            let Some(j) = self.random_marker_class(i) else {
                break; // only possible when C = 0
            };
            if self.d[j * self.n + j] > 0 {
                self.exchange(i, j);
            } else {
                self.reduce_borrow(i, j);
            }
        }
        self.metrics.consume_failed += 1;
    }

    /// Picks a uniformly random class `j` of `i` with `d_{i,j} > 0` and
    /// `b_{i,j} = 0` (a fresh borrow candidate).  Scans the active-`d`
    /// list in ascending class order, exactly like the reference's dense
    /// filter-then-nth scan, so RNG consumption is identical.
    fn random_borrowable_class(&mut self, i: usize) -> Option<usize> {
        let row_b = &self.b[i * self.n..(i + 1) * self.n];
        let count = self.active_d[i]
            .iter()
            .filter(|&&j| row_b[j as usize] == 0)
            .count();
        if count == 0 {
            return None;
        }
        let pick = self.rng.gen_range(0..count);
        let row_b = &self.b[i * self.n..(i + 1) * self.n];
        self.active_d[i]
            .iter()
            .filter(|&&j| row_b[j as usize] == 0)
            .nth(pick)
            .map(|&j| j as usize)
    }

    /// Picks a uniformly random class `j` of `i` with `b_{i,j} > 0`.
    fn random_marker_class(&mut self, i: usize) -> Option<usize> {
        if self.active_b[i].is_empty() {
            return None;
        }
        let pick = self.rng.gen_range(0..self.active_b[i].len());
        Some(self.active_b[i][pick] as usize)
    }

    /// §4 exchange: settle markers held by `i` against real class-`j`
    /// packets still owned by the generator `j`, then let `j` simulate the
    /// corresponding workload decrease.
    fn exchange(&mut self, i: usize, j: usize) {
        debug_assert_ne!(i, j);
        let available = self.d[j * self.n + j];
        let x = match self.params.exchange() {
            ExchangePolicy::Strict => available.min(self.b[i * self.n + j]),
            ExchangePolicy::Aggressive => available.min(self.sum_b[i]),
        };
        if x == 0 {
            return;
        }
        self.metrics.remote_borrow += 1;
        // x real class-j packets migrate j -> i ...
        self.sub_d(j, j, x);
        self.load[j] -= x;
        self.add_d(i, j, x);
        self.load[i] += x;
        self.metrics.packets_migrated += x;
        self.metrics.messages += 2;
        if self.trace_on() {
            self.emit(TraceEvent::PacketsMigrated {
                step: self.step_no,
                initiator: j as u64,
                count: x,
            });
        }
        // ... and cancel x markers on i.
        let mut remaining = x;
        let own = self.b[i * self.n + j].min(remaining);
        if own > 0 {
            self.sub_b(i, j, own);
            self.sum_b[i] -= own;
            self.settled[j] += own;
            remaining -= own;
        }
        while remaining > 0 {
            // Aggressive policy: spill into markers of other classes, in
            // ascending class order (the reference's 0..n scan) — i.e.
            // drain the front of the sorted active list.
            debug_assert!(!self.active_b[i].is_empty(), "sum_b guarantees markers");
            let k = self.active_b[i][0] as usize;
            let take = self.b[i * self.n + k].min(remaining);
            self.sub_b(i, k, take);
            self.sum_b[i] -= take;
            self.settled[k] += take;
            remaining -= take;
        }
        self.metrics.markers_settled += x;
        // j simulates a workload decrease of x packets.
        self.metrics.decrease_sim += 1;
        self.trigger_check(j);
    }

    /// §4 reduce-borrow procedure for a marker of class `j` held by `i`
    /// when the generator has no own packets (`d_{j,j} = 0`): balance load
    /// class `j` over a random neighbourhood so that either real class-`j`
    /// packets reach `j` (and can be exchanged) or markers reach `j` (and
    /// annihilate).
    fn reduce_borrow(&mut self, i: usize, j: usize) {
        debug_assert_ne!(i, j);
        debug_assert_eq!(self.d[j * self.n + j], 0);
        self.metrics.borrow_fail += 1;
        let mut candidates = std::mem::take(&mut self.scratch_partners);
        self.sample_partners_into(j, &mut candidates);
        let mut group = std::mem::take(&mut self.scratch_group);
        if candidates.contains(&i) {
            // i is among j's candidates: one class balance moves packets or
            // markers between i and j directly.
            group.clear();
            group.extend_from_slice(&candidates);
            group.push(j);
            self.balance_class(j, &group);
        } else {
            let helpful = candidates
                .iter()
                .any(|&k| self.d[k * self.n + j] > 0 || self.b[k * self.n + j] == 0)
                || self.d[i * self.n + j] > 0;
            if helpful {
                // Spread i's markers / gather real packets, then pull them
                // towards j.
                group.clear();
                group.extend_from_slice(&candidates);
                group.push(i);
                self.balance_class(j, &group);
                group.pop();
                group.push(j);
                self.balance_class(j, &group);
            } else {
                // Everyone holds only markers: push markers to j first
                // (where they annihilate), then relieve i.
                group.clear();
                group.extend_from_slice(&candidates);
                group.push(j);
                self.balance_class(j, &group);
                group.pop();
                group.push(i);
                self.balance_class(j, &group);
            }
        }
        // Restore the scratch buffers before `exchange`, which may trigger
        // a nested full balance that needs them.
        self.scratch_group = group;
        self.scratch_partners = candidates;
        self.settle_home_markers(j);
        if self.d[j * self.n + j] > 0 && self.b[i * self.n + j] > 0 {
            self.exchange(i, j);
        } else if self.b[i * self.n + j] > 0 {
            // Guaranteed progress (§4: "the borrowed packet on processor i
            // has migrated to processor j where it is also consumed"): one
            // marker moves home and annihilates.  Without this the
            // capacity-capped class balances can shuffle markers without
            // ever relieving i.
            self.sub_b(i, j, 1);
            self.sum_b[i] -= 1;
            self.settled[j] += 1;
            self.metrics.markers_settled += 1;
            self.metrics.markers_migrated += 1;
            self.metrics.messages += 1;
            if self.trace_on() {
                self.emit(TraceEvent::MarkerMoved {
                    step: self.step_no,
                    initiator: i as u64,
                    count: 1,
                });
            }
            // From j's perspective its virtual class shrank: decrease
            // simulation bookkeeping.
            self.trigger_check(j);
        }
    }

    /// Balances a single load class `c` (both `d_{·,c}` and `b_{·,c}`)
    /// over `members` within ±1, as used by the reduce-borrow procedure.
    fn balance_class(&mut self, c: usize, members: &[usize]) {
        self.metrics.class_balance_ops += 1;
        self.metrics.messages += members.len() as u64;
        let m = members.len();
        let mut before_d = std::mem::take(&mut self.scratch_before_d);
        let mut before_b = std::mem::take(&mut self.scratch_before_b);
        let mut caps = std::mem::take(&mut self.scratch_caps);
        let mut new_d = std::mem::take(&mut self.scratch_new_d);
        let mut new_b = std::mem::take(&mut self.scratch_new_b);
        before_d.clear();
        before_d.extend(members.iter().map(|&mm| self.d[mm * self.n + c]));
        before_b.clear();
        before_b.extend(members.iter().map(|&mm| self.b[mm * self.n + c]));
        let total_d: u64 = before_d.iter().sum();
        let total_b: u64 = before_b.iter().sum();
        // A single class over zeroed running totals degenerates to the
        // plain even split (extras go to the lowest slots first).
        even_shares_into(total_d, m, &mut new_d);
        // Markers must respect the borrow limit C per processor, counting
        // the markers of *other* classes each member already holds.
        caps.clear();
        caps.extend(members.iter().zip(before_b.iter()).map(|(&mm, &own)| {
            (self.params.c_borrow() as u64).saturating_sub(self.sum_b[mm] - own)
        }));
        distribute_capped_into(total_b, &caps, &mut new_b);
        let moved_d = moved(&before_d, &new_d);
        let moved_b = moved(&before_b, &new_b);
        self.metrics.packets_migrated += moved_d;
        self.metrics.markers_migrated += moved_b;
        if self.trace_on() {
            if moved_d > 0 {
                self.emit(TraceEvent::PacketsMigrated {
                    step: self.step_no,
                    initiator: c as u64,
                    count: moved_d,
                });
            }
            if moved_b > 0 {
                self.emit(TraceEvent::MarkerMoved {
                    step: self.step_no,
                    initiator: c as u64,
                    count: moved_b,
                });
            }
        }
        for (s, &mm) in members.iter().enumerate() {
            self.load[mm] = self.load[mm] + new_d[s] - before_d[s];
            self.set_d(mm, c, new_d[s]);
            self.sum_b[mm] = self.sum_b[mm] + new_b[s] - before_b[s];
            self.set_b(mm, c, new_b[s]);
        }
        self.scratch_before_d = before_d;
        self.scratch_before_b = before_b;
        self.scratch_caps = caps;
        self.scratch_new_d = new_d;
        self.scratch_new_b = new_b;
    }

    /// Absolute store into the `d` arena, maintaining the active list.
    #[inline]
    fn set_d(&mut self, i: usize, c: usize, v: u64) {
        let cell = &mut self.d[i * self.n + c];
        let old = *cell;
        if old == v {
            return;
        }
        *cell = v;
        if old == 0 {
            insert_sorted(&mut self.active_d[i], c as u32);
        } else if v == 0 {
            remove_sorted(&mut self.active_d[i], c as u32);
        }
    }

    /// Absolute store into the `b` arena, maintaining the active list.
    #[inline]
    fn set_b(&mut self, i: usize, c: usize, v: u64) {
        let cell = &mut self.b[i * self.n + c];
        let old = *cell;
        if old == v {
            return;
        }
        *cell = v;
        if old == 0 {
            insert_sorted(&mut self.active_b[i], c as u32);
        } else if v == 0 {
            remove_sorted(&mut self.active_b[i], c as u32);
        }
    }

    /// Markers of class `m` residing on processor `m` annihilate: the
    /// earlier foreign consumption of `m`'s packets is finally accounted
    /// to `m`'s own load class.
    fn settle_home_markers(&mut self, m: usize) {
        let k = self.b[m * self.n + m];
        if k > 0 {
            self.sub_b(m, m, k);
            self.sum_b[m] -= k;
            self.settled[m] += k;
            self.metrics.markers_settled += k;
        }
    }

    /// Uniform `δ`-subset of processors other than `who`, written into a
    /// caller-owned buffer.  Inlines the vendored Floyd sampling loop
    /// (`rand::seq::index::sample`) so the draw is allocation-free while
    /// consuming the RNG identically (asserted by a unit test below).
    fn sample_partners_into(&mut self, who: usize, out: &mut Vec<usize>) {
        let mut raw = std::mem::take(&mut self.scratch_sample);
        raw.clear();
        let length = self.n - 1;
        let amount = self.params.delta();
        for j in (length - amount)..length {
            let t = self.rng.gen_range(0..=j);
            if raw.contains(&t) {
                raw.push(j);
            } else {
                raw.push(t);
            }
        }
        out.clear();
        out.extend(raw.iter().map(|&x| if x >= who { x + 1 } else { x }));
        self.scratch_sample = raw;
    }

    /// Fires a full balancing operation if processor `i`'s self-generated
    /// load has grown or shrunk by the factor `f` since its last
    /// participation.
    fn trigger_check(&mut self, i: usize) {
        let cur = self.d[i * self.n + i];
        let last = self.l_old[i];
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i);
        }
    }

    /// The full balancing operation of the appendix: the initiator and `δ`
    /// random partners equalise their real loads, `d`-matrices and
    /// `b`-matrices within ±1 per class and ±1 in total.
    ///
    /// The operation is *drawn* here — partner sampling, the only RNG it
    /// consumes — and, with `step_jobs > 1`, queued for wave execution
    /// (see [`DenseCluster::flush_pending`]).  Everything after the draw
    /// touches only the δ + 1 members' state, so member-disjoint
    /// operations commute bit-exactly and deferral is invisible.
    /// Sequential mode and settlement-path balances (`eager`) execute
    /// immediately through the same [`execute_full_balance`] body.
    fn full_balance(&mut self, initiator: usize) {
        let mut partners = std::mem::take(&mut self.scratch_partners);
        self.sample_partners_into(initiator, &mut partners);
        if self.step_jobs > 1 && !self.eager {
            self.pending_members.push(initiator);
            self.pending_member[initiator] = true;
            for &p in &partners {
                self.pending_members.push(p);
                self.pending_member[p] = true;
            }
            self.scratch_partners = partners;
            return;
        }
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        members.push(initiator);
        members.extend_from_slice(&partners);
        self.scratch_partners = partners;
        let tracing = self.trace_on();
        let mut scratch = std::mem::take(&mut self.scratch_wave);
        let out = {
            let view = self.arena_view();
            unsafe { execute_full_balance(&view, &members, tracing, &mut scratch) }
        };
        self.scratch_wave = scratch;
        self.fold_outcome(&members, out, tracing);
        members.clear();
        self.scratch_members = members;
    }

    /// Raw pointers into the per-processor state balance operations
    /// mutate.  Valid until the next access through `&mut self`; during
    /// wave execution the cluster is only touched through the view.
    fn arena_view(&mut self) -> ArenaView {
        ArenaView {
            n: self.n,
            d: self.d.as_mut_ptr(),
            b: self.b.as_mut_ptr(),
            load: self.load.as_mut_ptr(),
            sum_b: self.sum_b.as_mut_ptr(),
            l_old: self.l_old.as_mut_ptr(),
            active_d: self.active_d.as_mut_ptr(),
            active_b: self.active_b.as_mut_ptr(),
            settled: self.settled.as_mut_ptr(),
        }
    }

    /// Folds one executed operation's outcome into the metrics and the
    /// trace.  Called in trigger order, which reconstructs the exact
    /// sequential counter sums and event stream: per operation the
    /// stream is BalanceInitiated, then PacketsMigrated and MarkerMoved
    /// when nonzero — the same three emission sites the eager path used.
    fn fold_outcome(&mut self, members: &[usize], out: OpOutcome, tracing: bool) {
        self.metrics.balance_ops += 1;
        self.metrics.messages += members.len() as u64;
        self.metrics.packets_migrated += out.op_packets;
        self.metrics.markers_migrated += out.op_markers;
        self.metrics.markers_settled += out.home_settled;
        if tracing {
            let initiator = members[0] as u64;
            self.emit(TraceEvent::BalanceInitiated {
                step: self.step_no,
                initiator,
                partners: members[1..].iter().map(|&p| p as u64).collect(),
                trigger: out.trigger,
            });
            if out.op_packets > 0 {
                self.emit(TraceEvent::PacketsMigrated {
                    step: self.step_no,
                    initiator,
                    count: out.op_packets,
                });
            }
            if out.op_markers > 0 {
                self.emit(TraceEvent::MarkerMoved {
                    step: self.step_no,
                    initiator,
                    count: out.op_markers,
                });
            }
        }
    }

    /// Executes every queued balance operation in conflict-free waves
    /// and folds the outcomes in trigger order.
    ///
    /// Wave partition, greedily by trigger index: operation k lands in
    /// wave `1 + max(wave of any earlier queued operation sharing a
    /// member)`.  Two operations in one wave therefore never share a
    /// processor — they write disjoint rows and commute bit-exactly —
    /// while the cross-wave order preserves the sequential read/write
    /// order on every shared processor.  The wave schedule depends only
    /// on the queued member sets, never on `step_jobs`, so any worker
    /// count (including 1) produces identical state.
    fn flush_pending(&mut self) {
        if self.pending_members.is_empty() {
            return;
        }
        let stride = self.params.delta() + 1;
        let pending = std::mem::take(&mut self.pending_members);
        let count = pending.len() / stride;
        for &p in &pending {
            self.pending_member[p] = false;
        }
        let tracing = self.trace_on();
        let step_jobs = self.step_jobs;
        let mut outcomes = std::mem::take(&mut self.scratch_outcomes);
        outcomes.clear();
        let mut wave_of = std::mem::take(&mut self.scratch_wave_of);
        let mut wave_ops = std::mem::take(&mut self.scratch_wave_ops);
        if count < self.wave_threshold {
            // Tiny flush: wave planning and pool dispatch cost more than
            // they save, and sequential execution in trigger order is
            // exactly the per-processor order the waves reproduce — so
            // skip the machinery (bit-identical results either way).
            let mut scratch = std::mem::take(&mut self.scratch_wave);
            let view = self.arena_view();
            for k in 0..count {
                let members = &pending[k * stride..(k + 1) * stride];
                outcomes
                    .push(unsafe { execute_full_balance(&view, members, tracing, &mut scratch) });
            }
            self.scratch_wave = scratch;
        } else {
            wave_of.clear();
            let mut waves = 0u32;
            for k in 0..count {
                let members = &pending[k * stride..(k + 1) * stride];
                let w = members
                    .iter()
                    .map(|&mm| self.wave_mark[mm])
                    .max()
                    .unwrap_or(0);
                for &mm in members {
                    self.wave_mark[mm] = w + 1;
                }
                wave_of.push(w);
                waves = waves.max(w + 1);
            }
            for &p in &pending {
                self.wave_mark[p] = 0;
            }
            outcomes.resize(count, OpOutcome::default());
            let view = self.arena_view();
            for w in 0..waves {
                wave_ops.clear();
                wave_ops.extend((0..count).filter(|&k| wave_of[k] == w));
                let view = &view;
                let pending = &pending;
                let wave_ops = &wave_ops;
                let results = par_map(step_jobs.min(wave_ops.len()), wave_ops.len(), |i| {
                    let k = wave_ops[i];
                    let members = &pending[k * stride..(k + 1) * stride];
                    WAVE_SCRATCH.with(|s| unsafe {
                        execute_full_balance(view, members, tracing, &mut s.borrow_mut())
                    })
                });
                for (i, out) in results.into_iter().enumerate() {
                    outcomes[wave_ops[i]] = out;
                }
            }
        }
        for (k, out) in outcomes.iter().enumerate() {
            let members = &pending[k * stride..(k + 1) * stride];
            self.fold_outcome(members, *out, tracing);
        }
        outcomes.clear();
        self.scratch_outcomes = outcomes;
        self.scratch_wave_of = wave_of;
        self.scratch_wave_ops = wave_ops;
        let mut pending = pending;
        pending.clear();
        self.pending_members = pending;
    }

    /// Shared body of [`LoadBalancer::step`] and
    /// [`LoadBalancer::step_sparse`]: processes `(processor, event)`
    /// pairs in ascending order, then settles the step.  An idle
    /// processor reads nothing, writes nothing and consumes no
    /// randomness in the dense loop, so the sparse path — which simply
    /// never yields idle pairs — is bit-identical by construction.
    fn step_events<I: Iterator<Item = (usize, LoadEvent)>>(&mut self, events: I) {
        let tracing = self.trace_on();
        let before = if tracing {
            self.metrics
        } else {
            Metrics::new()
        };
        for (i, ev) in events {
            // A queued balance involving i must land before i acts:
            // generation, consumption and the trigger check all read
            // row-i state the queued operation rewrites.  (Idle reads
            // nothing, so the queue keeps batching across idlers; the
            // flag is only ever set when step_jobs > 1.)
            if self.pending_member[i] && !matches!(ev, LoadEvent::Idle) {
                self.flush_pending();
            }
            match ev {
                LoadEvent::Generate => self.generate(i),
                LoadEvent::Consume => self.consume(i),
                LoadEvent::Idle => {}
            }
        }
        // Operations never outlive their step: the StepDelta below (and
        // any observer between steps) must see fully-settled state.
        self.flush_pending();
        if tracing {
            let delta = self.metrics.delta_from(&before);
            let counters: Vec<(String, u64)> = delta
                .nonzero_fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            if !counters.is_empty() {
                self.emit(TraceEvent::StepDelta {
                    step: self.step_no,
                    counters,
                });
            }
        }
        self.step_no += 1;
    }
}

impl LoadBalancer for DenseCluster {
    fn n(&self) -> usize {
        self.n
    }

    fn loads(&self) -> Vec<u64> {
        self.load.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.load);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.n, "one event per processor");
        self.step_events(events.iter().copied().enumerate());
    }

    fn step_sparse(&mut self, active: &[(usize, LoadEvent)]) {
        check_sparse_events(active, self.n);
        self.step_events(active.iter().copied());
    }

    fn step_sparse_masked(&mut self, active: &[(usize, LoadEvent)], down: &[bool]) {
        assert_eq!(down.len(), self.n, "mask length mismatch");
        check_sparse_events(active, self.n);
        // The dense masked path (the trait default) turns a down
        // processor's event into Idle, and idle costs nothing — so
        // filtering down actives out of the sparse list is the same
        // computation.
        self.step_events(active.iter().copied().filter(|&(i, _)| !down[i]));
    }

    fn load_summary(&mut self) -> LoadSummary {
        // The dense engine caps out near n = 4096 (O(n²) arenas), where
        // a plain scan is already cheap — no lazy heaps needed.
        LoadSummary::from_loads(&self.load)
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "spaa93-full-dense"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    fn set_step_jobs(&mut self, jobs: usize) {
        self.step_jobs = jobs.max(1);
    }

    fn set_wave_threshold(&mut self, threshold: usize) {
        self.wave_threshold = threshold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_random(params: Params, seed: u64, steps: usize, p_gen: f64, p_con: f64) -> DenseCluster {
        let mut cluster = DenseCluster::new(params, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
        let n = params.n();
        for _ in 0..steps {
            let events: Vec<LoadEvent> = (0..n)
                .map(|_| {
                    let x: f64 = rng.gen();
                    if x < p_gen {
                        LoadEvent::Generate
                    } else if x < p_gen + p_con {
                        LoadEvent::Consume
                    } else {
                        LoadEvent::Idle
                    }
                })
                .collect();
            cluster.step(&events);
        }
        cluster
    }

    // The exhaustive behavioural suite lives on the sparse `Cluster`
    // (crate::cluster::tests) and the cross-engine proptests in
    // tests/sparse_equivalence.rs; here only the dense engine's own
    // invariants and its wave executor are smoke-checked.

    #[test]
    fn mixed_workload_keeps_all_invariants() {
        for seed in 0..3 {
            let params = Params::paper_section7(16);
            let cluster = run_random(params, seed, 400, 0.45, 0.45);
            cluster.check_invariants().unwrap();
            assert_eq!(cluster.metrics().consume_failed, 0, "seed {seed}");
        }
    }

    #[test]
    fn aggressive_policy_also_preserves_global_ledger() {
        let params = Params::new(8, 2, 1.4, 4)
            .unwrap()
            .with_exchange(ExchangePolicy::Aggressive);
        let cluster = run_random(params, 23, 800, 0.4, 0.4);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn step_jobs_is_bit_identical_to_sequential() {
        let params = Params::paper_section7(16);
        let seq = run_random(params, 91, 300, 0.45, 0.45);
        for jobs in [2, 4] {
            let mut par = DenseCluster::new(params, 91);
            par.set_step_jobs(jobs);
            let mut rng = ChaCha8Rng::seed_from_u64(91 ^ 0xfeed);
            for _ in 0..300 {
                let events: Vec<LoadEvent> = (0..16)
                    .map(|_| {
                        let x: f64 = rng.gen();
                        if x < 0.45 {
                            LoadEvent::Generate
                        } else if x < 0.9 {
                            LoadEvent::Consume
                        } else {
                            LoadEvent::Idle
                        }
                    })
                    .collect();
                par.step(&events);
            }
            par.check_invariants().unwrap();
            assert_eq!(par.loads(), seq.loads(), "jobs={jobs}");
            assert_eq!(par.metrics(), seq.metrics(), "jobs={jobs}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let params = Params::paper_section7(8);
        let a = run_random(params, 42, 300, 0.5, 0.3).loads();
        let b = run_random(params, 42, 300, 0.5, 0.3).loads();
        assert_eq!(a, b);
    }

    #[test]
    fn step_sparse_is_bit_identical_to_dense_step() {
        let params = Params::paper_section7(16);
        let mut dense = DenseCluster::new(params, 5);
        let mut sparse = DenseCluster::new(params, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for t in 0..300usize {
            let events: Vec<LoadEvent> = (0..16)
                .map(|_| {
                    let x: f64 = rng.gen();
                    if x < 0.3 {
                        LoadEvent::Generate
                    } else if x < 0.6 {
                        LoadEvent::Consume
                    } else {
                        LoadEvent::Idle
                    }
                })
                .collect();
            let active: Vec<(usize, LoadEvent)> = events
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, e)| e != LoadEvent::Idle)
                .collect();
            dense.step(&events);
            sparse.step_sparse(&active);
            assert_eq!(dense.loads(), sparse.loads(), "step {t}");
        }
        assert_eq!(dense.metrics(), sparse.metrics());
        sparse.check_invariants().unwrap();
    }
}
