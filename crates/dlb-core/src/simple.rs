//! The *practical* variant of the algorithm (the method of [7] the paper's
//! §1 describes): no virtual load classes — each processor watches its raw
//! packet count and, when it has grown or shrunk by the factor `f` since
//! the last balancing it took part in, equalises the load of itself and
//! `δ` random partners (±1).
//!
//! This is the variant the paper's cited applications (branch & bound,
//! concurrent Prolog, graphics) actually ran; the virtual-class machinery
//! of [`crate::cluster`] exists to make the analysis of Theorem 4 go
//! through.  Comparing the two is the `ablation` experiment.
//!
//! Hot-path note: the alive-candidate list used under a crash mask is
//! cached and rebuilt only when the mask changes (checked once per step,
//! not per balancing operation), and partner draws / share splits write
//! into reusable scratch buffers — steady-state stepping allocates
//! nothing.  Behaviour is bit-identical to the dense reference
//! implementation in [`crate::reference`] (see `tests/opt_equivalence.rs`).

use crate::balance::even_shares_into;
use crate::metrics::Metrics;
use crate::params::Params;
use crate::strategy::{check_sparse_events, LoadBalancer, LoadEvent, LoadSummary};
use crate::summary::SummaryTracker;
use dlb_pool::par_map;
use dlb_trace::{SharedSink, TraceEvent};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Default wave threshold for [`SimpleCluster`], much higher than the
/// full model's [`crate::strategy::DEFAULT_WAVE_THRESHOLD`]: a raw-load
/// balance op only moves δ + 1 integers (tens of nanoseconds), so pool
/// dispatch — microseconds per wave — cannot pay for itself until a
/// flush carries thousands of ops.  Below this the engine neither
/// defers nor wave-plans, which is what fixed the `step_jobs=4`
/// regression recorded in BENCH_core.json (n=4096: 123 ms → parity
/// with sequential).  Override with
/// [`LoadBalancer::set_wave_threshold`]; 0 forces the wave executor
/// for every flush (used by the equivalence tests).
pub const SIMPLE_WAVE_THRESHOLD: usize = 4096;

thread_local! {
    /// Per-thread share scratch for wave execution.
    static WAVE_SHARES: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// What executing one raw-load balance produced; folded into metrics and
/// trace in trigger order.
#[derive(Clone, Copy, Default)]
struct OpOutcome {
    /// The f-factor ratio that fired the trigger (0.0 unless tracing).
    trigger: f64,
    /// Packets that physically moved between members.
    op_packets: u64,
}

/// Raw view of the two per-processor vectors a balance operation writes.
/// Operations in one wave have disjoint member sets (enforced by the
/// planner in [`SimpleCluster::flush_pending`]), so concurrent
/// executors touch disjoint entries.
struct LoadsView {
    loads: *mut u64,
    l_old: *mut u64,
}

unsafe impl Send for LoadsView {}
unsafe impl Sync for LoadsView {}

/// Executes one raw-load equalisation over `members` (initiator first):
/// the body of [`SimpleCluster::full_balance`], shared by the sequential
/// path and the wave executor.  Consumes no RNG.
///
/// # Safety
///
/// No other thread may concurrently touch the loads of `members`.
unsafe fn execute_balance(
    view: &LoadsView,
    members: &[usize],
    tracing: bool,
    shares: &mut Vec<u64>,
) -> OpOutcome {
    let initiator = members[0];
    // Untouched between draw and execution (queued operations touching
    // the initiator were flushed before its event), so this equals the
    // draw-time ratio.
    let trigger = if tracing {
        *view.loads.add(initiator) as f64 / (*view.l_old.add(initiator)).max(1) as f64
    } else {
        0.0
    };
    let total: u64 = members.iter().map(|&mm| *view.loads.add(mm)).sum();
    even_shares_into(total, members.len(), shares);
    let mut op_packets = 0u64;
    for (&mm, &share) in members.iter().zip(shares.iter()) {
        op_packets += (*view.loads.add(mm)).saturating_sub(share);
        *view.loads.add(mm) = share;
        *view.l_old.add(mm) = share;
    }
    OpOutcome {
        trigger,
        op_packets,
    }
}

/// The practical raw-load balancer.
pub struct SimpleCluster {
    params: Params,
    loads: Vec<u64>,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    initial_total: u64,
    /// The crash mask the alive-candidate cache was built from.
    mask_cache: Vec<bool>,
    /// Sorted processors alive under `mask_cache`.
    alive: Vec<usize>,
    /// Whether the current step's mask has any down processor.
    any_down: bool,
    scratch_members: Vec<usize>,
    scratch_shares: Vec<u64>,
    scratch_sample: Vec<usize>,
    sink: Option<SharedSink>,
    step_no: u64,
    /// Intra-step parallelism (1 = execute at the trigger, as before).
    step_jobs: usize,
    /// Flushes with fewer queued operations than this run sequentially
    /// (see [`LoadBalancer::set_wave_threshold`]; default
    /// [`SIMPLE_WAVE_THRESHOLD`]).
    wave_threshold: usize,
    /// Whether operations drawn this step are queued for wave execution.
    /// Decided once per step from the previous step's op count: a step
    /// expected to stay under the wave threshold would pay the deferral
    /// bookkeeping only to run sequentially at the flush anyway, so it
    /// executes eagerly at the trigger instead.  Either path is
    /// bit-identical (execution consumes no RNG and folds in trigger
    /// order), so the heuristic can only affect speed, never results.
    defer_waves: bool,
    /// Balance operations drawn during the previous step (the
    /// `defer_waves` predictor).
    prev_step_ops: u64,
    /// Flat member lists of queued operations, in trigger order
    /// (variable length under a crash mask — see `pending_lens`).
    pending_members: Vec<usize>,
    /// Member count of each queued operation.
    pending_lens: Vec<u32>,
    /// Per-processor flag: member of some queued operation.
    pending_member: Vec<bool>,
    /// Wave-planning scratch: 1 + index of the last wave touching a
    /// processor (zeroed outside `flush_pending`).
    wave_mark: Vec<u32>,
    scratch_wave_of: Vec<u32>,
    scratch_wave_ops: Vec<usize>,
    scratch_offsets: Vec<usize>,
    scratch_outcomes: Vec<OpOutcome>,
    /// Lazy min/max heaps backing [`LoadBalancer::load_summary`];
    /// observer state, built on the first query (`None` until then, so
    /// unobserved runs pay one branch per load change).
    summary: Option<SummaryTracker>,
}

impl SimpleCluster {
    /// An empty cluster.
    pub fn new(params: Params, seed: u64) -> Self {
        Self::with_initial_load(params, seed, 0)
    }

    /// A cluster where every processor starts with `initial` packets.
    pub fn with_initial_load(params: Params, seed: u64, initial: u64) -> Self {
        let n = params.n();
        SimpleCluster {
            params,
            loads: vec![initial; n],
            l_old: vec![initial; n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            initial_total: initial * n as u64,
            mask_cache: vec![false; n],
            alive: (0..n).collect(),
            any_down: false,
            scratch_members: Vec::new(),
            scratch_shares: Vec::new(),
            scratch_sample: Vec::new(),
            sink: None,
            step_no: 0,
            step_jobs: 1,
            wave_threshold: SIMPLE_WAVE_THRESHOLD,
            defer_waves: false,
            prev_step_ops: 0,
            pending_members: Vec::new(),
            pending_lens: Vec::new(),
            pending_member: vec![false; n],
            wave_mark: vec![0; n],
            scratch_wave_of: Vec::new(),
            scratch_wave_ops: Vec::new(),
            scratch_offsets: Vec::new(),
            scratch_outcomes: Vec::new(),
            summary: None,
        }
    }

    /// Feeds processor `i`'s (already updated) load to the summary
    /// tracker.  Must follow every `self.loads` mutation on a
    /// sequential path; the balance executor's writes are covered
    /// per-member in [`SimpleCluster::fold_outcome`] instead.
    #[inline]
    fn note_load(&mut self, i: usize) {
        if let Some(tracker) = self.summary.as_mut() {
            tracker.note(i, &self.loads);
        }
    }

    fn trace_on(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.enabled())
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// The parameter set this cluster runs with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Load of processor `i`.
    pub fn load(&self, i: usize) -> u64 {
        self.loads[i]
    }

    /// Checks conservation of packets; returns the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let total: u64 = self.loads.iter().sum();
        let expect = self.initial_total + self.metrics.generated - self.metrics.consumed;
        if total != expect {
            return Err(format!("global load {total} != expected {expect}"));
        }
        let alive_expect = self.mask_cache.iter().filter(|&&d| !d).count();
        if self.alive.len() != alive_expect {
            return Err(format!(
                "alive cache holds {} processors, mask says {alive_expect}",
                self.alive.len()
            ));
        }
        Ok(())
    }

    fn trigger_check(&mut self, i: usize) {
        let cur = self.loads[i];
        let last = self.l_old[i];
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i);
        }
    }

    /// The vendored `rand::seq::index::sample` Floyd loop, inlined into a
    /// scratch buffer so partner draws are allocation-free while consuming
    /// the RNG identically.
    fn draw_sample(&mut self, length: usize, amount: usize, raw: &mut Vec<usize>) {
        raw.clear();
        for j in (length - amount)..length {
            let t = self.rng.gen_range(0..=j);
            if raw.contains(&t) {
                raw.push(j);
            } else {
                raw.push(t);
            }
        }
    }

    /// Balances the initiator with `δ` random alive partners.  Down
    /// processors (per the mask cached by the current step) are never
    /// picked.
    fn full_balance(&mut self, initiator: usize) {
        let n = self.params.n();
        let delta = self.params.delta();
        let mut members = std::mem::take(&mut self.scratch_members);
        let mut raw = std::mem::take(&mut self.scratch_sample);
        members.clear();
        members.push(initiator);
        if self.any_down {
            // Candidates = alive processors minus the initiator (who is
            // alive, or it could not have acted), in sorted order — the
            // cached `alive` list with one index skipped.
            let cand_len = self.alive.len() - 1;
            if cand_len == 0 {
                self.scratch_members = members;
                self.scratch_sample = raw;
                return; // nobody alive to balance with
            }
            let pos = self
                .alive
                .binary_search(&initiator)
                .expect("initiator is alive");
            let k = delta.min(cand_len);
            self.draw_sample(cand_len, k, &mut raw);
            members.extend(raw.iter().map(|&x| self.alive[x + usize::from(x >= pos)]));
        } else {
            self.draw_sample(n - 1, delta, &mut raw);
            members.extend(raw.iter().map(|&x| if x >= initiator { x + 1 } else { x }));
        }
        self.scratch_sample = raw;
        if self.defer_waves {
            // Defer: everything below the draw touches only the members'
            // loads, so member-disjoint operations commute bit-exactly
            // (see `flush_pending`).
            self.pending_lens.push(members.len() as u32);
            for &mm in &members {
                self.pending_members.push(mm);
                self.pending_member[mm] = true;
            }
            members.clear();
            self.scratch_members = members;
            return;
        }
        let tracing = self.trace_on();
        let mut shares = std::mem::take(&mut self.scratch_shares);
        let out = {
            let view = LoadsView {
                loads: self.loads.as_mut_ptr(),
                l_old: self.l_old.as_mut_ptr(),
            };
            unsafe { execute_balance(&view, &members, tracing, &mut shares) }
        };
        self.scratch_shares = shares;
        self.fold_outcome(&members, out, tracing);
        members.clear();
        self.scratch_members = members;
    }

    /// Folds one executed operation into metrics and trace, in trigger
    /// order — reconstructing the exact sequential counter sums and
    /// event stream (BalanceInitiated, then PacketsMigrated if any).
    fn fold_outcome(&mut self, members: &[usize], out: OpOutcome, tracing: bool) {
        // The executor wrote the members' loads through raw pointers
        // (possibly on pool workers); the summary tracker catches up
        // here, on the sequential fold.
        if self.summary.is_some() {
            for &mm in members {
                self.note_load(mm);
            }
        }
        self.metrics.balance_ops += 1;
        self.metrics.messages += members.len() as u64;
        if tracing {
            self.emit(TraceEvent::BalanceInitiated {
                step: self.step_no,
                initiator: members[0] as u64,
                partners: members[1..].iter().map(|&p| p as u64).collect(),
                trigger: out.trigger,
            });
        }
        self.metrics.packets_migrated += out.op_packets;
        if out.op_packets > 0 && tracing {
            self.emit(TraceEvent::PacketsMigrated {
                step: self.step_no,
                initiator: members[0] as u64,
                count: out.op_packets,
            });
        }
    }

    /// Executes every queued operation in conflict-free waves (greedy by
    /// trigger index over the member sets, exactly as in
    /// [`crate::cluster::Cluster`]) and folds outcomes in trigger order.
    /// The wave schedule depends only on the member sets, never on
    /// `step_jobs`, so every worker count produces identical state.
    fn flush_pending(&mut self) {
        if self.pending_lens.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_members);
        let lens = std::mem::take(&mut self.pending_lens);
        let count = lens.len();
        for &p in &pending {
            self.pending_member[p] = false;
        }
        let tracing = self.trace_on();
        let step_jobs = self.step_jobs;
        if count < self.wave_threshold {
            // Tiny flush: wave planning and pool dispatch cost more than
            // they save, and sequential execution in trigger order is
            // exactly the per-processor order the waves reproduce — so
            // skip the machinery entirely and fold each outcome as it
            // executes (execution consumes no RNG and emits nothing, so
            // interleaving execute/fold keeps the trigger-order counter
            // sums and event stream bit-identical).
            let mut shares = std::mem::take(&mut self.scratch_shares);
            let mut pos = 0usize;
            for &len in &lens {
                let members = &pending[pos..pos + len as usize];
                pos += len as usize;
                let out = {
                    let view = LoadsView {
                        loads: self.loads.as_mut_ptr(),
                        l_old: self.l_old.as_mut_ptr(),
                    };
                    unsafe { execute_balance(&view, members, tracing, &mut shares) }
                };
                self.fold_outcome(members, out, tracing);
            }
            self.scratch_shares = shares;
            let (mut pending, mut lens) = (pending, lens);
            pending.clear();
            lens.clear();
            self.pending_members = pending;
            self.pending_lens = lens;
            return;
        }
        let mut offsets = std::mem::take(&mut self.scratch_offsets);
        offsets.clear();
        let mut acc = 0usize;
        for &len in &lens {
            offsets.push(acc);
            acc += len as usize;
        }
        let mut outcomes = std::mem::take(&mut self.scratch_outcomes);
        outcomes.clear();
        let mut wave_of = std::mem::take(&mut self.scratch_wave_of);
        let mut wave_ops = std::mem::take(&mut self.scratch_wave_ops);
        {
            wave_of.clear();
            let mut waves = 0u32;
            for k in 0..count {
                let members = &pending[offsets[k]..offsets[k] + lens[k] as usize];
                let w = members
                    .iter()
                    .map(|&mm| self.wave_mark[mm])
                    .max()
                    .unwrap_or(0);
                for &mm in members {
                    self.wave_mark[mm] = w + 1;
                }
                wave_of.push(w);
                waves = waves.max(w + 1);
            }
            for &p in &pending {
                self.wave_mark[p] = 0;
            }
            outcomes.resize(count, OpOutcome::default());
            let view = LoadsView {
                loads: self.loads.as_mut_ptr(),
                l_old: self.l_old.as_mut_ptr(),
            };
            for w in 0..waves {
                wave_ops.clear();
                wave_ops.extend((0..count).filter(|&k| wave_of[k] == w));
                let view = &view;
                let pending = &pending;
                let wave_ops = &wave_ops;
                let offsets = &offsets;
                let lens = &lens;
                let results = par_map(step_jobs.min(wave_ops.len()), wave_ops.len(), |i| {
                    let k = wave_ops[i];
                    let members = &pending[offsets[k]..offsets[k] + lens[k] as usize];
                    WAVE_SHARES.with(|s| unsafe {
                        execute_balance(view, members, tracing, &mut s.borrow_mut())
                    })
                });
                for (i, out) in results.into_iter().enumerate() {
                    outcomes[wave_ops[i]] = out;
                }
            }
        }
        for (k, out) in outcomes.iter().enumerate() {
            let members = &pending[offsets[k]..offsets[k] + lens[k] as usize];
            self.fold_outcome(members, *out, tracing);
        }
        outcomes.clear();
        self.scratch_outcomes = outcomes;
        self.scratch_wave_of = wave_of;
        self.scratch_wave_ops = wave_ops;
        self.scratch_offsets = offsets;
        let (mut pending, mut lens) = (pending, lens);
        pending.clear();
        lens.clear();
        self.pending_members = pending;
        self.pending_lens = lens;
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        self.step_impl_events(events.iter().copied().enumerate(), down);
    }

    /// Shared body of dense and sparse stepping: processes `(processor,
    /// event)` pairs in ascending order under an optional crash mask,
    /// then settles the step.  An idle (or down) processor reads
    /// nothing, writes nothing and consumes no randomness in the dense
    /// loop, so a sparse caller that yields only active pairs is
    /// bit-identical by construction.
    fn step_impl_events<I: Iterator<Item = (usize, LoadEvent)>>(
        &mut self,
        events: I,
        down: &[bool],
    ) {
        // Queue-or-eager decision, once per step: defer only when the
        // previous step's op count suggests the flush would actually
        // engage the wave executor (threshold 0 = always defer, used by
        // tests to force the wave path).  Bit-identical either way —
        // see `defer_waves`.
        let ops_before = self.metrics.balance_ops;
        self.defer_waves = self.step_jobs > 1
            && (self.wave_threshold == 0 || self.prev_step_ops >= self.wave_threshold as u64);
        // The mask is fixed for the whole step: refresh the alive cache
        // once here (only when the mask actually changed), not per
        // balancing operation.
        if down.is_empty() {
            self.any_down = false;
        } else {
            if down != self.mask_cache.as_slice() {
                self.mask_cache.clear();
                self.mask_cache.extend_from_slice(down);
                self.alive.clear();
                self.alive.extend((0..down.len()).filter(|&p| !down[p]));
            }
            self.any_down = down.iter().any(|&d| d);
        }
        let tracing = self.trace_on();
        let before = if tracing {
            self.metrics
        } else {
            Metrics::new()
        };
        for (i, ev) in events {
            if !down.is_empty() && down[i] {
                continue; // crashed: no event, no trigger, load frozen
            }
            // A queued balance involving i must land before i acts: the
            // event and the trigger check read loads[i] / l_old[i],
            // which the queued operation rewrites.  (Flag only ever set
            // when step_jobs > 1; Idle reads nothing.)
            if self.pending_member[i] && !matches!(ev, LoadEvent::Idle) {
                self.flush_pending();
            }
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.note_load(i);
                    self.metrics.generated += 1;
                    self.trigger_check(i);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.note_load(i);
                        self.metrics.consumed += 1;
                        self.trigger_check(i);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        // Operations never outlive their step: the StepDelta below (and
        // any observer between steps) must see fully-settled state.
        self.flush_pending();
        self.prev_step_ops = self.metrics.balance_ops - ops_before;
        if tracing {
            let delta = self.metrics.delta_from(&before);
            let counters: Vec<(String, u64)> = delta
                .nonzero_fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            if !counters.is_empty() {
                self.emit(TraceEvent::StepDelta {
                    step: self.step_no,
                    counters,
                });
            }
        }
        self.step_no += 1;
    }
}

impl LoadBalancer for SimpleCluster {
    fn n(&self) -> usize {
        self.params.n()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, &[]);
    }

    /// Crash-mask stepping: down processors take no events, never
    /// initiate, are never picked as partners, and their load is frozen
    /// in place until they rejoin.
    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, down);
    }

    fn step_sparse(&mut self, active: &[(usize, LoadEvent)]) {
        check_sparse_events(active, self.params.n());
        self.step_impl_events(active.iter().copied(), &[]);
    }

    fn step_sparse_masked(&mut self, active: &[(usize, LoadEvent)], down: &[bool]) {
        assert_eq!(down.len(), self.params.n(), "mask length mismatch");
        check_sparse_events(active, self.params.n());
        self.step_impl_events(active.iter().copied(), down);
    }

    fn load_summary(&mut self) -> LoadSummary {
        if self.summary.is_none() {
            self.summary = Some(SummaryTracker::new(&self.loads));
        }
        let (min, max) = self
            .summary
            .as_mut()
            .expect("just installed")
            .min_max(&self.loads);
        // Packet conservation (checked by `check_invariants`): total
        // load is initial + generated − consumed.
        LoadSummary {
            min,
            max,
            total: self.initial_total + self.metrics.generated - self.metrics.consumed,
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "spaa93-simple"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    fn set_step_jobs(&mut self, jobs: usize) {
        self.step_jobs = jobs.max(1);
    }

    fn set_wave_threshold(&mut self, threshold: usize) {
        self.wave_threshold = threshold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_balances_and_conserves() {
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::new(params, 1);
        let events = vec![LoadEvent::Generate; 8];
        for _ in 0..500 {
            cluster.step(&events);
        }
        cluster.check_invariants().unwrap();
        let loads = cluster.loads();
        assert_eq!(loads.iter().sum::<u64>(), 8 * 500);
        let stats = crate::strategy::imbalance_stats(&loads);
        assert!(stats.max_over_mean < 1.3, "{stats:?}");
    }

    #[test]
    fn one_producer_ratio_near_theorem_bound() {
        // Large initial load to make the f-trigger granularity negligible;
        // generator-only workload approximates the §3 model.
        let params = Params::new(32, 2, 1.5, 4).unwrap();
        let mut total_ratio = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut cluster = SimpleCluster::with_initial_load(params, seed, 1_000);
            let mut events = vec![LoadEvent::Idle; 32];
            events[0] = LoadEvent::Generate;
            for _ in 0..60_000 {
                cluster.step(&events);
            }
            let loads = cluster.loads();
            let others = loads[1..].iter().sum::<u64>() as f64 / 31.0;
            total_ratio += loads[0] as f64 / others;
        }
        let mean_ratio = total_ratio / runs as f64;
        // Theorem 2 bound δ/(δ+1−f) = 2/1.5 ≈ 1.33; the empirical mean
        // ratio should be near (and statistically not far above) it.
        let bound = dlb_theory::operators::fix_limit(2, 1.5);
        assert!(
            mean_ratio < bound * 1.25,
            "mean ratio {mean_ratio} vs bound {bound}"
        );
        assert!(mean_ratio > 1.0, "producer should carry more: {mean_ratio}");
    }

    #[test]
    fn consume_drains_to_zero() {
        let params = Params::paper_section7(4);
        let mut cluster = SimpleCluster::with_initial_load(params, 5, 100);
        let events = vec![LoadEvent::Consume; 4];
        for _ in 0..150 {
            cluster.step(&events);
        }
        assert_eq!(cluster.loads().iter().sum::<u64>(), 0);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let params = Params::paper_section7(8);
        let run = |seed| {
            let mut c = SimpleCluster::new(params, seed);
            let events: Vec<LoadEvent> = (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        LoadEvent::Generate
                    } else {
                        LoadEvent::Consume
                    }
                })
                .collect();
            for _ in 0..200 {
                c.step(&events);
            }
            c.loads()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn masked_step_freezes_down_processors() {
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::with_initial_load(params, 2, 50);
        let frozen = cluster.load(3);
        let events = vec![LoadEvent::Generate; 8];
        let mut down = vec![false; 8];
        down[3] = true;
        for _ in 0..200 {
            cluster.step_masked(&events, &down);
        }
        assert_eq!(cluster.load(3), frozen, "down processor's load is frozen");
        cluster.check_invariants().unwrap();
        // After recovery the processor participates again.
        down[3] = false;
        for _ in 0..200 {
            cluster.step_masked(&events, &down);
        }
        assert!(
            cluster.load(3) > frozen,
            "rejoined processor accumulates load"
        );
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn empty_mask_matches_plain_step() {
        let params = Params::paper_section7(8);
        let run = |masked: bool| {
            let mut c = SimpleCluster::new(params, 7);
            let events = vec![LoadEvent::Generate; 8];
            let down = vec![false; 8];
            for _ in 0..300 {
                if masked {
                    c.step_masked(&events, &down);
                } else {
                    c.step(&events);
                }
            }
            c.loads()
        };
        assert_eq!(run(true), run(false), "all-alive mask is a no-op");
    }

    #[test]
    fn alive_cache_survives_mask_flips() {
        // Alternate between masks so the cache is rebuilt, reused, and
        // bypassed (all-alive), interleaved with plain steps.
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::with_initial_load(params, 4, 30);
        let events = vec![LoadEvent::Generate; 8];
        let mut down_a = vec![false; 8];
        down_a[1] = true;
        let mut down_b = vec![false; 8];
        down_b[1] = true;
        down_b[5] = true;
        for round in 0..50 {
            match round % 4 {
                0 => cluster.step_masked(&events, &down_a),
                1 => cluster.step_masked(&events, &down_b),
                2 => cluster.step_masked(&events, &[false; 8]),
                _ => cluster.step(&events),
            }
            cluster.check_invariants().unwrap();
        }
    }

    #[test]
    fn step_jobs_matches_sequential_including_masked() {
        let params = Params::paper_section7(16);
        // threshold 0 forces defer + wave executor for every flush;
        // threshold 8 mixes eager steps, deferred wave flushes and
        // deferred sequential flushes; the default never defers at this
        // size — all must match plain sequential stepping bit-exactly.
        let run = |jobs: usize, threshold: usize| {
            let mut c = SimpleCluster::with_initial_load(params, 21, 40);
            c.set_step_jobs(jobs);
            c.set_wave_threshold(threshold);
            let mut rng = ChaCha8Rng::seed_from_u64(77);
            let mut down = vec![false; 16];
            for round in 0..300 {
                if round % 50 == 0 {
                    down[round / 50 % 16] ^= true;
                }
                let events: Vec<LoadEvent> = (0..16)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            LoadEvent::Generate
                        } else {
                            LoadEvent::Consume
                        }
                    })
                    .collect();
                c.step_masked(&events, &down);
            }
            c.check_invariants().unwrap();
            (c.loads(), *c.metrics())
        };
        let seq = run(1, SIMPLE_WAVE_THRESHOLD);
        for jobs in [2, 4, 8] {
            for threshold in [0, 8, SIMPLE_WAVE_THRESHOLD] {
                assert_eq!(
                    run(jobs, threshold),
                    seq,
                    "jobs={jobs} threshold={threshold}"
                );
            }
        }
    }

    #[test]
    fn step_sparse_is_bit_identical_including_masked() {
        let params = Params::paper_section7(16);
        for jobs in [1, 4] {
            let mut dense = SimpleCluster::with_initial_load(params, 8, 20);
            dense.set_step_jobs(jobs);
            let mut sparse = SimpleCluster::with_initial_load(params, 8, 20);
            sparse.set_step_jobs(jobs);
            let mut rng = ChaCha8Rng::seed_from_u64(41);
            let mut down = vec![false; 16];
            for round in 0..300usize {
                if round % 60 == 0 {
                    down[round / 60 % 16] ^= true;
                }
                let events: Vec<LoadEvent> = (0..16)
                    .map(|_| {
                        let x: f64 = rng.gen();
                        if x < 0.35 {
                            LoadEvent::Generate
                        } else if x < 0.7 {
                            LoadEvent::Consume
                        } else {
                            LoadEvent::Idle
                        }
                    })
                    .collect();
                let active: Vec<(usize, LoadEvent)> = events
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, e)| e != LoadEvent::Idle)
                    .collect();
                dense.step_masked(&events, &down);
                sparse.step_sparse_masked(&active, &down);
                assert_eq!(dense.loads(), sparse.loads(), "round {round} jobs={jobs}");
            }
            assert_eq!(dense.metrics(), sparse.metrics(), "jobs={jobs}");
            sparse.check_invariants().unwrap();
        }
    }

    #[test]
    fn load_summary_is_exact_and_passive() {
        let params = Params::paper_section7(8);
        let run = |observe: bool| {
            let mut c = SimpleCluster::with_initial_load(params, 12, 10);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..400 {
                let events: Vec<LoadEvent> = (0..8)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            LoadEvent::Generate
                        } else {
                            LoadEvent::Consume
                        }
                    })
                    .collect();
                c.step(&events);
                if observe {
                    let s = c.load_summary();
                    let loads = c.loads();
                    assert_eq!(s.min, *loads.iter().min().unwrap());
                    assert_eq!(s.max, *loads.iter().max().unwrap());
                    assert_eq!(s.total, loads.iter().sum::<u64>());
                }
            }
            (c.loads(), *c.metrics())
        };
        assert_eq!(run(true), run(false), "observation must be passive");
    }

    #[test]
    fn smaller_f_gives_more_balance_ops() {
        // §6 tradeoff: lower f = better balance but more operations.
        let count_ops = |f: f64| {
            let params = Params::new(16, 1, f, 4).unwrap();
            let mut cluster = SimpleCluster::new(params, 3);
            let events = vec![LoadEvent::Generate; 16];
            for _ in 0..300 {
                cluster.step(&events);
            }
            cluster.metrics().balance_ops
        };
        assert!(count_ops(1.1) > count_ops(1.8), "ops(1.1) > ops(1.8)");
    }
}
