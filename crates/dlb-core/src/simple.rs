//! The *practical* variant of the algorithm (the method of [7] the paper's
//! §1 describes): no virtual load classes — each processor watches its raw
//! packet count and, when it has grown or shrunk by the factor `f` since
//! the last balancing it took part in, equalises the load of itself and
//! `δ` random partners (±1).
//!
//! This is the variant the paper's cited applications (branch & bound,
//! concurrent Prolog, graphics) actually ran; the virtual-class machinery
//! of [`crate::cluster`] exists to make the analysis of Theorem 4 go
//! through.  Comparing the two is the `ablation` experiment.

use crate::balance::even_shares;
use crate::metrics::Metrics;
use crate::params::Params;
use crate::strategy::{LoadBalancer, LoadEvent};
use dlb_trace::{SharedSink, TraceEvent};
use rand::prelude::*;
use rand::seq::index::sample;
use rand_chacha::ChaCha8Rng;

/// The practical raw-load balancer.
pub struct SimpleCluster {
    params: Params,
    loads: Vec<u64>,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    initial_total: u64,
    sink: Option<SharedSink>,
    step_no: u64,
}

impl SimpleCluster {
    /// An empty cluster.
    pub fn new(params: Params, seed: u64) -> Self {
        Self::with_initial_load(params, seed, 0)
    }

    /// A cluster where every processor starts with `initial` packets.
    pub fn with_initial_load(params: Params, seed: u64, initial: u64) -> Self {
        let n = params.n();
        SimpleCluster {
            params,
            loads: vec![initial; n],
            l_old: vec![initial; n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            initial_total: initial * n as u64,
            sink: None,
            step_no: 0,
        }
    }

    fn trace_on(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.enabled())
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// The parameter set this cluster runs with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Load of processor `i`.
    pub fn load(&self, i: usize) -> u64 {
        self.loads[i]
    }

    /// Checks conservation of packets; returns the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let total: u64 = self.loads.iter().sum();
        let expect = self.initial_total + self.metrics.generated - self.metrics.consumed;
        if total != expect {
            return Err(format!("global load {total} != expected {expect}"));
        }
        Ok(())
    }

    fn trigger_check(&mut self, i: usize, down: &[bool]) {
        let cur = self.loads[i];
        let last = self.l_old[i];
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i, down);
        }
    }

    /// `down` is empty (no crash mask) or one flag per processor; down
    /// processors are never picked as partners.
    fn full_balance(&mut self, initiator: usize, down: &[bool]) {
        let n = self.params.n();
        let delta = self.params.delta();
        let mut members: Vec<usize> = vec![initiator];
        if down.iter().any(|&d| d) {
            let candidates: Vec<usize> = (0..n).filter(|&p| p != initiator && !down[p]).collect();
            if candidates.is_empty() {
                return; // nobody alive to balance with
            }
            let k = delta.min(candidates.len());
            members.extend(
                sample(&mut self.rng, candidates.len(), k)
                    .iter()
                    .map(|x| candidates[x]),
            );
        } else {
            members.extend(sample(&mut self.rng, n - 1, delta).iter().map(|x| {
                if x >= initiator {
                    x + 1
                } else {
                    x
                }
            }));
        }
        self.metrics.balance_ops += 1;
        self.metrics.messages += members.len() as u64;
        if self.trace_on() {
            self.emit(TraceEvent::BalanceInitiated {
                step: self.step_no,
                initiator: initiator as u64,
                partners: members[1..].iter().map(|&p| p as u64).collect(),
                trigger: self.loads[initiator] as f64 / self.l_old[initiator].max(1) as f64,
            });
        }
        let total: u64 = members.iter().map(|&m| self.loads[m]).sum();
        let shares = even_shares(total, members.len());
        let mut op_packets = 0u64;
        for (&m, &share) in members.iter().zip(shares.iter()) {
            op_packets += self.loads[m].saturating_sub(share);
            self.loads[m] = share;
            self.l_old[m] = share;
        }
        self.metrics.packets_migrated += op_packets;
        if op_packets > 0 && self.trace_on() {
            self.emit(TraceEvent::PacketsMigrated {
                step: self.step_no,
                initiator: initiator as u64,
                count: op_packets,
            });
        }
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        let tracing = self.trace_on();
        let before = if tracing {
            self.metrics
        } else {
            Metrics::new()
        };
        for (i, &ev) in events.iter().enumerate() {
            if !down.is_empty() && down[i] {
                continue; // crashed: no event, no trigger, load frozen
            }
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                    self.trigger_check(i, down);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                        self.trigger_check(i, down);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        if tracing {
            let delta = self.metrics.delta_from(&before);
            let counters: Vec<(String, u64)> = delta
                .nonzero_fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            if !counters.is_empty() {
                self.emit(TraceEvent::StepDelta {
                    step: self.step_no,
                    counters,
                });
            }
        }
        self.step_no += 1;
    }
}

impl LoadBalancer for SimpleCluster {
    fn n(&self) -> usize {
        self.params.n()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, &[]);
    }

    /// Crash-mask stepping: down processors take no events, never
    /// initiate, are never picked as partners, and their load is frozen
    /// in place until they rejoin.
    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, down);
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "spaa93-simple"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_balances_and_conserves() {
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::new(params, 1);
        let events = vec![LoadEvent::Generate; 8];
        for _ in 0..500 {
            cluster.step(&events);
        }
        cluster.check_invariants().unwrap();
        let loads = cluster.loads();
        assert_eq!(loads.iter().sum::<u64>(), 8 * 500);
        let stats = crate::strategy::imbalance_stats(&loads);
        assert!(stats.max_over_mean < 1.3, "{stats:?}");
    }

    #[test]
    fn one_producer_ratio_near_theorem_bound() {
        // Large initial load to make the f-trigger granularity negligible;
        // generator-only workload approximates the §3 model.
        let params = Params::new(32, 2, 1.5, 4).unwrap();
        let mut total_ratio = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut cluster = SimpleCluster::with_initial_load(params, seed, 1_000);
            let mut events = vec![LoadEvent::Idle; 32];
            events[0] = LoadEvent::Generate;
            for _ in 0..60_000 {
                cluster.step(&events);
            }
            let loads = cluster.loads();
            let others = loads[1..].iter().sum::<u64>() as f64 / 31.0;
            total_ratio += loads[0] as f64 / others;
        }
        let mean_ratio = total_ratio / runs as f64;
        // Theorem 2 bound δ/(δ+1−f) = 2/1.5 ≈ 1.33; the empirical mean
        // ratio should be near (and statistically not far above) it.
        let bound = dlb_theory::operators::fix_limit(2, 1.5);
        assert!(
            mean_ratio < bound * 1.25,
            "mean ratio {mean_ratio} vs bound {bound}"
        );
        assert!(mean_ratio > 1.0, "producer should carry more: {mean_ratio}");
    }

    #[test]
    fn consume_drains_to_zero() {
        let params = Params::paper_section7(4);
        let mut cluster = SimpleCluster::with_initial_load(params, 5, 100);
        let events = vec![LoadEvent::Consume; 4];
        for _ in 0..150 {
            cluster.step(&events);
        }
        assert_eq!(cluster.loads().iter().sum::<u64>(), 0);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let params = Params::paper_section7(8);
        let run = |seed| {
            let mut c = SimpleCluster::new(params, seed);
            let events: Vec<LoadEvent> = (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        LoadEvent::Generate
                    } else {
                        LoadEvent::Consume
                    }
                })
                .collect();
            for _ in 0..200 {
                c.step(&events);
            }
            c.loads()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn masked_step_freezes_down_processors() {
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::with_initial_load(params, 2, 50);
        let frozen = cluster.load(3);
        let events = vec![LoadEvent::Generate; 8];
        let mut down = vec![false; 8];
        down[3] = true;
        for _ in 0..200 {
            cluster.step_masked(&events, &down);
        }
        assert_eq!(cluster.load(3), frozen, "down processor's load is frozen");
        cluster.check_invariants().unwrap();
        // After recovery the processor participates again.
        down[3] = false;
        for _ in 0..200 {
            cluster.step_masked(&events, &down);
        }
        assert!(
            cluster.load(3) > frozen,
            "rejoined processor accumulates load"
        );
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn empty_mask_matches_plain_step() {
        let params = Params::paper_section7(8);
        let run = |masked: bool| {
            let mut c = SimpleCluster::new(params, 7);
            let events = vec![LoadEvent::Generate; 8];
            let down = vec![false; 8];
            for _ in 0..300 {
                if masked {
                    c.step_masked(&events, &down);
                } else {
                    c.step(&events);
                }
            }
            c.loads()
        };
        assert_eq!(run(true), run(false), "all-alive mask is a no-op");
    }

    #[test]
    fn smaller_f_gives_more_balance_ops() {
        // §6 tradeoff: lower f = better balance but more operations.
        let count_ops = |f: f64| {
            let params = Params::new(16, 1, f, 4).unwrap();
            let mut cluster = SimpleCluster::new(params, 3);
            let events = vec![LoadEvent::Generate; 16];
            for _ in 0..300 {
                cluster.step(&events);
            }
            cluster.metrics().balance_ops
        };
        assert!(count_ops(1.1) > count_ops(1.8), "ops(1.1) > ops(1.8)");
    }
}
