//! The *practical* variant of the algorithm (the method of [7] the paper's
//! §1 describes): no virtual load classes — each processor watches its raw
//! packet count and, when it has grown or shrunk by the factor `f` since
//! the last balancing it took part in, equalises the load of itself and
//! `δ` random partners (±1).
//!
//! This is the variant the paper's cited applications (branch & bound,
//! concurrent Prolog, graphics) actually ran; the virtual-class machinery
//! of [`crate::cluster`] exists to make the analysis of Theorem 4 go
//! through.  Comparing the two is the `ablation` experiment.
//!
//! Hot-path note: the alive-candidate list used under a crash mask is
//! cached and rebuilt only when the mask changes (checked once per step,
//! not per balancing operation), and partner draws / share splits write
//! into reusable scratch buffers — steady-state stepping allocates
//! nothing.  Behaviour is bit-identical to the dense reference
//! implementation in [`crate::reference`] (see `tests/opt_equivalence.rs`).

use crate::balance::even_shares_into;
use crate::metrics::Metrics;
use crate::params::Params;
use crate::strategy::{LoadBalancer, LoadEvent};
use dlb_trace::{SharedSink, TraceEvent};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// The practical raw-load balancer.
pub struct SimpleCluster {
    params: Params,
    loads: Vec<u64>,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    initial_total: u64,
    /// The crash mask the alive-candidate cache was built from.
    mask_cache: Vec<bool>,
    /// Sorted processors alive under `mask_cache`.
    alive: Vec<usize>,
    /// Whether the current step's mask has any down processor.
    any_down: bool,
    scratch_members: Vec<usize>,
    scratch_shares: Vec<u64>,
    scratch_sample: Vec<usize>,
    sink: Option<SharedSink>,
    step_no: u64,
}

impl SimpleCluster {
    /// An empty cluster.
    pub fn new(params: Params, seed: u64) -> Self {
        Self::with_initial_load(params, seed, 0)
    }

    /// A cluster where every processor starts with `initial` packets.
    pub fn with_initial_load(params: Params, seed: u64, initial: u64) -> Self {
        let n = params.n();
        SimpleCluster {
            params,
            loads: vec![initial; n],
            l_old: vec![initial; n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            initial_total: initial * n as u64,
            mask_cache: vec![false; n],
            alive: (0..n).collect(),
            any_down: false,
            scratch_members: Vec::new(),
            scratch_shares: Vec::new(),
            scratch_sample: Vec::new(),
            sink: None,
            step_no: 0,
        }
    }

    fn trace_on(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.enabled())
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// The parameter set this cluster runs with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Load of processor `i`.
    pub fn load(&self, i: usize) -> u64 {
        self.loads[i]
    }

    /// Checks conservation of packets; returns the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let total: u64 = self.loads.iter().sum();
        let expect = self.initial_total + self.metrics.generated - self.metrics.consumed;
        if total != expect {
            return Err(format!("global load {total} != expected {expect}"));
        }
        let alive_expect = self.mask_cache.iter().filter(|&&d| !d).count();
        if self.alive.len() != alive_expect {
            return Err(format!(
                "alive cache holds {} processors, mask says {alive_expect}",
                self.alive.len()
            ));
        }
        Ok(())
    }

    fn trigger_check(&mut self, i: usize) {
        let cur = self.loads[i];
        let last = self.l_old[i];
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i);
        }
    }

    /// The vendored `rand::seq::index::sample` Floyd loop, inlined into a
    /// scratch buffer so partner draws are allocation-free while consuming
    /// the RNG identically.
    fn draw_sample(&mut self, length: usize, amount: usize, raw: &mut Vec<usize>) {
        raw.clear();
        for j in (length - amount)..length {
            let t = self.rng.gen_range(0..=j);
            if raw.contains(&t) {
                raw.push(j);
            } else {
                raw.push(t);
            }
        }
    }

    /// Balances the initiator with `δ` random alive partners.  Down
    /// processors (per the mask cached by the current step) are never
    /// picked.
    fn full_balance(&mut self, initiator: usize) {
        let n = self.params.n();
        let delta = self.params.delta();
        let mut members = std::mem::take(&mut self.scratch_members);
        let mut raw = std::mem::take(&mut self.scratch_sample);
        members.clear();
        members.push(initiator);
        if self.any_down {
            // Candidates = alive processors minus the initiator (who is
            // alive, or it could not have acted), in sorted order — the
            // cached `alive` list with one index skipped.
            let cand_len = self.alive.len() - 1;
            if cand_len == 0 {
                self.scratch_members = members;
                self.scratch_sample = raw;
                return; // nobody alive to balance with
            }
            let pos = self
                .alive
                .binary_search(&initiator)
                .expect("initiator is alive");
            let k = delta.min(cand_len);
            self.draw_sample(cand_len, k, &mut raw);
            members.extend(raw.iter().map(|&x| self.alive[x + usize::from(x >= pos)]));
        } else {
            self.draw_sample(n - 1, delta, &mut raw);
            members.extend(raw.iter().map(|&x| if x >= initiator { x + 1 } else { x }));
        }
        self.scratch_sample = raw;
        self.metrics.balance_ops += 1;
        self.metrics.messages += members.len() as u64;
        if self.trace_on() {
            self.emit(TraceEvent::BalanceInitiated {
                step: self.step_no,
                initiator: initiator as u64,
                partners: members[1..].iter().map(|&p| p as u64).collect(),
                trigger: self.loads[initiator] as f64 / self.l_old[initiator].max(1) as f64,
            });
        }
        let total: u64 = members.iter().map(|&m| self.loads[m]).sum();
        let mut shares = std::mem::take(&mut self.scratch_shares);
        even_shares_into(total, members.len(), &mut shares);
        let mut op_packets = 0u64;
        for (&m, &share) in members.iter().zip(shares.iter()) {
            op_packets += self.loads[m].saturating_sub(share);
            self.loads[m] = share;
            self.l_old[m] = share;
        }
        self.scratch_shares = shares;
        self.scratch_members = members;
        self.metrics.packets_migrated += op_packets;
        if op_packets > 0 && self.trace_on() {
            self.emit(TraceEvent::PacketsMigrated {
                step: self.step_no,
                initiator: initiator as u64,
                count: op_packets,
            });
        }
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        // The mask is fixed for the whole step: refresh the alive cache
        // once here (only when the mask actually changed), not per
        // balancing operation.
        if down.is_empty() {
            self.any_down = false;
        } else {
            if down != self.mask_cache.as_slice() {
                self.mask_cache.clear();
                self.mask_cache.extend_from_slice(down);
                self.alive.clear();
                self.alive.extend((0..down.len()).filter(|&p| !down[p]));
            }
            self.any_down = down.iter().any(|&d| d);
        }
        let tracing = self.trace_on();
        let before = if tracing {
            self.metrics
        } else {
            Metrics::new()
        };
        for (i, &ev) in events.iter().enumerate() {
            if !down.is_empty() && down[i] {
                continue; // crashed: no event, no trigger, load frozen
            }
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                    self.trigger_check(i);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                        self.trigger_check(i);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
        if tracing {
            let delta = self.metrics.delta_from(&before);
            let counters: Vec<(String, u64)> = delta
                .nonzero_fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            if !counters.is_empty() {
                self.emit(TraceEvent::StepDelta {
                    step: self.step_no,
                    counters,
                });
            }
        }
        self.step_no += 1;
    }
}

impl LoadBalancer for SimpleCluster {
    fn n(&self) -> usize {
        self.params.n()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, &[]);
    }

    /// Crash-mask stepping: down processors take no events, never
    /// initiate, are never picked as partners, and their load is frozen
    /// in place until they rejoin.
    fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, down);
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "spaa93-simple"
    }

    fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_balances_and_conserves() {
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::new(params, 1);
        let events = vec![LoadEvent::Generate; 8];
        for _ in 0..500 {
            cluster.step(&events);
        }
        cluster.check_invariants().unwrap();
        let loads = cluster.loads();
        assert_eq!(loads.iter().sum::<u64>(), 8 * 500);
        let stats = crate::strategy::imbalance_stats(&loads);
        assert!(stats.max_over_mean < 1.3, "{stats:?}");
    }

    #[test]
    fn one_producer_ratio_near_theorem_bound() {
        // Large initial load to make the f-trigger granularity negligible;
        // generator-only workload approximates the §3 model.
        let params = Params::new(32, 2, 1.5, 4).unwrap();
        let mut total_ratio = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut cluster = SimpleCluster::with_initial_load(params, seed, 1_000);
            let mut events = vec![LoadEvent::Idle; 32];
            events[0] = LoadEvent::Generate;
            for _ in 0..60_000 {
                cluster.step(&events);
            }
            let loads = cluster.loads();
            let others = loads[1..].iter().sum::<u64>() as f64 / 31.0;
            total_ratio += loads[0] as f64 / others;
        }
        let mean_ratio = total_ratio / runs as f64;
        // Theorem 2 bound δ/(δ+1−f) = 2/1.5 ≈ 1.33; the empirical mean
        // ratio should be near (and statistically not far above) it.
        let bound = dlb_theory::operators::fix_limit(2, 1.5);
        assert!(
            mean_ratio < bound * 1.25,
            "mean ratio {mean_ratio} vs bound {bound}"
        );
        assert!(mean_ratio > 1.0, "producer should carry more: {mean_ratio}");
    }

    #[test]
    fn consume_drains_to_zero() {
        let params = Params::paper_section7(4);
        let mut cluster = SimpleCluster::with_initial_load(params, 5, 100);
        let events = vec![LoadEvent::Consume; 4];
        for _ in 0..150 {
            cluster.step(&events);
        }
        assert_eq!(cluster.loads().iter().sum::<u64>(), 0);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let params = Params::paper_section7(8);
        let run = |seed| {
            let mut c = SimpleCluster::new(params, seed);
            let events: Vec<LoadEvent> = (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        LoadEvent::Generate
                    } else {
                        LoadEvent::Consume
                    }
                })
                .collect();
            for _ in 0..200 {
                c.step(&events);
            }
            c.loads()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn masked_step_freezes_down_processors() {
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::with_initial_load(params, 2, 50);
        let frozen = cluster.load(3);
        let events = vec![LoadEvent::Generate; 8];
        let mut down = vec![false; 8];
        down[3] = true;
        for _ in 0..200 {
            cluster.step_masked(&events, &down);
        }
        assert_eq!(cluster.load(3), frozen, "down processor's load is frozen");
        cluster.check_invariants().unwrap();
        // After recovery the processor participates again.
        down[3] = false;
        for _ in 0..200 {
            cluster.step_masked(&events, &down);
        }
        assert!(
            cluster.load(3) > frozen,
            "rejoined processor accumulates load"
        );
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn empty_mask_matches_plain_step() {
        let params = Params::paper_section7(8);
        let run = |masked: bool| {
            let mut c = SimpleCluster::new(params, 7);
            let events = vec![LoadEvent::Generate; 8];
            let down = vec![false; 8];
            for _ in 0..300 {
                if masked {
                    c.step_masked(&events, &down);
                } else {
                    c.step(&events);
                }
            }
            c.loads()
        };
        assert_eq!(run(true), run(false), "all-alive mask is a no-op");
    }

    #[test]
    fn alive_cache_survives_mask_flips() {
        // Alternate between masks so the cache is rebuilt, reused, and
        // bypassed (all-alive), interleaved with plain steps.
        let params = Params::paper_section7(8);
        let mut cluster = SimpleCluster::with_initial_load(params, 4, 30);
        let events = vec![LoadEvent::Generate; 8];
        let mut down_a = vec![false; 8];
        down_a[1] = true;
        let mut down_b = vec![false; 8];
        down_b[1] = true;
        down_b[5] = true;
        for round in 0..50 {
            match round % 4 {
                0 => cluster.step_masked(&events, &down_a),
                1 => cluster.step_masked(&events, &down_b),
                2 => cluster.step_masked(&events, &[false; 8]),
                _ => cluster.step(&events),
            }
            cluster.check_invariants().unwrap();
        }
    }

    #[test]
    fn smaller_f_gives_more_balance_ops() {
        // §6 tradeoff: lower f = better balance but more operations.
        let count_ops = |f: f64| {
            let params = Params::new(16, 1, f, 4).unwrap();
            let mut cluster = SimpleCluster::new(params, 3);
            let events = vec![LoadEvent::Generate; 16];
            for _ in 0..300 {
                cluster.step(&events);
            }
            cluster.metrics().balance_ops
        };
        assert!(count_ops(1.1) > count_ops(1.8), "ops(1.1) > ops(1.8)");
    }
}
