//! Heterogeneous processors: balancing proportional to speed.
//!
//! The paper assumes identical processors; on a machine where processor
//! `i` retires `s_i` packets per step, equal loads are *wrong* — the
//! balanced state has `l_i ∝ s_i` so that every processor finishes its
//! pool at the same time.  This extension (in the spirit of the paper's
//! "further research" on adapting the scheme) keeps the trigger rule
//! untouched and changes only the redistribution: a balance operation
//! gives member `i` the share `⌊total · s_i / Σs⌋` plus largest-remainder
//! corrections, so the *normalised* loads `l_i / s_i` are equalised as
//! tightly as indivisibility allows.

use crate::metrics::Metrics;
use crate::params::Params;
use crate::strategy::{LoadBalancer, LoadEvent};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Splits `total` proportionally to `weights` (largest-remainder method;
/// exact conservation, shares within one packet of the real proportion).
pub fn proportional_shares(total: u64, weights: &[u64]) -> Vec<u64> {
    let mut shares = Vec::with_capacity(weights.len());
    let mut remainders = Vec::with_capacity(weights.len());
    proportional_shares_into(total, weights, &mut shares, &mut remainders);
    shares
}

/// [`proportional_shares`] into caller-owned buffers (both cleared
/// first); `remainders` is pure scratch for the largest-remainder sort.
pub fn proportional_shares_into(
    total: u64,
    weights: &[u64],
    shares: &mut Vec<u64>,
    remainders: &mut Vec<(u64, usize)>,
) {
    assert!(!weights.is_empty(), "need at least one member");
    let weight_sum: u64 = weights.iter().sum();
    assert!(weight_sum > 0, "total weight must be positive");
    shares.clear();
    remainders.clear();
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let exact_num = (total as u128) * (w as u128);
        let share = (exact_num / weight_sum as u128) as u64;
        let rem = (exact_num % weight_sum as u128) as u64;
        shares.push(share);
        remainders.push((rem, i));
        assigned += share;
    }
    // Hand the leftover packets to the largest remainders.  The index
    // tiebreak makes the comparator a total order, so the unstable sort
    // (no allocation, unlike the stable one) is deterministic.
    remainders.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in &remainders[..(total - assigned) as usize] {
        shares[i] += 1;
    }
}

/// The practical balancer for heterogeneous processor speeds.
pub struct WeightedCluster {
    params: Params,
    /// Relative speed of each processor (packets retired per step).
    speeds: Vec<u64>,
    loads: Vec<u64>,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    scratch_members: Vec<usize>,
    scratch_weights: Vec<u64>,
    scratch_shares: Vec<u64>,
    scratch_rem: Vec<(u64, usize)>,
    scratch_sample: Vec<usize>,
}

impl WeightedCluster {
    /// A cluster with per-processor speeds (all positive).
    ///
    /// # Panics
    ///
    /// Panics if `speeds.len() != params.n()` or any speed is zero.
    pub fn new(params: Params, speeds: Vec<u64>, seed: u64) -> Self {
        assert_eq!(speeds.len(), params.n(), "one speed per processor");
        assert!(speeds.iter().all(|&s| s > 0), "speeds must be positive");
        let n = params.n();
        WeightedCluster {
            params,
            speeds,
            loads: vec![0; n],
            l_old: vec![0; n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            scratch_members: Vec::new(),
            scratch_weights: Vec::new(),
            scratch_shares: Vec::new(),
            scratch_rem: Vec::new(),
            scratch_sample: Vec::new(),
        }
    }

    /// The processor speeds.
    pub fn speeds(&self) -> &[u64] {
        &self.speeds
    }

    /// Normalised loads `l_i / s_i` (the quantity the balancer equalises).
    pub fn normalized_loads(&self) -> Vec<f64> {
        self.loads
            .iter()
            .zip(self.speeds.iter())
            .map(|(&l, &s)| l as f64 / s as f64)
            .collect()
    }

    /// max/mean of the normalised loads (1.0 = perfectly speed-balanced).
    pub fn normalized_imbalance(&self) -> f64 {
        let norm = self.normalized_loads();
        let mean = norm.iter().sum::<f64>() / norm.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        norm.iter().copied().fold(0.0, f64::max) / mean
    }

    fn trigger_check(&mut self, i: usize) {
        let (cur, last) = (self.loads[i], self.l_old[i]);
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i);
        }
    }

    fn full_balance(&mut self, initiator: usize) {
        self.metrics.balance_ops += 1;
        let n = self.params.n();
        let delta = self.params.delta();
        let mut members = std::mem::take(&mut self.scratch_members);
        let mut raw = std::mem::take(&mut self.scratch_sample);
        members.clear();
        members.push(initiator);
        // The vendored Floyd sampling loop, inlined into scratch so the
        // draw is allocation-free with identical RNG consumption.
        raw.clear();
        for j in (n - 1 - delta)..(n - 1) {
            let t = self.rng.gen_range(0..=j);
            if raw.contains(&t) {
                raw.push(j);
            } else {
                raw.push(t);
            }
        }
        members.extend(raw.iter().map(|&x| if x >= initiator { x + 1 } else { x }));
        self.scratch_sample = raw;
        self.metrics.messages += members.len() as u64;
        let total: u64 = members.iter().map(|&m| self.loads[m]).sum();
        let mut weights = std::mem::take(&mut self.scratch_weights);
        weights.clear();
        weights.extend(members.iter().map(|&m| self.speeds[m]));
        let mut shares = std::mem::take(&mut self.scratch_shares);
        let mut rem = std::mem::take(&mut self.scratch_rem);
        proportional_shares_into(total, &weights, &mut shares, &mut rem);
        for (&m, &share) in members.iter().zip(shares.iter()) {
            self.metrics.packets_migrated += self.loads[m].saturating_sub(share);
            self.loads[m] = share;
            self.l_old[m] = share;
        }
        self.scratch_weights = weights;
        self.scratch_shares = shares;
        self.scratch_rem = rem;
        self.scratch_members = members;
    }
}

impl LoadBalancer for WeightedCluster {
    fn n(&self) -> usize {
        self.params.n()
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    fn loads_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.loads);
    }

    fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                    self.trigger_check(i);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                        self.trigger_check(i);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "spaa93-weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_shares_conserve_and_track_weights() {
        let shares = proportional_shares(100, &[1, 2, 7]);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        assert_eq!(shares, vec![10, 20, 70]);
        // Indivisible leftovers go to the largest remainders.
        let shares = proportional_shares(10, &[1, 1, 1]);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        assert!(shares.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn equal_weights_reduce_to_even_split() {
        let shares = proportional_shares(11, &[5, 5]);
        assert_eq!(shares.iter().sum::<u64>(), 11);
        assert!(shares[0].abs_diff(shares[1]) <= 1);
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn zero_weights_rejected() {
        proportional_shares(5, &[0, 0]);
    }

    #[test]
    fn heterogeneous_cluster_balances_by_speed() {
        // Speeds 1/2/4/8: the fast processor should end with ~8x the
        // load of the slow one, all normalised loads roughly equal.
        let params = Params::new(4, 1, 1.1, 4).unwrap();
        let speeds = vec![1u64, 2, 4, 8];
        let mut cluster = WeightedCluster::new(params, speeds, 7);
        let mut events = vec![LoadEvent::Idle; 4];
        events[0] = LoadEvent::Generate;
        for _ in 0..6000 {
            cluster.step(&events);
        }
        let loads = cluster.loads();
        assert_eq!(loads.iter().sum::<u64>(), 6000);
        assert!(
            loads[3] > 4 * loads[0],
            "fast processor carries much more: {loads:?}"
        );
        assert!(
            cluster.normalized_imbalance() < 1.5,
            "normalised loads equalised: {:?}",
            cluster.normalized_loads()
        );
    }

    #[test]
    fn uniform_speeds_match_simple_cluster_quality() {
        let params = Params::paper_section7(8);
        let mut weighted = WeightedCluster::new(params, vec![3; 8], 5);
        let events = vec![LoadEvent::Generate; 8];
        for _ in 0..400 {
            weighted.step(&events);
        }
        let loads = weighted.loads();
        assert_eq!(loads.iter().sum::<u64>(), 8 * 400);
        let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
        assert!(
            spread <= 8,
            "uniform speeds behave like the unweighted balancer: {loads:?}"
        );
    }

    #[test]
    fn conservation_under_mixed_events() {
        let params = Params::new(6, 2, 1.4, 4).unwrap();
        let mut cluster = WeightedCluster::new(params, vec![1, 1, 2, 2, 3, 3], 9);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..500 {
            let events: Vec<LoadEvent> = (0..6)
                .map(|_| match rng.gen_range(0..3) {
                    0 => LoadEvent::Generate,
                    1 => LoadEvent::Consume,
                    _ => LoadEvent::Idle,
                })
                .collect();
            cluster.step(&events);
        }
        let m = cluster.metrics();
        assert_eq!(
            cluster.loads().iter().sum::<u64>(),
            m.generated - m.consumed
        );
    }

    #[test]
    #[should_panic(expected = "one speed per processor")]
    fn speed_count_validated() {
        WeightedCluster::new(Params::paper_section7(4), vec![1, 2], 0);
    }
}
