//! Serialisable snapshots of the full algorithm's state.
//!
//! A [`ClusterSnapshot`] captures everything — per-processor matrices,
//! ledgers, metrics and the exact position of the random stream — so a
//! restored cluster continues *bit-identically*.  Useful for
//! checkpointing long experiments and for bug reproduction.

use crate::cluster::Cluster;
use crate::metrics::Metrics;
use crate::params::{ExchangePolicy, Params};
use dlb_json::{FromJson, Json, ToJson};

/// Complete serialisable state of a [`Cluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// Network size `n`.
    pub n: usize,
    /// Neighbourhood size `δ`.
    pub delta: usize,
    /// Trigger factor `f`.
    pub f: f64,
    /// Borrow limit `C`.
    pub c_borrow: usize,
    /// Exchange policy.
    pub exchange: ExchangePolicy,
    /// Per-processor `d` matrices (row-major, `n × n`).
    pub d: Vec<Vec<u64>>,
    /// Per-processor `b` matrices.
    pub b: Vec<Vec<u64>>,
    /// Per-processor `l_old` values.
    pub l_old: Vec<u64>,
    /// Ledger: fresh generations per class.
    pub fresh_generated: Vec<u64>,
    /// Ledger: direct consumptions per class.
    pub direct_consumed: Vec<u64>,
    /// Ledger: settled markers per class.
    pub settled: Vec<u64>,
    /// Initial total load at construction.
    pub initial_total: u64,
    /// Activity counters.
    pub metrics: Metrics,
    /// ChaCha seed of the random stream.
    pub rng_seed: [u8; 32],
    /// ChaCha word position of the random stream.
    pub rng_word_pos: u128,
}

impl ToJson for ClusterSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), self.n.to_json()),
            ("delta".into(), self.delta.to_json()),
            ("f".into(), self.f.to_json()),
            ("c_borrow".into(), self.c_borrow.to_json()),
            ("exchange".into(), self.exchange.to_json()),
            ("d".into(), self.d.to_json()),
            ("b".into(), self.b.to_json()),
            ("l_old".into(), self.l_old.to_json()),
            ("fresh_generated".into(), self.fresh_generated.to_json()),
            ("direct_consumed".into(), self.direct_consumed.to_json()),
            ("settled".into(), self.settled.to_json()),
            ("initial_total".into(), self.initial_total.to_json()),
            ("metrics".into(), self.metrics.to_json()),
            ("rng_seed".into(), self.rng_seed.to_vec().to_json()),
            ("rng_word_pos".into(), self.rng_word_pos.to_json()),
        ])
    }
}

impl FromJson for ClusterSnapshot {
    fn from_json(value: &Json) -> Result<Self, String> {
        let seed_bytes: Vec<u8> = dlb_json::req(value, "rng_seed")?;
        let rng_seed: [u8; 32] = seed_bytes
            .try_into()
            .map_err(|v: Vec<u8>| format!("rng_seed must hold 32 bytes, got {}", v.len()))?;
        Ok(ClusterSnapshot {
            n: dlb_json::req(value, "n")?,
            delta: dlb_json::req(value, "delta")?,
            f: dlb_json::req(value, "f")?,
            c_borrow: dlb_json::req(value, "c_borrow")?,
            exchange: dlb_json::req(value, "exchange")?,
            d: dlb_json::req(value, "d")?,
            b: dlb_json::req(value, "b")?,
            l_old: dlb_json::req(value, "l_old")?,
            fresh_generated: dlb_json::req(value, "fresh_generated")?,
            direct_consumed: dlb_json::req(value, "direct_consumed")?,
            settled: dlb_json::req(value, "settled")?,
            initial_total: dlb_json::req(value, "initial_total")?,
            metrics: dlb_json::req(value, "metrics")?,
            rng_seed,
            rng_word_pos: dlb_json::req(value, "rng_word_pos")?,
        })
    }
}

impl ClusterSnapshot {
    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).render()
    }

    /// Deserialises from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        FromJson::from_json(&Json::parse(text)?)
    }

    /// Reconstructs the parameter set.
    pub fn params(&self) -> Result<Params, dlb_theory::ParamError> {
        Ok(Params::new(self.n, self.delta, self.f, self.c_borrow)?.with_exchange(self.exchange))
    }
}

impl Cluster {
    /// Captures the complete current state.
    pub fn snapshot(&self) -> ClusterSnapshot {
        self.snapshot_impl()
    }

    /// Restores a cluster from a snapshot; the restored cluster continues
    /// bit-identically to the original.
    pub fn restore(snapshot: &ClusterSnapshot) -> Result<Cluster, String> {
        Cluster::restore_impl(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{LoadBalancer, LoadEvent};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_events(n: usize, rng: &mut impl Rng) -> Vec<LoadEvent> {
        (0..n)
            .map(|_| match rng.gen_range(0..3) {
                0 => LoadEvent::Generate,
                1 => LoadEvent::Consume,
                _ => LoadEvent::Idle,
            })
            .collect()
    }

    #[test]
    fn snapshot_restores_bit_identical_continuation() {
        let params = Params::paper_section7(8);
        let mut original = Cluster::new(params, 42);
        let mut ev_rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..120 {
            let ev = random_events(8, &mut ev_rng);
            original.step(&ev);
        }
        let snap = original.snapshot();
        let mut restored = Cluster::restore(&snap).expect("restore");

        let mut ev_rng_a = ChaCha8Rng::seed_from_u64(8);
        let mut ev_rng_b = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..80 {
            original.step(&random_events(8, &mut ev_rng_a));
            restored.step(&random_events(8, &mut ev_rng_b));
        }
        assert_eq!(original.loads(), restored.loads());
        assert_eq!(original.metrics(), restored.metrics());
        restored.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let params = Params::paper_section7(4).with_exchange(ExchangePolicy::Aggressive);
        let mut cluster = Cluster::new(params, 3);
        cluster.step(&[LoadEvent::Generate; 4]);
        let snap = cluster.snapshot();
        let json = snap.to_json();
        let back = ClusterSnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.exchange, ExchangePolicy::Aggressive);
    }

    #[test]
    fn restore_rejects_corrupted_snapshot() {
        let params = Params::paper_section7(4);
        let cluster = Cluster::new(params, 1);
        let mut snap = cluster.snapshot();
        snap.d.pop(); // wrong number of processors
        assert!(Cluster::restore(&snap).is_err());
        let mut snap2 = cluster.snapshot();
        snap2.f = 9.0; // invalid parameters
        assert!(Cluster::restore(&snap2).is_err());
    }
}
