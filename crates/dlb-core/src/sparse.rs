//! Compressed per-processor class state.
//!
//! The paper's virtual-class machinery is naturally sparse: at any moment
//! a processor holds packets (and markers) of few classes — its own plus
//! whatever balancing brought in — while the dense `d`/`b` matrices are
//! `n × n`.  A [`SparseRow`] stores one processor's row as a sorted list
//! of active class ids with a parallel value arena, so a full-model
//! cluster costs O(Σ active classes) memory instead of O(n²) and every
//! row operation costs O(active) or O(log active) instead of O(n).  This
//! is what lets [`crate::Cluster`] simulate n ≥ 2¹⁸ processors (see
//! `BENCH_core.json`'s `large` rows); the flat-arena engine it replaced
//! is retained as [`crate::dense::DenseCluster`] for bit-identity
//! proptests at overlapping sizes.
//!
//! Invariants (checked by [`crate::Cluster::check_invariants`] and the
//! debug assertions here):
//!
//! * `keys` is strictly ascending;
//! * `vals[k] > 0` for every entry — a value reaching zero removes its
//!   key, so `keys` *is* the active-class set;
//! * `keys.len() == vals.len()`.

/// One processor's sparse class row: sorted active class ids plus a
/// parallel growable value arena.  Absent keys read as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseRow {
    /// Strictly ascending active class ids.
    keys: Vec<u32>,
    /// `vals[k]` is the value of class `keys[k]`; always positive.
    vals: Vec<u64>,
}

impl SparseRow {
    /// An empty row (all classes zero).
    pub fn new() -> Self {
        SparseRow::default()
    }

    /// A row holding `v` units of class `c` (empty when `v == 0`).
    pub fn with_entry(c: u32, v: u64) -> Self {
        if v == 0 {
            SparseRow::default()
        } else {
            SparseRow {
                keys: vec![c],
                vals: vec![v],
            }
        }
    }

    /// Number of active (nonzero) classes.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether every class is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted active class ids.
    #[inline]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// The values parallel to [`SparseRow::keys`].
    #[inline]
    pub fn vals(&self) -> &[u64] {
        &self.vals
    }

    /// Entries in ascending class order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.keys.iter().copied().zip(self.vals.iter().copied())
    }

    /// The value of class `c` (zero when inactive).  O(log active).
    #[inline]
    pub fn get(&self, c: u32) -> u64 {
        match self.keys.binary_search(&c) {
            Ok(pos) => self.vals[pos],
            Err(_) => 0,
        }
    }

    /// Adds `x > 0` units to class `c`, activating it if needed.
    #[inline]
    pub fn add(&mut self, c: u32, x: u64) {
        debug_assert!(x > 0);
        match self.keys.binary_search(&c) {
            Ok(pos) => self.vals[pos] += x,
            Err(pos) => {
                self.keys.insert(pos, c);
                self.vals.insert(pos, x);
            }
        }
    }

    /// Removes `x` units from class `c`, deactivating it on zero.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the class holds fewer than `x` units.
    #[inline]
    pub fn sub(&mut self, c: u32, x: u64) {
        debug_assert!(x > 0);
        let pos = self
            .keys
            .binary_search(&c)
            .expect("sub from an inactive class");
        debug_assert!(self.vals[pos] >= x);
        self.vals[pos] -= x;
        if self.vals[pos] == 0 {
            self.keys.remove(pos);
            self.vals.remove(pos);
        }
    }

    /// Sets class `c` to `v`, activating or deactivating as needed.
    #[inline]
    pub fn set(&mut self, c: u32, v: u64) {
        match self.keys.binary_search(&c) {
            Ok(pos) => {
                if v == 0 {
                    self.keys.remove(pos);
                    self.vals.remove(pos);
                } else {
                    self.vals[pos] = v;
                }
            }
            Err(pos) => {
                if v > 0 {
                    self.keys.insert(pos, c);
                    self.vals.insert(pos, v);
                }
            }
        }
    }

    /// Removes class `c` entirely, returning the units it held.
    #[inline]
    pub fn take(&mut self, c: u32) -> u64 {
        match self.keys.binary_search(&c) {
            Ok(pos) => {
                self.keys.remove(pos);
                self.vals.remove(pos)
            }
            Err(_) => 0,
        }
    }

    /// Deactivates every class (capacity retained for reuse).
    #[inline]
    pub fn clear(&mut self) {
        self.keys.clear();
        self.vals.clear();
    }

    /// Appends an entry with `v > 0`; `c` must exceed every present key.
    /// The O(1) rebuild primitive for balance write-backs that walk a
    /// sorted class union.
    #[inline]
    pub fn push(&mut self, c: u32, v: u64) {
        debug_assert!(v > 0);
        debug_assert!(self.keys.last().is_none_or(|&last| last < c));
        self.keys.push(c);
        self.vals.push(v);
    }

    /// Sum of all values.  O(active).
    pub fn sum(&self) -> u64 {
        self.vals.iter().sum()
    }

    /// Heap bytes currently reserved by this row (capacity, not length —
    /// what the process actually pays).
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<u64>()
    }

    /// Verifies the structural invariants, returning the first violation.
    pub fn check(&self) -> Result<(), String> {
        if self.keys.len() != self.vals.len() {
            return Err(format!(
                "key/value length mismatch: {} != {}",
                self.keys.len(),
                self.vals.len()
            ));
        }
        if !self.keys.windows(2).all(|w| w[0] < w[1]) {
            return Err("keys not strictly sorted".into());
        }
        if self.vals.contains(&0) {
            return Err("row holds a zero entry".into());
        }
        Ok(())
    }

    /// Densifies into a length-`n` vector (test/snapshot helper; O(n)).
    pub fn to_dense(&self, n: usize) -> Vec<u64> {
        let mut row = vec![0u64; n];
        for (c, v) in self.iter() {
            row[c as usize] = v;
        }
        row
    }
}

/// Merges sorted `src` into sorted `dst` (set union) using `buf` as
/// scratch.  Linear in `dst.len() + src.len()`.
pub fn merge_sorted_into(dst: &mut Vec<u32>, src: &[u32], buf: &mut Vec<u32>) {
    if src.is_empty() {
        return;
    }
    if dst.is_empty() {
        dst.extend_from_slice(src);
        return;
    }
    buf.clear();
    let (mut a, mut b) = (0usize, 0usize);
    while a < dst.len() && b < src.len() {
        match dst[a].cmp(&src[b]) {
            std::cmp::Ordering::Less => {
                buf.push(dst[a]);
                a += 1;
            }
            std::cmp::Ordering::Greater => {
                buf.push(src[b]);
                b += 1;
            }
            std::cmp::Ordering::Equal => {
                buf.push(dst[a]);
                a += 1;
                b += 1;
            }
        }
    }
    buf.extend_from_slice(&dst[a..]);
    buf.extend_from_slice(&src[b..]);
    std::mem::swap(dst, buf);
}

/// Number of keys present in `a` but absent from `b` (both sorted) — the
/// merge-walk core of the fresh-borrow candidate count, O(|a| + |b|).
pub fn count_diff(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0;
    let mut bi = 0;
    for &k in a {
        while bi < b.len() && b[bi] < k {
            bi += 1;
        }
        if bi >= b.len() || b[bi] != k {
            count += 1;
        }
    }
    count
}

/// The `pick`-th key (ascending) present in `a` but absent from `b`.
pub fn nth_diff(a: &[u32], b: &[u32], pick: usize) -> Option<u32> {
    let mut seen = 0;
    let mut bi = 0;
    for &k in a {
        while bi < b.len() && b[bi] < k {
            bi += 1;
        }
        if bi >= b.len() || b[bi] != k {
            if seen == pick {
                return Some(k);
            }
            seen += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_set_roundtrip() {
        let mut row = SparseRow::new();
        row.add(5, 3);
        row.add(2, 1);
        row.add(5, 2);
        assert_eq!(row.get(5), 5);
        assert_eq!(row.get(2), 1);
        assert_eq!(row.get(7), 0);
        assert_eq!(row.keys(), &[2, 5]);
        row.sub(5, 5);
        assert_eq!(row.get(5), 0);
        assert_eq!(row.keys(), &[2]);
        row.set(9, 4);
        row.set(2, 0);
        assert_eq!(row.keys(), &[9]);
        assert_eq!(row.sum(), 4);
        row.check().unwrap();
    }

    #[test]
    fn take_and_push_maintain_order() {
        let mut row = SparseRow::with_entry(3, 7);
        assert_eq!(row.take(3), 7);
        assert_eq!(row.take(3), 0);
        row.push(1, 2);
        row.push(8, 1);
        assert_eq!(row.to_dense(10), vec![0, 2, 0, 0, 0, 0, 0, 0, 1, 0]);
        row.check().unwrap();
        row.clear();
        assert!(row.is_empty());
    }

    #[test]
    fn diff_walks_match_naive_filter() {
        let a = [1u32, 3, 4, 8, 9];
        let b = [3u32, 5, 9];
        let naive: Vec<u32> = a.iter().copied().filter(|k| !b.contains(k)).collect();
        assert_eq!(count_diff(&a, &b), naive.len());
        for (i, &k) in naive.iter().enumerate() {
            assert_eq!(nth_diff(&a, &b, i), Some(k));
        }
        assert_eq!(nth_diff(&a, &b, naive.len()), None);
        assert_eq!(count_diff(&[], &b), 0);
        assert_eq!(count_diff(&a, &[]), a.len());
    }

    #[test]
    fn merge_union_matches_naive() {
        let mut dst = vec![1u32, 4, 7];
        let mut buf = Vec::new();
        merge_sorted_into(&mut dst, &[2, 4, 9], &mut buf);
        assert_eq!(dst, vec![1, 2, 4, 7, 9]);
        merge_sorted_into(&mut dst, &[], &mut buf);
        assert_eq!(dst, vec![1, 2, 4, 7, 9]);
        let mut empty = Vec::new();
        merge_sorted_into(&mut empty, &[3, 5], &mut buf);
        assert_eq!(empty, vec![3, 5]);
    }

    #[test]
    fn dense_conversion_and_zero_entry() {
        let row = SparseRow::with_entry(0, 0);
        assert!(row.is_empty());
        let row = SparseRow::with_entry(2, 9);
        assert_eq!(row.to_dense(3), vec![0, 0, 9]);
        assert_eq!(row.heap_bytes() % 4, 0);
    }
}
