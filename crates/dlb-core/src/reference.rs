//! Retained *reference* implementations of the two engines, kept
//! deliberately naive.
//!
//! PR 4 rewrote the hot paths of [`crate::cluster::Cluster`] (flat n×n
//! arena, per-processor active-class lists, scratch buffers) and
//! [`crate::simple::SimpleCluster`] (cached alive-candidate list).  The
//! optimization contract is *bit-identical behaviour*: same RNG
//! consumption, same loads, same metrics, same trace events, on every
//! input.  These reference engines are the dense, allocation-happy
//! originals that contract is checked against — the equivalence
//! proptests in `tests/opt_equivalence.rs` drive both side by side on
//! random instances and compare full state step for step.
//!
//! Do **not** optimize this module; its value is being obviously equal
//! to the paper's appendix pseudocode.  It is `doc(hidden)` because it
//! is test infrastructure, not API.

use crate::balance::{distribute_capped, distribute_classes, distribute_classes_flat, moved};
use crate::metrics::Metrics;
use crate::params::{ExchangePolicy, Params};
use crate::strategy::LoadEvent;
use rand::prelude::*;
use rand::seq::index::sample;
use rand_chacha::ChaCha8Rng;

#[derive(Debug, Clone)]
struct Proc {
    /// Virtual class loads `d_{i,1..n}`; real load is their sum.
    d: Vec<u64>,
    /// Borrowed-packet markers `b_{i,1..n}`.
    b: Vec<u64>,
    /// Cached real load `Σ_j d_{i,j}`.
    load: u64,
    /// Cached marker count `Σ_j b_{i,j}`.
    sum_b: u64,
    /// Self-generated load `d_{i,i}` at the last balancing participation.
    l_old: u64,
}

/// The dense reference implementation of the full virtual-load-class
/// algorithm (the pre-optimization [`crate::Cluster`]).
#[doc(hidden)]
pub struct RefCluster {
    params: Params,
    procs: Vec<Proc>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    fresh_generated: Vec<u64>,
    direct_consumed: Vec<u64>,
    settled: Vec<u64>,
    initial_total: u64,
    scratch_totals_d: Vec<u64>,
    scratch_totals_b: Vec<u64>,
    scratch_shares_d: Vec<u64>,
    scratch_shares_b: Vec<u64>,
}

impl RefCluster {
    /// An empty cluster (all loads zero).
    pub fn new(params: Params, seed: u64) -> Self {
        Self::with_initial_load(params, seed, 0)
    }

    /// A cluster where every processor starts with `initial` self-generated
    /// packets.
    pub fn with_initial_load(params: Params, seed: u64, initial: u64) -> Self {
        let n = params.n();
        let procs = (0..n)
            .map(|i| {
                let mut d = vec![0u64; n];
                d[i] = initial;
                Proc {
                    d,
                    b: vec![0u64; n],
                    load: initial,
                    sum_b: 0,
                    l_old: initial,
                }
            })
            .collect();
        RefCluster {
            params,
            procs,
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            fresh_generated: vec![initial; n],
            direct_consumed: vec![0; n],
            settled: vec![0; n],
            initial_total: initial * n as u64,
            scratch_totals_d: vec![0; n],
            scratch_totals_b: vec![0; n],
            scratch_shares_d: Vec::new(),
            scratch_shares_b: Vec::new(),
        }
    }

    /// Real load of processor `i`.
    pub fn load(&self, i: usize) -> u64 {
        self.procs[i].load
    }

    /// `d_{i,c}`.
    pub fn d(&self, i: usize, c: usize) -> u64 {
        self.procs[i].d[c]
    }

    /// `b_{i,c}`.
    pub fn b(&self, i: usize, c: usize) -> u64 {
        self.procs[i].b[c]
    }

    /// Current loads of all processors.
    pub fn loads(&self) -> Vec<u64> {
        self.procs.iter().map(|p| p.load).collect()
    }

    /// Activity counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Verifies the structural invariants (same checks as the optimized
    /// engine, minus the active-list consistency it does not have).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.params.n();
        let c_borrow = self.params.c_borrow() as u64;
        for (i, p) in self.procs.iter().enumerate() {
            let sum_d: u64 = p.d.iter().sum();
            if sum_d != p.load {
                return Err(format!("proc {i}: load cache {} != sum(d) {sum_d}", p.load));
            }
            let sum_b: u64 = p.b.iter().sum();
            if sum_b != p.sum_b {
                return Err(format!(
                    "proc {i}: marker cache {} != sum(b) {sum_b}",
                    p.sum_b
                ));
            }
            if p.sum_b > c_borrow {
                return Err(format!(
                    "proc {i}: {} markers exceed C = {c_borrow}",
                    p.sum_b
                ));
            }
        }
        for c in 0..n {
            let virt: u64 = self.procs.iter().map(|p| p.d[c] + p.b[c]).sum();
            let expect = self.fresh_generated[c]
                .checked_sub(self.direct_consumed[c] + self.settled[c])
                .ok_or_else(|| format!("class {c}: ledger went negative"))?;
            if virt != expect {
                return Err(format!(
                    "class {c}: virtual load {virt} != fresh {} - consumed {} - settled {}",
                    self.fresh_generated[c], self.direct_consumed[c], self.settled[c]
                ));
            }
        }
        let total: u64 = self.procs.iter().map(|p| p.load).sum();
        let expect = self.initial_total + self.metrics.generated - self.metrics.consumed;
        if total != expect {
            return Err(format!(
                "global load {total} != generated - consumed = {expect}"
            ));
        }
        Ok(())
    }

    /// Advances one global time step.
    pub fn step(&mut self, events: &[LoadEvent]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            match ev {
                LoadEvent::Generate => self.generate(i),
                LoadEvent::Consume => self.consume(i),
                LoadEvent::Idle => {}
            }
        }
    }

    fn generate(&mut self, i: usize) {
        self.metrics.generated += 1;
        if self.procs[i].sum_b > 0 {
            let j = self.random_class(i, |p, j| p.b[j] > 0).expect("sum_b > 0");
            let p = &mut self.procs[i];
            p.b[j] -= 1;
            p.sum_b -= 1;
            p.d[j] += 1;
            p.load += 1;
        } else {
            let p = &mut self.procs[i];
            p.d[i] += 1;
            p.load += 1;
            self.fresh_generated[i] += 1;
            self.trigger_check(i);
        }
    }

    fn consume(&mut self, i: usize) {
        if self.procs[i].load == 0 {
            self.metrics.consume_blocked += 1;
            return;
        }
        if self.procs[i].d[i] > 0 {
            let p = &mut self.procs[i];
            p.d[i] -= 1;
            p.load -= 1;
            self.direct_consumed[i] += 1;
            self.metrics.consumed += 1;
            self.trigger_check(i);
            return;
        }
        let max_attempts = self.params.c_borrow() + 2;
        for _ in 0..max_attempts.max(4) {
            if self.procs[i].load == 0 {
                self.metrics.consume_blocked += 1;
                return;
            }
            if self.procs[i].d[i] > 0 {
                let p = &mut self.procs[i];
                p.d[i] -= 1;
                p.load -= 1;
                self.direct_consumed[i] += 1;
                self.metrics.consumed += 1;
                self.trigger_check(i);
                return;
            }
            if (self.procs[i].sum_b as usize) < self.params.c_borrow() {
                if let Some(j) = self.random_class(i, |p, j| p.d[j] > 0 && p.b[j] == 0) {
                    let p = &mut self.procs[i];
                    p.b[j] += 1;
                    p.sum_b += 1;
                    p.d[j] -= 1;
                    p.load -= 1;
                    self.metrics.total_borrow += 1;
                    self.metrics.consumed += 1;
                    return;
                }
            }
            let Some(j) = self.random_class(i, |p, j| p.b[j] > 0) else {
                break;
            };
            if self.procs[j].d[j] > 0 {
                self.exchange(i, j);
            } else {
                self.reduce_borrow(i, j);
            }
        }
        self.metrics.consume_failed += 1;
    }

    fn random_class(&mut self, i: usize, pred: impl Fn(&Proc, usize) -> bool) -> Option<usize> {
        let p = &self.procs[i];
        let count = (0..self.params.n()).filter(|&j| pred(p, j)).count();
        if count == 0 {
            return None;
        }
        let pick = self.rng.gen_range(0..count);
        (0..self.params.n())
            .filter(|&j| pred(&self.procs[i], j))
            .nth(pick)
    }

    fn exchange(&mut self, i: usize, j: usize) {
        debug_assert_ne!(i, j);
        let available = self.procs[j].d[j];
        let x = match self.params.exchange() {
            ExchangePolicy::Strict => available.min(self.procs[i].b[j]),
            ExchangePolicy::Aggressive => available.min(self.procs[i].sum_b),
        };
        if x == 0 {
            return;
        }
        self.metrics.remote_borrow += 1;
        self.procs[j].d[j] -= x;
        self.procs[j].load -= x;
        self.procs[i].d[j] += x;
        self.procs[i].load += x;
        self.metrics.packets_migrated += x;
        self.metrics.messages += 2;
        let mut remaining = x;
        let own = self.procs[i].b[j].min(remaining);
        self.procs[i].b[j] -= own;
        self.procs[i].sum_b -= own;
        self.settled[j] += own;
        remaining -= own;
        if remaining > 0 {
            for k in 0..self.params.n() {
                if remaining == 0 {
                    break;
                }
                let take = self.procs[i].b[k].min(remaining);
                if take > 0 {
                    self.procs[i].b[k] -= take;
                    self.procs[i].sum_b -= take;
                    self.settled[k] += take;
                    remaining -= take;
                }
            }
            debug_assert_eq!(remaining, 0, "sum_b guaranteed enough markers");
        }
        self.metrics.markers_settled += x;
        self.metrics.decrease_sim += 1;
        self.trigger_check(j);
    }

    fn reduce_borrow(&mut self, i: usize, j: usize) {
        debug_assert_ne!(i, j);
        debug_assert_eq!(self.procs[j].d[j], 0);
        self.metrics.borrow_fail += 1;
        let candidates = self.sample_partners(j);
        if candidates.contains(&i) {
            let mut members = candidates.clone();
            members.push(j);
            self.balance_class(j, &members);
        } else {
            let helpful = candidates
                .iter()
                .any(|&k| self.procs[k].d[j] > 0 || self.procs[k].b[j] == 0)
                || self.procs[i].d[j] > 0;
            let mut with_i = candidates.clone();
            with_i.push(i);
            let mut with_j = candidates.clone();
            with_j.push(j);
            if helpful {
                self.balance_class(j, &with_i);
                self.balance_class(j, &with_j);
            } else {
                self.balance_class(j, &with_j);
                self.balance_class(j, &with_i);
            }
        }
        self.settle_home_markers(j);
        if self.procs[j].d[j] > 0 && self.procs[i].b[j] > 0 {
            self.exchange(i, j);
        } else if self.procs[i].b[j] > 0 {
            self.procs[i].b[j] -= 1;
            self.procs[i].sum_b -= 1;
            self.settled[j] += 1;
            self.metrics.markers_settled += 1;
            self.metrics.markers_migrated += 1;
            self.metrics.messages += 1;
            self.trigger_check(j);
        }
    }

    fn balance_class(&mut self, c: usize, members: &[usize]) {
        self.metrics.class_balance_ops += 1;
        self.metrics.messages += members.len() as u64;
        let m = members.len();
        let before_d: Vec<u64> = members.iter().map(|&mm| self.procs[mm].d[c]).collect();
        let before_b: Vec<u64> = members.iter().map(|&mm| self.procs[mm].b[c]).collect();
        let total_d: u64 = before_d.iter().sum();
        let total_b: u64 = before_b.iter().sum();
        let mut run_d = vec![0u64; m];
        let new_d = &distribute_classes(&[total_d], m, &mut run_d)[0];
        let caps: Vec<u64> = members
            .iter()
            .zip(before_b.iter())
            .map(|(&mm, &own)| {
                (self.params.c_borrow() as u64).saturating_sub(self.procs[mm].sum_b - own)
            })
            .collect();
        let new_b = distribute_capped(total_b, &caps);
        let moved_d = moved(&before_d, new_d);
        let moved_b = moved(&before_b, &new_b);
        self.metrics.packets_migrated += moved_d;
        self.metrics.markers_migrated += moved_b;
        for (s, &mm) in members.iter().enumerate() {
            let p = &mut self.procs[mm];
            p.load = p.load + new_d[s] - before_d[s];
            p.d[c] = new_d[s];
            p.sum_b = p.sum_b + new_b[s] - before_b[s];
            p.b[c] = new_b[s];
        }
    }

    fn settle_home_markers(&mut self, m: usize) {
        let k = self.procs[m].b[m];
        if k > 0 {
            self.procs[m].b[m] = 0;
            self.procs[m].sum_b -= k;
            self.settled[m] += k;
            self.metrics.markers_settled += k;
        }
    }

    fn sample_partners(&mut self, who: usize) -> Vec<usize> {
        let n = self.params.n();
        let delta = self.params.delta();
        sample(&mut self.rng, n - 1, delta)
            .iter()
            .map(|x| if x >= who { x + 1 } else { x })
            .collect()
    }

    fn trigger_check(&mut self, i: usize) {
        let cur = self.procs[i].d[i];
        let last = self.procs[i].l_old;
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i);
        }
    }

    fn full_balance(&mut self, initiator: usize) {
        self.metrics.balance_ops += 1;
        let mut members = vec![initiator];
        members.extend(self.sample_partners(initiator));
        let m = members.len();
        self.metrics.messages += m as u64;
        let n = self.params.n();

        for c in 0..n {
            self.scratch_totals_d[c] = members.iter().map(|&mm| self.procs[mm].d[c]).sum();
            self.scratch_totals_b[c] = members.iter().map(|&mm| self.procs[mm].b[c]).sum();
        }
        let mut run_d = [0u64; 64];
        let mut run_b = [0u64; 64];
        assert!(m <= 64, "group size bounded by the stack scratch");
        let (run_d, run_b) = (&mut run_d[..m], &mut run_b[..m]);
        let mut shares_d = std::mem::take(&mut self.scratch_shares_d);
        let mut shares_b = std::mem::take(&mut self.scratch_shares_b);
        distribute_classes_flat(&self.scratch_totals_d, m, run_d, &mut shares_d);
        distribute_classes_flat(&self.scratch_totals_b, m, run_b, &mut shares_b);

        let mut op_packets = 0u64;
        for (s, &mm) in members.iter().enumerate() {
            op_packets += self.procs[mm].load.saturating_sub(run_d[s]);
        }
        self.metrics.packets_migrated += op_packets;
        let mut op_markers = 0u64;
        for c in 0..n {
            let row = &shares_b[c * m..(c + 1) * m];
            for (s, &mm) in members.iter().enumerate() {
                op_markers += self.procs[mm].b[c].saturating_sub(row[s]);
            }
        }
        self.metrics.markers_migrated += op_markers;
        for (s, &mm) in members.iter().enumerate() {
            let p = &mut self.procs[mm];
            for c in 0..n {
                p.d[c] = shares_d[c * m + s];
                p.b[c] = shares_b[c * m + s];
            }
            p.load = run_d[s];
            p.sum_b = run_b[s];
        }
        self.scratch_shares_d = shares_d;
        self.scratch_shares_b = shares_b;
        for &mm in &members {
            self.settle_home_markers(mm);
            self.procs[mm].l_old = self.procs[mm].d[mm];
        }
    }
}

/// The dense reference implementation of the practical balancer (the
/// pre-optimization [`crate::SimpleCluster`]): candidate lists rebuilt
/// from the down-mask on every balancing operation.
#[doc(hidden)]
pub struct RefSimpleCluster {
    params: Params,
    loads: Vec<u64>,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    metrics: Metrics,
    initial_total: u64,
}

impl RefSimpleCluster {
    /// An empty cluster.
    pub fn new(params: Params, seed: u64) -> Self {
        Self::with_initial_load(params, seed, 0)
    }

    /// A cluster where every processor starts with `initial` packets.
    pub fn with_initial_load(params: Params, seed: u64, initial: u64) -> Self {
        let n = params.n();
        RefSimpleCluster {
            params,
            loads: vec![initial; n],
            l_old: vec![initial; n],
            rng: ChaCha8Rng::seed_from_u64(seed),
            metrics: Metrics::new(),
            initial_total: initial * n as u64,
        }
    }

    /// Current loads of all processors.
    pub fn loads(&self) -> Vec<u64> {
        self.loads.clone()
    }

    /// Activity counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Packet conservation check.
    pub fn check_invariants(&self) -> Result<(), String> {
        let total: u64 = self.loads.iter().sum();
        let expect = self.initial_total + self.metrics.generated - self.metrics.consumed;
        if total != expect {
            return Err(format!("global load {total} != expected {expect}"));
        }
        Ok(())
    }

    /// Plain step (no crash mask).
    pub fn step(&mut self, events: &[LoadEvent]) {
        self.step_impl(events, &[]);
    }

    /// Crash-mask step.
    pub fn step_masked(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), down.len(), "event/mask length mismatch");
        self.step_impl(events, down);
    }

    fn step_impl(&mut self, events: &[LoadEvent], down: &[bool]) {
        assert_eq!(events.len(), self.params.n(), "one event per processor");
        for (i, &ev) in events.iter().enumerate() {
            if !down.is_empty() && down[i] {
                continue;
            }
            match ev {
                LoadEvent::Generate => {
                    self.loads[i] += 1;
                    self.metrics.generated += 1;
                    self.trigger_check(i, down);
                }
                LoadEvent::Consume => {
                    if self.loads[i] > 0 {
                        self.loads[i] -= 1;
                        self.metrics.consumed += 1;
                        self.trigger_check(i, down);
                    } else {
                        self.metrics.consume_blocked += 1;
                    }
                }
                LoadEvent::Idle => {}
            }
        }
    }

    fn trigger_check(&mut self, i: usize, down: &[bool]) {
        let cur = self.loads[i];
        let last = self.l_old[i];
        if self.params.grow_triggered(cur, last) || self.params.shrink_triggered(cur, last) {
            self.full_balance(i, down);
        }
    }

    fn full_balance(&mut self, initiator: usize, down: &[bool]) {
        let n = self.params.n();
        let delta = self.params.delta();
        let mut members: Vec<usize> = vec![initiator];
        if down.iter().any(|&d| d) {
            let candidates: Vec<usize> = (0..n).filter(|&p| p != initiator && !down[p]).collect();
            if candidates.is_empty() {
                return;
            }
            let k = delta.min(candidates.len());
            members.extend(
                sample(&mut self.rng, candidates.len(), k)
                    .iter()
                    .map(|x| candidates[x]),
            );
        } else {
            members.extend(sample(&mut self.rng, n - 1, delta).iter().map(|x| {
                if x >= initiator {
                    x + 1
                } else {
                    x
                }
            }));
        }
        self.metrics.balance_ops += 1;
        self.metrics.messages += members.len() as u64;
        let total: u64 = members.iter().map(|&m| self.loads[m]).sum();
        let shares = crate::balance::even_shares(total, members.len());
        let mut op_packets = 0u64;
        for (&m, &share) in members.iter().zip(shares.iter()) {
            op_packets += self.loads[m].saturating_sub(share);
            self.loads[m] = share;
            self.l_old[m] = share;
        }
        self.metrics.packets_migrated += op_packets;
    }
}
