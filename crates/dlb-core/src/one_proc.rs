//! The one-processor-generator(-consumer) models of §3 — the paper's
//! Figure 1 algorithm — with indivisible integer packets.
//!
//! A single processor (index 0) generates and/or consumes packets; every
//! time its load has grown by the factor `f` (or shrunk by `1/f`) since
//! the last balancing it equalises its load with `δ` random partners.
//! These simulators provide the empirical side of Theorems 1–3 and of the
//! §6 cost analysis (Lemmas 5 and 6), cross-checked against the exact
//! operators in `dlb-theory`.

use crate::balance::even_shares;
use crate::params::Params;
use rand::prelude::*;
use rand::seq::index::sample;
use rand_chacha::ChaCha8Rng;

/// Integer-packet simulator of the Figure 1 algorithm.
#[derive(Debug, Clone)]
pub struct OneProcModel {
    params: Params,
    loads: Vec<u64>,
    l_old: u64,
    rng: ChaCha8Rng,
    balance_ops: u64,
}

impl OneProcModel {
    /// Starts in a balanced state: every processor holds `initial` packets.
    pub fn new(params: Params, seed: u64, initial: u64) -> Self {
        OneProcModel {
            params,
            loads: vec![initial; params.n()],
            l_old: initial,
            rng: ChaCha8Rng::seed_from_u64(seed),
            balance_ops: 0,
        }
    }

    /// Current load vector (index 0 is the generator/consumer).
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Number of balancing operations performed so far (the paper's `t`).
    pub fn balance_ops(&self) -> u64 {
        self.balance_ops
    }

    /// Processor 0 generates one packet; balances if the grow trigger
    /// fires.  Returns `true` if a balancing operation ran.
    pub fn generate(&mut self) -> bool {
        self.loads[0] += 1;
        if self.params.grow_triggered(self.loads[0], self.l_old) {
            self.balance();
            true
        } else {
            false
        }
    }

    /// Processor 0 consumes one packet (no-op on empty); balances if the
    /// shrink trigger fires.  Returns `true` if a balancing operation ran.
    pub fn consume(&mut self) -> bool {
        if self.loads[0] == 0 {
            return false;
        }
        self.loads[0] -= 1;
        if self.params.shrink_triggered(self.loads[0], self.l_old) {
            self.balance();
            true
        } else {
            false
        }
    }

    /// Runs generation until exactly `t` balancing operations have fired.
    ///
    /// Uses bulk jumps: between triggers nothing but generation happens, so
    /// the load can be advanced straight to the trigger threshold
    /// `max(l_old + 1, ⌈f·l_old⌉)` (the loads grow geometrically — packet
    /// by packet this would take astronomically long).
    pub fn generate_until_ops(&mut self, t: u64) {
        while self.balance_ops < t {
            let threshold =
                ((self.params.f() * self.l_old as f64).ceil() as u64).max(self.l_old + 1);
            self.loads[0] = threshold;
            self.balance();
        }
    }

    /// Ratio of the generator's load to the mean load of the others.
    pub fn ratio(&self) -> f64 {
        let others: u64 = self.loads[1..].iter().sum();
        let mean = others as f64 / (self.loads.len() - 1) as f64;
        self.loads[0] as f64 / mean
    }

    fn balance(&mut self) {
        self.balance_ops += 1;
        let n = self.params.n();
        let delta = self.params.delta();
        let mut members: Vec<usize> = vec![0];
        members.extend(sample(&mut self.rng, n - 1, delta).iter().map(|x| x + 1));
        let total: u64 = members.iter().map(|&m| self.loads[m]).sum();
        // Rotate the snake so the ±1 leftovers don't systematically favour
        // the generator.
        let mut shares = even_shares(total, members.len());
        if shares.len() > 1 {
            let rot = self.rng.gen_range(0..shares.len());
            shares.rotate_left(rot);
        }
        for (&m, &s) in members.iter().zip(shares.iter()) {
            self.loads[m] = s;
        }
        self.l_old = self.loads[0];
    }
}

/// Empirical mean ratio `E(l_1,t)/E(l_i,t)` of the generator model after
/// exactly `t` balancing operations, averaged over `runs` seeded runs
/// starting from a balanced state with `initial` packets each (Theorem 1's
/// `G^t(1)` with integer granularity `1/initial`).
pub fn mean_ratio_after_ops(params: Params, t: u64, runs: usize, initial: u64, seed: u64) -> f64 {
    let mut sum_gen = 0.0;
    let mut sum_other = 0.0;
    for r in 0..runs {
        let mut model = OneProcModel::new(params, seed.wrapping_add(r as u64), initial);
        model.generate_until_ops(t);
        sum_gen += model.loads()[0] as f64;
        sum_other += model.loads()[1..].iter().sum::<u64>() as f64 / (params.n() - 1) as f64;
    }
    sum_gen / sum_other
}

/// Counts the balancing operations the §4 decrease simulation needs to
/// consume `c` packets of processor 0's load class, starting from `x`
/// (§6, Lemmas 5 and 6).
///
/// Semantics: processor 0 owes a cumulative decrease of `c` packets (the
/// borrowed-marker settlement of §4).  It consumes until the shrink
/// trigger fires, balances (which refills it from the network), and
/// repeats until `c` packets have been consumed in total.  This is the
/// quantity the `D^t` decay of Lemma 5 models: each operation consumes a
/// `(1 − 1/f)` slice of the current level, and the level shrinks by the
/// factor `D` per operation.
///
/// The network starts at the generator model's steady state: processor 0
/// holds `x`, every other processor `x / FIX(n, δ, f)` (rounded).
pub fn decrease_ops(params: Params, x: u64, c: u64, seed: u64) -> u64 {
    assert!(c <= x, "cannot decrease below zero");
    let fix = dlb_theory::operators::fix(params.n(), params.delta(), params.f());
    let neighbour = ((x as f64) / fix).round().max(0.0) as u64;
    let mut model = OneProcModel::new(params, seed, neighbour);
    model.loads[0] = x;
    model.l_old = x;
    let mut remaining = c;
    while remaining > 0 {
        if model.loads[0] == 0 {
            // Drained dry (possible for tiny x): refill from the network.
            model.balance();
            if model.loads[0] == 0 {
                break; // the chosen neighbourhood is empty too
            }
            continue;
        }
        // Bulk-consume to the shrink threshold ⌊l_old / f⌋ (capped by the
        // outstanding obligation); between triggers nothing else happens.
        let threshold =
            ((model.l_old as f64 / params.f()).floor() as u64).min(model.l_old.saturating_sub(1));
        let to_trigger = model.loads[0].saturating_sub(threshold);
        if to_trigger >= remaining {
            model.loads[0] -= remaining;
            remaining = 0;
            // The final slice may itself land on the trigger.
            if params.shrink_triggered(model.loads[0], model.l_old) {
                model.balance();
            }
        } else {
            model.loads[0] = threshold;
            remaining -= to_trigger;
            model.balance();
        }
    }
    model.balance_ops
}

/// Mean of [`decrease_ops`] over `runs` seeds.
pub fn mean_decrease_ops(params: Params, x: u64, c: u64, runs: usize, seed: u64) -> f64 {
    (0..runs)
        .map(|r| decrease_ops(params, x, c, seed.wrapping_add(r as u64)) as f64)
        .sum::<f64>()
        / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_theory::operators::{fix, fix_limit};

    #[test]
    fn generation_conserves_packets() {
        let params = Params::new(8, 1, 1.2, 4).unwrap();
        let mut model = OneProcModel::new(params, 1, 10);
        for _ in 0..500 {
            model.generate();
        }
        assert_eq!(model.loads().iter().sum::<u64>(), 8 * 10 + 500);
    }

    #[test]
    fn ratio_converges_to_fix() {
        // Theorem 1: the mean ratio after many ops approaches FIX(n, δ, f).
        let params = Params::new(16, 2, 1.5, 4).unwrap();
        let ratio = mean_ratio_after_ops(params, 400, 60, 2_000, 42);
        let expect = fix(16, 2, 1.5);
        assert!(
            (ratio - expect).abs() / expect < 0.08,
            "empirical {ratio} vs FIX {expect}"
        );
        // And FIX is below the Theorem 2 limit.
        assert!(expect <= fix_limit(2, 1.5) + 1e-12);
    }

    #[test]
    fn early_ratio_matches_g_iteration() {
        // After a handful of ops the ratio should track G^t(1), not yet FIX.
        let params = Params::new(16, 2, 1.5, 4).unwrap();
        let algo = *params.algo();
        for t in [3u64, 8, 20] {
            let empirical = mean_ratio_after_ops(params, t, 150, 5_000, 7);
            let expect = algo.g_iter(1.0, t as usize);
            assert!(
                (empirical - expect).abs() / expect < 0.08,
                "t={t}: empirical {empirical} vs G^t(1) {expect}"
            );
        }
    }

    #[test]
    fn consume_trigger_balances_back() {
        let params = Params::new(8, 1, 1.2, 4).unwrap();
        let mut model = OneProcModel::new(params, 3, 100);
        let mut balanced = false;
        for _ in 0..40 {
            balanced |= model.consume();
        }
        assert!(
            balanced,
            "shrink trigger should fire within 40 consumes at f=1.2"
        );
        // Balance refilled processor 0 from the partners.
        assert!(model.loads()[0] > 0);
    }

    #[test]
    fn decrease_ops_within_lemma_bounds() {
        let params = Params::new(64, 1, 1.1, 4).unwrap();
        let cb = dlb_theory::CostBounds::for_params(params.algo());
        let (x, c) = (1_000u64, 500u64);
        let measured = mean_decrease_ops(params, x, c, 40, 11);
        let lower = cb.lemma5_lower(x, c).unwrap() as f64;
        let upper = cb.lemma5_upper(x, c).unwrap() as f64;
        // The bounds concern expectations; allow modest slack for the
        // integer simulation.
        assert!(
            measured >= lower * 0.7 && measured <= upper * 1.4,
            "measured {measured}, bounds [{lower}, {upper}]"
        );
    }

    #[test]
    fn decrease_ops_sensitive_to_f() {
        // §6: cost falls sharply as f grows.
        let slow = mean_decrease_ops(Params::new(64, 1, 1.05, 4).unwrap(), 1_000, 500, 20, 3);
        let fast = mean_decrease_ops(Params::new(64, 2, 1.8, 4).unwrap(), 1_000, 500, 20, 3);
        assert!(slow > 2.0 * fast, "f=1.05: {slow} ops, f=1.8: {fast} ops");
    }

    #[test]
    fn decrease_ops_scale_invariant_in_ratio() {
        let params = Params::new(64, 1, 1.1, 4).unwrap();
        let small = mean_decrease_ops(params, 1_000, 500, 30, 5);
        let large = mean_decrease_ops(params, 10_000, 5_000, 30, 5);
        assert!((small - large).abs() / small < 0.25, "{small} vs {large}");
    }

    #[test]
    #[should_panic(expected = "cannot decrease below zero")]
    fn decrease_more_than_load_panics() {
        let params = Params::new(8, 1, 1.1, 4).unwrap();
        decrease_ops(params, 10, 11, 0);
    }
}
