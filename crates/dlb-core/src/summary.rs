//! Lazily-maintained exact min/max over a load vector.
//!
//! Per-step observers (the CLI recorder, `LoadSample` trace rows) need
//! only min/max/total, but [`crate::strategy::LoadBalancer::loads`]
//! hands them an O(n) clone per step — at n ≥ 2¹⁸ the observer
//! dominates the simulation.  The tracker keeps two *lazy* heaps of
//! `(load, proc)` candidates: every load change pushes the new value,
//! stale entries are discarded at query time.  The invariant is that
//! each processor's **current** value is always present in both heaps
//! (pushed on its last change, never popped — queries only pop entries
//! that disagree with the live load vector), so the first agreeing top
//! is the exact extremum.  A query costs O(stale popped · log) —
//! amortised O(changes since the last query) — and a change costs two
//! O(log) pushes, i.e. everything scales with *activity*, not n.
//!
//! Heaps are compacted (rebuilt from the live vector) when stale
//! entries outnumber processors 3:1, bounding memory at O(n).
//!
//! Engines construct the tracker lazily on the first
//! `load_summary()` call, so untracked runs pay a single `Option`
//! check per load change.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Lazy min/max candidate heaps over a load vector (see module docs).
pub(crate) struct SummaryTracker {
    max_heap: BinaryHeap<(u64, u32)>,
    min_heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl SummaryTracker {
    /// A tracker seeded with every processor's current load.
    pub fn new(loads: &[u64]) -> Self {
        let mut tracker = SummaryTracker {
            max_heap: BinaryHeap::with_capacity(2 * loads.len()),
            min_heap: BinaryHeap::with_capacity(2 * loads.len()),
        };
        tracker.rebuild(loads);
        tracker
    }

    /// Drops every stale entry by rebuilding from the live vector.
    fn rebuild(&mut self, loads: &[u64]) {
        self.max_heap.clear();
        self.min_heap.clear();
        self.max_heap
            .extend(loads.iter().enumerate().map(|(i, &l)| (l, i as u32)));
        self.min_heap.extend(
            loads
                .iter()
                .enumerate()
                .map(|(i, &l)| Reverse((l, i as u32))),
        );
    }

    /// Records processor `i`'s new load (`loads[i]` already updated).
    #[inline]
    pub fn note(&mut self, i: usize, loads: &[u64]) {
        let l = loads[i];
        self.max_heap.push((l, i as u32));
        self.min_heap.push(Reverse((l, i as u32)));
        if self.max_heap.len() > 4 * loads.len() {
            self.rebuild(loads);
        }
    }

    /// Exact `(min, max)` of the live vector.  Pops entries that
    /// disagree with `loads`; an agreeing top is never popped, so each
    /// processor's latest entry survives for the next query.
    pub fn min_max(&mut self, loads: &[u64]) -> (u64, u64) {
        let max = loop {
            let &(l, i) = self.max_heap.peek().expect("tracker covers every proc");
            if loads[i as usize] == l {
                break l;
            }
            self.max_heap.pop();
        };
        let min = loop {
            let &Reverse((l, i)) = self.min_heap.peek().expect("tracker covers every proc");
            if loads[i as usize] == l {
                break l;
            }
            self.min_heap.pop();
        };
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn tracks_extrema_through_random_mutations() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut loads: Vec<u64> = (0..50).map(|_| rng.gen_range(0..100)).collect();
        let mut tracker = SummaryTracker::new(&loads);
        for round in 0..2000 {
            let i = rng.gen_range(0..loads.len());
            loads[i] = rng.gen_range(0..100);
            tracker.note(i, &loads);
            if round % 7 == 0 {
                let (min, max) = tracker.min_max(&loads);
                assert_eq!(min, *loads.iter().min().unwrap(), "round {round}");
                assert_eq!(max, *loads.iter().max().unwrap(), "round {round}");
            }
        }
    }

    #[test]
    fn repeated_queries_between_mutations_are_stable() {
        let mut loads = vec![5, 1, 9, 3];
        let mut tracker = SummaryTracker::new(&loads);
        assert_eq!(tracker.min_max(&loads), (1, 9));
        assert_eq!(tracker.min_max(&loads), (1, 9));
        loads[2] = 0;
        tracker.note(2, &loads);
        assert_eq!(tracker.min_max(&loads), (0, 5));
        assert_eq!(tracker.min_max(&loads), (0, 5));
    }

    #[test]
    fn compaction_bounds_memory() {
        let mut loads = vec![0u64; 8];
        let mut tracker = SummaryTracker::new(&loads);
        for k in 0..10_000u64 {
            loads[(k % 8) as usize] = k;
            tracker.note((k % 8) as usize, &loads);
        }
        assert!(tracker.max_heap.len() <= 4 * loads.len());
        let (min, max) = tracker.min_max(&loads);
        assert_eq!(min, *loads.iter().min().unwrap());
        assert_eq!(max, *loads.iter().max().unwrap());
    }
}
