//! The SPAA'93 dynamic distributed load balancing algorithm of Lüling &
//! Monien, implemented as an executable, instrumented model.
//!
//! Two variants are provided:
//!
//! * [`cluster::Cluster`] — the *analyzable* algorithm of §4 and the paper's
//!   appendix: every processor tracks per-class virtual loads
//!   `d_{i,1..n}`, borrowed-packet markers `b_{i,1..n}` (limit `C`), and
//!   triggers a balancing operation with `δ` random partners whenever its
//!   self-generated load has changed by the factor `f`.  This is the
//!   variant Theorems 3 and 4 are proved for.
//! * [`simple::SimpleCluster`] — the *practical* algorithm of [7] that the
//!   paper's introduction describes: identical trigger, but balancing raw
//!   load counts without the virtual-class bookkeeping.  This is what the
//!   branch-and-bound / Prolog / graphics applications cited by the paper
//!   actually ran.
//!
//! [`cluster::Cluster`] stores the `d`/`b` matrices sparsely
//! ([`sparse::SparseRow`] per processor), which is what lets it scale to
//! n ≥ 2¹⁸; the retired flat-arena engine survives as
//! [`dense::DenseCluster`] and the naive oracle as
//! [`reference`] — all three are bit-identical, enforced by proptests.
//!
//! [`one_proc`] contains the one-processor-generator(-consumer) models of
//! §3 (the paper's Figure 1), used to validate Theorems 1–3 and the cost
//! bounds of §6 empirically.
//!
//! Everything is deterministic given a seed, and every probabilistic
//! decision draws from a `ChaCha8` stream owned by the structure.
//!
//! ```
//! use dlb_core::{Cluster, LoadBalancer, LoadEvent, Params};
//!
//! // The paper's §7 configuration on 8 processors.
//! let params = Params::new(8, 1, 1.1, 4)?;
//! let mut cluster = Cluster::new(params, 42);
//!
//! // Processor 0 generates; everyone else idles.
//! let mut events = vec![LoadEvent::Idle; 8];
//! events[0] = LoadEvent::Generate;
//! for _ in 0..500 {
//!     cluster.step(&events);
//! }
//!
//! // Balancing spread the producer's 500 packets over the network.
//! assert_eq!(cluster.loads().iter().sum::<u64>(), 500);
//! assert!(cluster.loads().iter().all(|&l| l > 0));
//! cluster.check_invariants().unwrap();
//! # Ok::<(), dlb_theory::ParamError>(())
//! ```

pub mod balance;
pub mod batch;
pub mod cluster;
pub mod dense;
pub mod metrics;
pub mod one_proc;
pub mod params;
pub mod recorder;
#[doc(hidden)]
pub mod reference;
pub mod simple;
pub mod snapshot;
pub mod sparse;
pub mod strategy;
mod summary;
pub mod weighted;

pub use batch::{step_batch, BatchEvent};
pub use cluster::Cluster;
pub use dense::DenseCluster;
pub use metrics::Metrics;
pub use params::{ExchangePolicy, Params};
pub use recorder::LoadRecorder;
pub use simple::{SimpleCluster, SIMPLE_WAVE_THRESHOLD};
pub use snapshot::ClusterSnapshot;
pub use sparse::SparseRow;
pub use strategy::{
    check_sparse_events, imbalance_stats, ImbalanceStats, LoadBalancer, LoadEvent, LoadSummary,
    DEFAULT_WAVE_THRESHOLD,
};
pub use weighted::WeightedCluster;
