//! Parameters of the full load balancing algorithm.

use dlb_json::{FromJson, Json, ToJson};
use dlb_theory::{AlgoParams, ParamError};

/// How borrowed-packet markers are repaid when the remote generator still
/// holds self-generated packets (`d_{j,j} > 0`; §4 / appendix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangePolicy {
    /// Repay only markers of the remote generator's own class:
    /// `x = min{d_{j,j}, b_{i,j}}`.  Preserves per-class virtual-load
    /// conservation (the invariant the proofs rely on); this is the
    /// default.
    #[default]
    Strict,
    /// The paper's literal appendix rule `x = min{d_{j,j}, Σ_k b_{i,k}}`:
    /// markers of *any* class on the borrower are cancelled against
    /// class-`j` packets.  Minimises the number of borrowed packets left
    /// on the borrower per remote operation, at the cost of per-class
    /// conservation (global conservation still holds).
    Aggressive,
}

impl ToJson for ExchangePolicy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ExchangePolicy::Strict => "strict",
                ExchangePolicy::Aggressive => "aggressive",
            }
            .to_string(),
        )
    }
}

impl FromJson for ExchangePolicy {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value.as_str() {
            Some("strict") => Ok(ExchangePolicy::Strict),
            Some("aggressive") => Ok(ExchangePolicy::Aggressive),
            other => Err(format!("unknown exchange policy {other:?}")),
        }
    }
}

/// Validated parameter set of the full algorithm: the analysis triple
/// `(n, δ, f)` plus the borrow limit `C` and the exchange policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    algo: AlgoParams,
    c_borrow: usize,
    exchange: ExchangePolicy,
}

impl Params {
    /// Validates and constructs a parameter set.
    ///
    /// `n` is the network size, `delta` the number of random partners per
    /// balancing operation, `f` the trigger factor (`1 ≤ f < δ + 1`), and
    /// `c_borrow` the limit `C` on borrowed packets per processor.
    pub fn new(n: usize, delta: usize, f: f64, c_borrow: usize) -> Result<Self, ParamError> {
        Ok(Params {
            algo: AlgoParams::new(n, delta, f)?,
            c_borrow,
            exchange: ExchangePolicy::Strict,
        })
    }

    /// The configuration of the paper's §7 experiments:
    /// `δ = 1`, `f = 1.1`, `C = 4` on a given network size.
    pub fn paper_section7(n: usize) -> Self {
        Params::new(n, 1, 1.1, 4).expect("paper defaults are valid")
    }

    /// Replaces the exchange policy (builder style).
    pub fn with_exchange(mut self, exchange: ExchangePolicy) -> Self {
        self.exchange = exchange;
        self
    }

    /// The analysis triple `(n, δ, f)`.
    pub fn algo(&self) -> &AlgoParams {
        &self.algo
    }

    /// Network size `n`.
    pub fn n(&self) -> usize {
        self.algo.n()
    }

    /// Neighbourhood size `δ`.
    pub fn delta(&self) -> usize {
        self.algo.delta()
    }

    /// Trigger factor `f`.
    pub fn f(&self) -> f64 {
        self.algo.f()
    }

    /// Borrow limit `C`.
    pub fn c_borrow(&self) -> usize {
        self.c_borrow
    }

    /// Exchange policy for marker repayment.
    pub fn exchange(&self) -> ExchangePolicy {
        self.exchange
    }

    /// The increase-trigger predicate: has the self-generated load grown by
    /// factor `f` since the last balancing?  The `current > last` guard
    /// makes `l_old = 0` behave like the paper's Figure 1 (a first packet
    /// triggers) without triggering on no-change events.  The comparison
    /// carries a relative epsilon so that, e.g., `f = 1.1` and `last = 100`
    /// trigger at exactly 110 despite `1.1` not being representable.
    pub fn grow_triggered(&self, current: u64, last: u64) -> bool {
        let threshold = self.f() * last as f64;
        current > last && current as f64 >= threshold - 1e-9 * threshold
    }

    /// The decrease-trigger predicate (`d_{i,i} ≤ l_old / f`), with the
    /// same epsilon treatment as [`Params::grow_triggered`].
    pub fn shrink_triggered(&self, current: u64, last: u64) -> bool {
        let threshold = last as f64 / self.f();
        current < last && current as f64 <= threshold + 1e-9 * threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = Params::paper_section7(64);
        assert_eq!(p.n(), 64);
        assert_eq!(p.delta(), 1);
        assert!((p.f() - 1.1).abs() < 1e-12);
        assert_eq!(p.c_borrow(), 4);
        assert_eq!(p.exchange(), ExchangePolicy::Strict);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Params::new(64, 1, 2.0, 4).is_err());
        assert!(Params::new(64, 0, 1.1, 4).is_err());
        assert!(Params::new(1, 1, 1.1, 4).is_err());
    }

    #[test]
    fn grow_trigger_semantics() {
        let p = Params::new(64, 1, 1.1, 4).unwrap();
        // From zero: the first packet triggers (Figure 1 start).
        assert!(p.grow_triggered(1, 0));
        // No event, no trigger.
        assert!(!p.grow_triggered(0, 0));
        // 10 -> 11 with f = 1.1: 11 >= 11.0 triggers.
        assert!(p.grow_triggered(11, 10));
        assert!(!p.grow_triggered(10, 10));
        // 100 -> 109 does not reach 110.
        assert!(!p.grow_triggered(109, 100));
        assert!(p.grow_triggered(110, 100));
    }

    #[test]
    fn shrink_trigger_semantics() {
        let p = Params::new(64, 1, 1.1, 4).unwrap();
        // 11 -> 10: 10 <= 10.0 triggers.
        assert!(p.shrink_triggered(10, 11));
        // 110 -> 101: 101 > 100 no trigger; -> 100 triggers.
        assert!(!p.shrink_triggered(101, 110));
        assert!(p.shrink_triggered(100, 110));
        // Zero last never shrink-triggers.
        assert!(!p.shrink_triggered(0, 0));
    }

    #[test]
    fn builder_exchange_policy() {
        let p = Params::paper_section7(8).with_exchange(ExchangePolicy::Aggressive);
        assert_eq!(p.exchange(), ExchangePolicy::Aggressive);
    }
}
