//! Cost and activity counters for the load balancing algorithm.
//!
//! The four counters of the paper's Table 1 are `total_borrow`,
//! `remote_borrow`, `borrow_fail` and `decrease_sim`; the rest quantify
//! the migration/communication tradeoffs discussed in §1 and §6.

use dlb_json::{FromJson, Json, ToJson};
use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated over a run of the algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Full balancing operations (trigger-driven, over `δ + 1` processors).
    pub balance_ops: u64,
    /// Single-class balancing operations (part of the §4 reduce-borrow
    /// procedure).
    pub class_balance_ops: u64,
    /// Real packets moved between processors by balancing operations.
    pub packets_migrated: u64,
    /// Borrowed-packet markers moved between processors.
    pub markers_migrated: u64,
    /// Borrowing operations: a foreign-class packet consumed locally
    /// (Table 1 "total borrow").
    pub total_borrow: u64,
    /// Remote exchanges of borrowed markers against real generator packets
    /// (Table 1 "remote borrow").
    pub remote_borrow: u64,
    /// Invocations of the §4 procedure to remove a marker whose generator
    /// had no own packets (Table 1 "borrow fail").
    pub borrow_fail: u64,
    /// Initiated simulations of a workload decrease (Table 1 "decrease
    /// sim").
    pub decrease_sim: u64,
    /// Markers settled by annihilation on their home processor.
    pub markers_settled: u64,
    /// Generation events (fresh packets plus marker repayments).
    pub generated: u64,
    /// Consumption events that removed a real packet.
    pub consumed: u64,
    /// Consume requests that could not be served because the processor
    /// held no packets at all.
    pub consume_blocked: u64,
    /// Consume requests that failed despite available load (borrow
    /// machinery exhausted; should remain 0 or negligible).
    pub consume_failed: u64,
    /// Point-to-point messages the algorithm would send (trigger requests,
    /// load reports, packet transfers counted once per packet).
    pub messages: u64,
}

impl Metrics {
    /// New zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Packets migrated per balancing operation (0 if no operations ran).
    pub fn migration_per_op(&self) -> f64 {
        let ops = self.balance_ops + self.class_balance_ops;
        if ops == 0 {
            0.0
        } else {
            self.packets_migrated as f64 / ops as f64
        }
    }
}

macro_rules! metrics_fields {
    ($macro:ident) => {
        $macro!(
            balance_ops,
            class_balance_ops,
            packets_migrated,
            markers_migrated,
            total_borrow,
            remote_borrow,
            borrow_fail,
            decrease_sim,
            markers_settled,
            generated,
            consumed,
            consume_blocked,
            consume_failed,
            messages
        )
    };
}

impl Metrics {
    /// Every counter's field name, in declaration order (generated from
    /// the same `metrics_fields!` list as the JSON and Display impls, so
    /// it cannot drift from the struct).
    pub const FIELD_NAMES: &'static [&'static str] = {
        macro_rules! names {
            ($($field:ident),*) => {
                &[$(stringify!($field)),*]
            };
        }
        metrics_fields!(names)
    };

    /// Per-counter increments since `before` (callers snapshot a `Copy`
    /// of the metrics at step start and diff at step end). Counters are
    /// monotone, so saturating subtraction is exact.
    pub fn delta_from(&self, before: &Metrics) -> Metrics {
        macro_rules! diff {
            ($($field:ident),*) => {
                Metrics { $($field: self.$field.saturating_sub(before.$field)),* }
            };
        }
        metrics_fields!(diff)
    }

    /// `(name, value)` pairs of the non-zero counters, in declaration
    /// order — the payload of a trace `StepDelta` event.
    pub fn nonzero_fields(&self) -> Vec<(&'static str, u64)> {
        macro_rules! rows {
            ($($field:ident),*) => {
                [$((stringify!($field), self.$field)),*]
            };
        }
        metrics_fields!(rows)
            .into_iter()
            .filter(|&(_, v)| v != 0)
            .collect()
    }

    /// Sets the counter named `name` (the trace decoder's inverse of
    /// [`Metrics::nonzero_fields`]); `false` if no such counter exists.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        macro_rules! assign {
            ($($field:ident),*) => {
                match name {
                    $(stringify!($field) => self.$field = value,)*
                    _ => return false,
                }
            };
        }
        metrics_fields!(assign);
        true
    }

    /// Reads the counter named `name`, if it exists.
    pub fn get_field(&self, name: &str) -> Option<u64> {
        macro_rules! fetch {
            ($($field:ident),*) => {
                match name {
                    $(stringify!($field) => Some(self.$field),)*
                    _ => None,
                }
            };
        }
        metrics_fields!(fetch)
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        macro_rules! emit {
            ($($field:ident),*) => {
                Json::Obj(vec![$((stringify!($field).to_string(), self.$field.to_json())),*])
            };
        }
        metrics_fields!(emit)
    }
}

impl FromJson for Metrics {
    fn from_json(value: &Json) -> Result<Self, String> {
        macro_rules! read {
            ($($field:ident),*) => {
                Ok(Metrics { $($field: dlb_json::field_or(value, stringify!($field), 0)?),* })
            };
        }
        metrics_fields!(read)
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, other: Metrics) {
        self.balance_ops += other.balance_ops;
        self.class_balance_ops += other.class_balance_ops;
        self.packets_migrated += other.packets_migrated;
        self.markers_migrated += other.markers_migrated;
        self.total_borrow += other.total_borrow;
        self.remote_borrow += other.remote_borrow;
        self.borrow_fail += other.borrow_fail;
        self.decrease_sim += other.decrease_sim;
        self.markers_settled += other.markers_settled;
        self.generated += other.generated;
        self.consumed += other.consumed;
        self.consume_blocked += other.consume_blocked;
        self.consume_failed += other.consume_failed;
        self.messages += other.messages;
    }
}

impl fmt::Display for Metrics {
    /// One `name value` line per counter — every `metrics_fields!` entry,
    /// so new counters can never be silently dropped from the printout
    /// (`markers_migrated`, `markers_settled`, `consume_blocked` and
    /// `consume_failed` used to be).
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        macro_rules! rows {
            ($($field:ident),*) => {
                [$((stringify!($field), self.$field)),*]
            };
        }
        let rows = metrics_fields!(rows);
        for (i, (name, value)) in rows.iter().enumerate() {
            let label = name.replace('_', " ");
            if i > 0 {
                writeln!(out)?;
            }
            write!(out, "{label:<18} {value:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Metrics {
            balance_ops: 2,
            packets_migrated: 10,
            ..Metrics::new()
        };
        let b = Metrics {
            balance_ops: 3,
            total_borrow: 7,
            ..Metrics::new()
        };
        a += b;
        assert_eq!(a.balance_ops, 5);
        assert_eq!(a.packets_migrated, 10);
        assert_eq!(a.total_borrow, 7);
    }

    #[test]
    fn migration_per_op_handles_zero() {
        assert_eq!(Metrics::new().migration_per_op(), 0.0);
        let m = Metrics {
            balance_ops: 4,
            packets_migrated: 10,
            ..Metrics::new()
        };
        assert!((m.migration_per_op() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let m = Metrics {
            balance_ops: 1,
            total_borrow: 2,
            messages: u64::MAX,
            ..Metrics::new()
        };
        let j = dlb_json::Json::parse(&m.to_json().render()).unwrap();
        assert_eq!(Metrics::from_json(&j).unwrap(), m);
        // Missing fields default to zero (forward compatibility).
        assert_eq!(
            Metrics::from_json(&dlb_json::Json::Obj(vec![])).unwrap(),
            Metrics::new()
        );
    }

    #[test]
    fn delta_and_field_access_round_trip() {
        let before = Metrics {
            balance_ops: 2,
            messages: 10,
            ..Metrics::new()
        };
        let after = Metrics {
            balance_ops: 5,
            messages: 10,
            generated: 4,
            ..Metrics::new()
        };
        let delta = after.delta_from(&before);
        assert_eq!(
            delta.nonzero_fields(),
            vec![("balance_ops", 3), ("generated", 4)]
        );
        // Replaying the named deltas onto `before` reproduces `after`.
        let mut replay = before;
        for (name, inc) in delta.nonzero_fields() {
            let cur = replay.get_field(name).expect("known field");
            assert!(replay.set_field(name, cur + inc));
        }
        assert_eq!(replay, after);
        assert!(!replay.set_field("no_such_counter", 1));
        assert_eq!(replay.get_field("no_such_counter"), None);
    }

    #[test]
    fn display_mentions_every_counter() {
        // Regression: Display used to drop markers_migrated,
        // markers_settled, consume_blocked and consume_failed.  Every
        // field of `metrics_fields!` must appear.
        let text = Metrics::new().to_string();
        assert_eq!(Metrics::FIELD_NAMES.len(), 14, "update on field change");
        for name in Metrics::FIELD_NAMES {
            let label = name.replace('_', " ");
            assert!(text.contains(&label), "{label} missing from:\n{text}");
        }
        assert_eq!(text.lines().count(), Metrics::FIELD_NAMES.len());
    }
}
