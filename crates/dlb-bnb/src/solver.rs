//! The generic parallel branch & bound driver.

use dlb_net::{RuntimeConfig, RuntimeStats, ThreadedRuntime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether the problem minimises or maximises its objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Smaller is better (e.g. tour length).
    Minimize,
    /// Larger is better (e.g. knapsack value).
    Maximize,
}

/// A branch & bound problem over scaled-integer objectives.
///
/// All values are `u64`; fractional objectives should be scaled (the TSP
/// implementation multiplies distances by 1000).
pub trait Problem: Sync {
    /// A subproblem (work packet).  Packets migrate between workers, so
    /// they should be reasonably small.
    type Node: Send + Clone;

    /// Minimise or maximise.
    fn objective(&self) -> Objective;

    /// The root subproblem covering the whole search space.
    fn root(&self) -> Self::Node;

    /// An *admissible* bound on the best completion of `node`: a lower
    /// bound when minimising, an upper bound when maximising.
    fn bound(&self, node: &Self::Node) -> u64;

    /// `Some(value)` when the node is a complete solution.
    fn solution_value(&self, node: &Self::Node) -> Option<u64>;

    /// Expands a node into its children (leave empty for leaves).
    fn branch(&self, node: &Self::Node, out: &mut Vec<Self::Node>);
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Best objective value found (`None` if the space was empty).
    pub best_value: Option<u64>,
    /// Subproblems expanded (across all workers).
    pub expanded: u64,
    /// Subproblems pruned by the bound test.
    pub pruned: u64,
    /// Runtime statistics (per-worker work counts, balance ops).
    pub runtime: RuntimeStats,
}

impl SolveOutcome {
    /// max/mean of per-worker expansion counts (parallel efficiency
    /// proxy; 1.0 is perfect).
    pub fn work_imbalance(&self) -> f64 {
        self.runtime.processing_imbalance()
    }
}

/// The parallel solver: explores the branch & bound tree on the
/// SPAA'93-balanced threaded runtime with a shared atomic incumbent.
#[derive(Debug, Clone, Copy)]
pub struct Solver {
    /// Runtime configuration (workers, δ, f, seed).
    pub config: RuntimeConfig,
}

impl Default for Solver {
    /// Four workers, δ = 2, f = 1.5.
    fn default() -> Self {
        Solver {
            config: RuntimeConfig {
                workers: 4,
                delta: 2,
                f: 1.5,
                seed: 1,
            },
        }
    }
}

impl Solver {
    /// A solver with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        let mut solver = Solver::default();
        solver.config.workers = workers;
        solver.config.delta = solver.config.delta.min(workers.saturating_sub(1)).max(1);
        solver
    }

    /// Solves the problem to proven optimality.
    pub fn solve<P: Problem>(&self, problem: &P) -> SolveOutcome {
        let objective = problem.objective();
        // The incumbent encodes "no solution yet" as the worst value.
        let incumbent = AtomicU64::new(match objective {
            Objective::Minimize => u64::MAX,
            Objective::Maximize => 0,
        });
        let found = AtomicU64::new(0);
        let expanded = AtomicU64::new(0);
        let pruned = AtomicU64::new(0);

        let promising = |bound: u64, best: u64, any_found: bool| {
            if !any_found {
                return true;
            }
            match objective {
                Objective::Minimize => bound < best,
                Objective::Maximize => bound > best,
            }
        };

        let runtime = ThreadedRuntime::run(
            self.config,
            vec![problem.root()],
            |_worker, node: P::Node, spawn| {
                expanded.fetch_add(1, Ordering::Relaxed);
                let best = incumbent.load(Ordering::Relaxed);
                let any = found.load(Ordering::Relaxed) != 0;
                if !promising(problem.bound(&node), best, any) {
                    pruned.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                if let Some(value) = problem.solution_value(&node) {
                    found.store(1, Ordering::Relaxed);
                    match objective {
                        Objective::Minimize => {
                            incumbent.fetch_min(value, Ordering::Relaxed);
                        }
                        Objective::Maximize => {
                            incumbent.fetch_max(value, Ordering::Relaxed);
                        }
                    }
                    return;
                }
                let mark = spawn.len();
                problem.branch(&node, spawn);
                // Prune children immediately against the current incumbent.
                let best = incumbent.load(Ordering::Relaxed);
                let any = found.load(Ordering::Relaxed) != 0;
                let before = spawn.len() - mark;
                spawn.retain(|child| promising(problem.bound(child), best, any));
                pruned.fetch_add((before - (spawn.len() - mark)) as u64, Ordering::Relaxed);
            },
        );

        let best_value = if found.load(Ordering::Relaxed) != 0 {
            Some(incumbent.load(Ordering::Relaxed))
        } else {
            None
        };
        SolveOutcome {
            best_value,
            expanded: expanded.load(Ordering::Relaxed),
            pruned: pruned.load(Ordering::Relaxed),
            runtime,
        }
    }
}

/// An enumeration problem: count every complete configuration reachable
/// from the root (no objective; pruning comes from `branch` simply not
/// generating invalid children).  Used for constraint-satisfaction
/// searches like N-Queens — the "backtrack search" workload of the
/// paper's dynamic-tree-embedding references [5, 19].
pub trait Enumeration: Sync {
    /// A subproblem (work packet).
    type Node: Send + Clone;

    /// The root covering the whole space.
    fn root(&self) -> Self::Node;

    /// True when the node is a complete solution.
    fn is_solution(&self, node: &Self::Node) -> bool;

    /// Expands a node into its (valid) children.
    fn branch(&self, node: &Self::Node, out: &mut Vec<Self::Node>);
}

impl Solver {
    /// Counts all solutions of an enumeration problem in parallel.
    pub fn count_solutions<P: Enumeration>(&self, problem: &P) -> (u64, RuntimeStats) {
        let solutions = AtomicU64::new(0);
        let runtime = ThreadedRuntime::run(
            self.config,
            vec![problem.root()],
            |_w, node: P::Node, out| {
                if problem.is_solution(&node) {
                    solutions.fetch_add(1, Ordering::Relaxed);
                }
                problem.branch(&node, out);
            },
        );
        (solutions.load(Ordering::Relaxed), runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy problem: pick one number from each of `k` rows, minimising the
    /// sum (optimum = sum of row minima).
    struct PickOnePerRow {
        rows: Vec<Vec<u64>>,
    }

    #[derive(Clone)]
    struct PickNode {
        depth: usize,
        sum: u64,
    }

    impl Problem for PickOnePerRow {
        type Node = PickNode;

        fn objective(&self) -> Objective {
            Objective::Minimize
        }

        fn root(&self) -> PickNode {
            PickNode { depth: 0, sum: 0 }
        }

        fn bound(&self, node: &PickNode) -> u64 {
            node.sum
                + self.rows[node.depth..]
                    .iter()
                    .map(|row| row.iter().min().copied().unwrap_or(0))
                    .sum::<u64>()
        }

        fn solution_value(&self, node: &PickNode) -> Option<u64> {
            (node.depth == self.rows.len()).then_some(node.sum)
        }

        fn branch(&self, node: &PickNode, out: &mut Vec<PickNode>) {
            for &v in &self.rows[node.depth] {
                out.push(PickNode {
                    depth: node.depth + 1,
                    sum: node.sum + v,
                });
            }
        }
    }

    #[test]
    fn toy_minimisation_is_exact() {
        let problem = PickOnePerRow {
            rows: vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5], vec![3, 5, 8]],
        };
        let outcome = Solver::default().solve(&problem);
        assert_eq!(outcome.best_value, Some(1 + 1 + 2 + 3));
        assert!(outcome.expanded > 0);
    }

    #[test]
    fn pruning_reduces_expansions() {
        // With an exact bound the solver should expand far fewer nodes
        // than the full tree (3^8 leaves).
        let rows: Vec<Vec<u64>> = (0..8).map(|i| vec![i + 1, i + 2, i + 10]).collect();
        let full_tree: u64 = (1..=8).map(|d| 3u64.pow(d)).sum::<u64>() + 1;
        let outcome = Solver::default().solve(&PickOnePerRow { rows });
        assert!(outcome.best_value.is_some());
        assert!(
            outcome.expanded < full_tree / 2,
            "pruning works: {} of {}",
            outcome.expanded,
            full_tree
        );
        assert!(outcome.pruned > 0);
    }

    /// Count binary strings of length `k` with no two adjacent ones
    /// (Fibonacci numbers).
    struct NoAdjacentOnes {
        k: usize,
    }

    impl Enumeration for NoAdjacentOnes {
        type Node = (usize, bool); // (depth, last bit)

        fn root(&self) -> (usize, bool) {
            (0, false)
        }

        fn is_solution(&self, node: &(usize, bool)) -> bool {
            node.0 == self.k
        }

        fn branch(&self, node: &(usize, bool), out: &mut Vec<(usize, bool)>) {
            if node.0 == self.k {
                return;
            }
            out.push((node.0 + 1, false));
            if !node.1 {
                out.push((node.0 + 1, true));
            }
        }
    }

    #[test]
    fn enumeration_counts_fibonacci() {
        // Strings of length 10 with no adjacent ones: F(12) = 144.
        let (count, stats) = Solver::default().count_solutions(&NoAdjacentOnes { k: 10 });
        assert_eq!(count, 144);
        assert!(stats.total_processed() > 144);
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let problem = PickOnePerRow {
            rows: (0..6).map(|i| vec![2 * i + 1, 7 - i % 3, i + 4]).collect(),
        };
        let a = Solver::with_workers(2).solve(&problem).best_value;
        let b = Solver::with_workers(6).solve(&problem).best_value;
        assert_eq!(a, b, "optimum independent of parallelism");
    }
}
