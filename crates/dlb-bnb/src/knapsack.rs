//! 0/1 knapsack: a maximisation problem for the branch & bound driver,
//! with the classic fractional-relaxation upper bound and an exact
//! dynamic-programming verifier.

use crate::solver::{Objective, Problem};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A 0/1 knapsack instance (items sorted by value density at
/// construction, which makes the fractional bound tight).
#[derive(Debug, Clone)]
pub struct Knapsack {
    /// `(weight, value)` pairs, sorted by decreasing value/weight.
    items: Vec<(u64, u64)>,
    capacity: u64,
}

/// A partial selection over the density-sorted items.
#[derive(Debug, Clone)]
pub struct KnapsackNode {
    /// Next item index to decide.
    pub depth: usize,
    /// Weight used so far.
    pub weight: u64,
    /// Value collected so far.
    pub value: u64,
}

impl Knapsack {
    /// An instance from explicit items.
    ///
    /// # Panics
    ///
    /// Panics on empty item lists or zero-weight items.
    pub fn new(mut items: Vec<(u64, u64)>, capacity: u64) -> Self {
        assert!(!items.is_empty(), "need at least one item");
        assert!(
            items.iter().all(|&(w, _)| w > 0),
            "weights must be positive"
        );
        items.sort_by(|&(wa, va), &(wb, vb)| (vb * wa).cmp(&(va * wb)));
        Knapsack { items, capacity }
    }

    /// A random instance with `n` items and roughly half the total weight
    /// as capacity.
    pub fn random(n: usize, max_weight: u64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let items: Vec<(u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(1..=max_weight),
                    rng.gen_range(1..=max_weight * 2),
                )
            })
            .collect();
        let capacity = items.iter().map(|&(w, _)| w).sum::<u64>() / 2;
        Knapsack::new(items, capacity)
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.items.len()
    }

    /// Exact optimum via dynamic programming over capacities (verifier).
    pub fn optimum_by_dp(&self) -> u64 {
        let cap = self.capacity as usize;
        let mut best = vec![0u64; cap + 1];
        for &(w, v) in &self.items {
            let w = w as usize;
            for c in (w..=cap).rev() {
                best[c] = best[c].max(best[c - w] + v);
            }
        }
        best[cap]
    }

    /// Fractional-relaxation upper bound from a partial selection.
    fn fractional_bound(&self, node: &KnapsackNode) -> u64 {
        let mut value = node.value;
        let mut room = self.capacity - node.weight;
        for &(w, v) in &self.items[node.depth..] {
            if w <= room {
                room -= w;
                value += v;
            } else {
                // Take the fractional part (items are density-sorted).
                value += v * room / w;
                break;
            }
        }
        value
    }
}

impl Problem for Knapsack {
    type Node = KnapsackNode;

    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    fn root(&self) -> KnapsackNode {
        KnapsackNode {
            depth: 0,
            weight: 0,
            value: 0,
        }
    }

    fn bound(&self, node: &KnapsackNode) -> u64 {
        self.fractional_bound(node)
    }

    fn solution_value(&self, node: &KnapsackNode) -> Option<u64> {
        (node.depth == self.items.len()).then_some(node.value)
    }

    fn branch(&self, node: &KnapsackNode, out: &mut Vec<KnapsackNode>) {
        let (w, v) = self.items[node.depth];
        // Skip the item ...
        out.push(KnapsackNode {
            depth: node.depth + 1,
            weight: node.weight,
            value: node.value,
        });
        // ... or take it, capacity permitting.
        if node.weight + w <= self.capacity {
            out.push(KnapsackNode {
                depth: node.depth + 1,
                weight: node.weight + w,
                value: node.value + v,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    #[test]
    fn hand_instance_exact() {
        // Items (w, v): capacity 10; optimum = 5+6 = 11 (weights 4+6).
        let ks = Knapsack::new(vec![(4, 5), (6, 6), (5, 5), (9, 9)], 10);
        let outcome = Solver::default().solve(&ks);
        assert_eq!(outcome.best_value, Some(11));
        assert_eq!(ks.optimum_by_dp(), 11);
    }

    #[test]
    fn random_instances_match_dp() {
        for seed in 0..5 {
            let ks = Knapsack::random(18, 40, seed);
            let outcome = Solver::with_workers(4).solve(&ks);
            assert_eq!(outcome.best_value, Some(ks.optimum_by_dp()), "seed {seed}");
        }
    }

    #[test]
    fn fractional_bound_admissible_at_root() {
        for seed in 0..5 {
            let ks = Knapsack::random(14, 30, seed);
            assert!(ks.bound(&ks.root()) >= ks.optimum_by_dp(), "seed {seed}");
        }
    }

    #[test]
    fn pruning_beats_exhaustive() {
        let ks = Knapsack::random(20, 40, 9);
        let outcome = Solver::default().solve(&ks);
        // Full tree would expand 2^21 − 1 nodes.
        assert!(
            outcome.expanded < (1 << 19),
            "expanded {}",
            outcome.expanded
        );
        assert!(outcome.pruned > 0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        Knapsack::new(vec![(0, 5)], 10);
    }
}
