//! Parallel best-first branch & bound on the SPAA'93 load-balancing
//! runtime.
//!
//! Branch & bound is the application family the paper's algorithm was
//! built for — the authors' own systems ([7] "Load Balancing for
//! Distributed Branch & Bound Algorithms", [8] the parallel TSP solver)
//! keep every processor's subproblem pool balanced with exactly the
//! trigger rule this workspace implements.  This crate packages that
//! pattern behind a small trait:
//!
//! * implement [`Problem`] (branch, bound, leaf detection) for your
//!   optimisation problem;
//! * [`Solver::solve`] explores the tree on
//!   [`dlb_net::ThreadedRuntime`] with a shared atomic incumbent and
//!   bound-based pruning;
//! * three reference problems are included — the symmetric TSP
//!   ([`tsp::Tsp`], Held–Karp-verified), 0/1 knapsack
//!   ([`knapsack::Knapsack`], DP-verified) and N-Queens counting
//!   ([`nqueens::NQueens`], verified against the known sequence via the
//!   [`Enumeration`] driver).
//!
//! ```
//! use dlb_bnb::{knapsack::Knapsack, Solver};
//!
//! let problem = Knapsack::random(16, 50, 1);
//! let outcome = Solver::default().solve(&problem);
//! assert_eq!(outcome.best_value, Some(problem.optimum_by_dp()));
//! ```

pub mod knapsack;
pub mod nqueens;
pub mod solver;
pub mod tsp;

pub use solver::{Enumeration, Objective, Problem, SolveOutcome, Solver};
