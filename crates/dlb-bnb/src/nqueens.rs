//! N-Queens: a constraint-satisfaction enumeration (the "backtrack
//! search" workload of the paper's references [5, 19]), counted exactly
//! in parallel.

use crate::solver::Enumeration;

/// The N-Queens board (`n ≤ 16`).
#[derive(Debug, Clone, Copy)]
pub struct NQueens {
    n: u32,
}

/// A partial placement: one queen per filled row, attack sets as
/// bitmasks.
#[derive(Debug, Clone, Copy)]
pub struct QueenNode {
    /// Rows filled so far.
    pub row: u32,
    /// Occupied columns.
    pub cols: u32,
    /// Occupied "/" diagonals (shifted left per row).
    pub diag1: u32,
    /// Occupied "\" diagonals (shifted right per row).
    pub diag2: u32,
}

impl NQueens {
    /// A board of size `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 16`.
    pub fn new(n: u32) -> Self {
        assert!((1..=16).contains(&n), "need 1 <= n <= 16");
        NQueens { n }
    }

    /// Board size.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Sequential reference count (classic bitmask backtracking).
    pub fn count_sequential(&self) -> u64 {
        fn rec(n: u32, row: u32, cols: u32, d1: u32, d2: u32) -> u64 {
            if row == n {
                return 1;
            }
            let full = (1u32 << n) - 1;
            let mut free = full & !(cols | d1 | d2);
            let mut count = 0;
            while free != 0 {
                let bit = free & free.wrapping_neg();
                free -= bit;
                count += rec(n, row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
            }
            count
        }
        rec(self.n, 0, 0, 0, 0)
    }
}

impl Enumeration for NQueens {
    type Node = QueenNode;

    fn root(&self) -> QueenNode {
        QueenNode {
            row: 0,
            cols: 0,
            diag1: 0,
            diag2: 0,
        }
    }

    fn is_solution(&self, node: &QueenNode) -> bool {
        node.row == self.n
    }

    fn branch(&self, node: &QueenNode, out: &mut Vec<QueenNode>) {
        if node.row == self.n {
            return;
        }
        let full = (1u32 << self.n) - 1;
        let mut free = full & !(node.cols | node.diag1 | node.diag2);
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free -= bit;
            out.push(QueenNode {
                row: node.row + 1,
                cols: node.cols | bit,
                diag1: (node.diag1 | bit) << 1,
                diag2: (node.diag2 | bit) >> 1,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    #[test]
    fn known_counts() {
        // OEIS A000170.
        for (n, expected) in [(1u32, 1u64), (4, 2), (5, 10), (6, 4), (7, 40), (8, 92)] {
            let q = NQueens::new(n);
            assert_eq!(q.count_sequential(), expected, "sequential n={n}");
            let (parallel, _) = Solver::default().count_solutions(&q);
            assert_eq!(parallel, expected, "parallel n={n}");
        }
    }

    #[test]
    fn ten_queens_parallel() {
        let q = NQueens::new(10);
        let (count, stats) = Solver::with_workers(6).count_solutions(&q);
        assert_eq!(count, 724);
        assert!(stats.balance_ops > 0, "the runtime balanced the frontier");
    }

    #[test]
    #[should_panic(expected = "need 1 <= n <= 16")]
    fn size_validated() {
        NQueens::new(17);
    }
}
