//! The symmetric travelling salesman problem — the application of the
//! paper's companion work [8] ("Efficient Parallelization of a Branch &
//! Bound Algorithm for the Symmetric TSP").
//!
//! Nodes are partial tours starting at city 0; the admissible bound adds
//! half the sum of the cheapest incident edges of every unfinished city
//! to the accumulated cost.  A Held–Karp dynamic program
//! ([`Tsp::optimum_by_held_karp`]) verifies optimality in the tests.

use crate::solver::{Objective, Problem};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Distance scaling: coordinates in `[0, 1)`, distances in milli-units.
pub const SCALE: f64 = 1_000.0;

/// A symmetric TSP instance on `n ≤ 31` cities.
#[derive(Debug, Clone)]
pub struct Tsp {
    dist: Vec<Vec<u64>>,
    /// Cheapest edge incident to each city (for the bound).
    min_edge: Vec<u64>,
}

/// A partial tour starting at city 0.
#[derive(Debug, Clone)]
pub struct TourNode {
    /// Bitmask of visited cities (bit 0 always set).
    pub visited: u32,
    /// Current city.
    pub last: u8,
    /// Accumulated scaled cost.
    pub cost: u64,
}

impl Tsp {
    /// An instance from an explicit symmetric distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty, non-square, asymmetric, has a
    /// non-zero diagonal, or exceeds 31 cities (the visited bitmask).
    pub fn new(dist: Vec<Vec<u64>>) -> Self {
        let n = dist.len();
        assert!((2..=31).contains(&n), "need 2..=31 cities");
        for (i, row) in dist.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            assert_eq!(row[i], 0, "zero diagonal");
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, dist[j][i], "matrix must be symmetric");
            }
        }
        let min_edge = (0..n)
            .map(|v| {
                (0..n)
                    .filter(|&u| u != v)
                    .map(|u| dist[v][u])
                    .min()
                    .expect("n >= 2")
            })
            .collect();
        Tsp { dist, min_edge }
    }

    /// A random Euclidean instance with `n` cities.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let dist = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                        ((dx * dx + dy * dy).sqrt() * SCALE) as u64
                    })
                    .collect()
            })
            .collect();
        Tsp::new(dist)
    }

    /// Number of cities.
    pub fn n(&self) -> usize {
        self.dist.len()
    }

    /// Distance between two cities.
    pub fn distance(&self, a: usize, b: usize) -> u64 {
        self.dist[a][b]
    }

    /// Exact optimum via the Held–Karp subset DP (`O(2^n n²)`; verifier).
    pub fn optimum_by_held_karp(&self) -> u64 {
        let n = self.n();
        let full = 1u32 << n;
        let mut dp = vec![vec![u64::MAX; n]; full as usize];
        dp[1][0] = 0;
        for mask in 1..full {
            if mask & 1 == 0 {
                continue;
            }
            for last in 0..n {
                let cur = dp[mask as usize][last];
                if cur == u64::MAX || mask & (1 << last) == 0 {
                    continue;
                }
                for (next, d) in self.dist[last].iter().enumerate() {
                    if mask & (1 << next) != 0 {
                        continue;
                    }
                    let nm = (mask | (1 << next)) as usize;
                    let cand = cur + d;
                    if cand < dp[nm][next] {
                        dp[nm][next] = cand;
                    }
                }
            }
        }
        (1..n)
            .map(|last| dp[(full - 1) as usize][last].saturating_add(self.dist[last][0]))
            .min()
            .expect("n >= 2")
    }
}

impl Problem for Tsp {
    type Node = TourNode;

    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn root(&self) -> TourNode {
        TourNode {
            visited: 1,
            last: 0,
            cost: 0,
        }
    }

    fn bound(&self, node: &TourNode) -> u64 {
        // cost so far + half the cheapest incident edge of every city
        // still needing both tour edges (unvisited cities and the two
        // open endpoints each need at least one more edge).
        let n = self.n();
        let mut half_sum = 0u64;
        for v in 0..n {
            if node.visited & (1 << v) == 0 || v == node.last as usize || v == 0 {
                half_sum += self.min_edge[v];
            }
        }
        node.cost + half_sum / 2
    }

    fn solution_value(&self, node: &TourNode) -> Option<u64> {
        (node.visited == (1u32 << self.n()) - 1)
            .then(|| node.cost + self.dist[node.last as usize][0])
    }

    fn branch(&self, node: &TourNode, out: &mut Vec<TourNode>) {
        for next in 1..self.n() {
            if node.visited & (1 << next) == 0 {
                out.push(TourNode {
                    visited: node.visited | (1 << next),
                    last: next as u8,
                    cost: node.cost + self.dist[node.last as usize][next],
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    #[test]
    fn matrix_validation() {
        let ok = Tsp::new(vec![vec![0, 2], vec![2, 0]]);
        assert_eq!(ok.n(), 2);
        let bad_sym = std::panic::catch_unwind(|| Tsp::new(vec![vec![0, 2], vec![3, 0]]));
        assert!(bad_sym.is_err(), "asymmetric rejected");
        let bad_diag = std::panic::catch_unwind(|| Tsp::new(vec![vec![1, 2], vec![2, 0]]));
        assert!(bad_diag.is_err(), "non-zero diagonal rejected");
    }

    #[test]
    fn square_instance_known_optimum() {
        // Four cities on a unit square: optimal tour = perimeter = 4.
        let d = |x: f64| (x * SCALE) as u64;
        let tsp = Tsp::new(vec![
            vec![0, d(1.0), d(2f64.sqrt()), d(1.0)],
            vec![d(1.0), 0, d(1.0), d(2f64.sqrt())],
            vec![d(2f64.sqrt()), d(1.0), 0, d(1.0)],
            vec![d(1.0), d(2f64.sqrt()), d(1.0), 0],
        ]);
        let outcome = Solver::default().solve(&tsp);
        assert_eq!(outcome.best_value, Some(4 * d(1.0)));
        assert_eq!(tsp.optimum_by_held_karp(), 4 * d(1.0));
    }

    #[test]
    fn random_instances_match_held_karp() {
        for seed in 0..4 {
            let tsp = Tsp::random(10, seed);
            let outcome = Solver::with_workers(4).solve(&tsp);
            assert_eq!(
                outcome.best_value,
                Some(tsp.optimum_by_held_karp()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bound_is_admissible_along_optimal_path() {
        // The bound at the root must not exceed the optimum.
        let tsp = Tsp::random(9, 7);
        let root_bound = tsp.bound(&tsp.root());
        assert!(root_bound <= tsp.optimum_by_held_karp());
    }

    #[test]
    fn parallel_solves_bigger_instance() {
        let tsp = Tsp::random(12, 3);
        let outcome = Solver::with_workers(8).solve(&tsp);
        assert_eq!(outcome.best_value, Some(tsp.optimum_by_held_karp()));
        assert!(outcome.pruned > 0, "bound pruning active");
    }
}
