//! `dlb` — config-driven runner for the SPAA'93 load balancing workspace.
//!
//! ```text
//! dlb demo                      run the built-in §7 demo scenario
//! dlb run <scenario.json>       run a scenario from a JSON file
//! dlb template                  print a scenario template to stdout
//! ```

mod config;
mod run;

use config::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => run_scenario(Scenario::demo()),
        Some("run") => match args.get(1) {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => match Scenario::from_json(&text) {
                    Ok(scenario) => run_scenario(scenario),
                    Err(e) => Err(format!("invalid scenario {path}: {e}")),
                },
                Err(e) => Err(format!("cannot read {path}: {e}")),
            },
            None => Err("usage: dlb run <scenario.json>".into()),
        },
        Some("template") => {
            println!("{}", Scenario::demo().to_json());
            Ok(())
        }
        _ => Err("usage: dlb <demo | run <scenario.json> | template>".into()),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run_scenario(scenario: Scenario) -> Result<(), String> {
    println!(
        "running: {} processors, {} steps x {} runs, strategy {:?}\n",
        scenario.n, scenario.steps, scenario.runs, scenario.strategy
    );
    let report = run::execute(&scenario)?;
    println!("{}", report.render());
    Ok(())
}
