//! `dlb` — config-driven runner for the SPAA'93 load balancing workspace.
//!
//! ```text
//! dlb demo [options]                  run the built-in §7 demo scenario
//! dlb run <scenario.json> [options]   run a scenario from a JSON file
//!                                     (a non-empty "balancer" list races
//!                                     the strategy against each entry and
//!                                     prints a league table instead)
//! dlb template                        print a scenario template to stdout
//! dlb serve <scenario.json> [--mode sim|wall] [--workers N] [--acceptors A]
//!                                     run the request-routing service
//!                                     (see src/serve.rs for options)
//!
//! options:
//!   --trace <path>   write a JSONL event trace (dlb-trace schema)
//!   --jobs N         worker threads; output is identical for every N
//!   --step-jobs N    worker threads inside each step (wave-executed
//!                    balance operations); output is identical for every N
//!   --wave-threshold N  minimum queued operations per flush before the
//!                    wave executor engages (smaller flushes run
//!                    sequentially); output is identical for every N
//!   --profile        add per-step StepProfile events to the trace
//!   --dense          force the dense O(n)-per-step path for
//!                    sparse-capable workloads (output is byte-identical
//!                    either way; the event-driven path is the default)
//! ```

mod config;
mod run;
mod serve;

use config::Scenario;
use run::RunOptions;

const USAGE: &str = "usage: dlb <demo | run <scenario.json> | template | \
                     serve <scenario.json>> [--trace <path>] [--jobs N] \
                     [--step-jobs N] [--wave-threshold N] [--profile] [--dense]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => {
            parse_options(&args[1..]).and_then(|opts| run_scenario(Scenario::demo(), &opts))
        }
        Some("run") => match args.get(1).filter(|a| !a.starts_with("--")) {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => match Scenario::from_json(&text) {
                    Ok(scenario) => {
                        parse_options(&args[2..]).and_then(|opts| run_scenario(scenario, &opts))
                    }
                    Err(e) => Err(format!("invalid scenario {path}: {e}")),
                },
                Err(e) => Err(format!("cannot read {path}: {e}")),
            },
            None => Err(
                "usage: dlb run <scenario.json> [--trace <path>] [--jobs N] \
                 [--step-jobs N] [--profile]"
                    .to_string(),
            ),
        },
        Some("serve") => serve::serve_main(&args[1..]),
        Some("template") => {
            println!("{}", Scenario::demo().to_json());
            Ok(())
        }
        _ => Err(USAGE.to_string()),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn parse_options(rest: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace" => {
                opts.trace = Some(iter.next().ok_or("--trace needs a path")?.clone());
            }
            "--jobs" => {
                let raw = iter.next().ok_or("--jobs needs a thread count")?;
                opts.jobs = raw
                    .parse()
                    .map_err(|e| format!("invalid --jobs {raw:?}: {e}"))?;
            }
            "--step-jobs" => {
                let raw = iter.next().ok_or("--step-jobs needs a thread count")?;
                opts.step_jobs = raw
                    .parse()
                    .map_err(|e| format!("invalid --step-jobs {raw:?}: {e}"))?;
            }
            "--wave-threshold" => {
                let raw = iter.next().ok_or("--wave-threshold needs a count")?;
                opts.wave_threshold = Some(
                    raw.parse()
                        .map_err(|e| format!("invalid --wave-threshold {raw:?}: {e}"))?,
                );
            }
            "--profile" => opts.profile = true,
            "--dense" => opts.dense = true,
            other => return Err(format!("unknown option {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run_scenario(scenario: Scenario, opts: &RunOptions) -> Result<(), String> {
    if !scenario.balancer.is_empty() {
        println!(
            "league: {} processors, {} steps x {} runs, {} contenders\n",
            scenario.n,
            scenario.steps,
            scenario.runs,
            scenario.balancer.len() + 1
        );
        let table = run::execute_league(&scenario, opts)?;
        println!("{table}");
        if let Some(path) = opts.trace.as_ref().or(scenario.trace.as_ref()) {
            println!("\ntrace written to {path}");
        }
        return Ok(());
    }
    println!(
        "running: {} processors, {} steps x {} runs, strategy {:?}\n",
        scenario.n, scenario.steps, scenario.runs, scenario.strategy
    );
    let report = run::execute_with(&scenario, opts)?;
    println!("{}", report.render());
    if let Some(path) = opts.trace.as_ref().or(scenario.trace.as_ref()) {
        println!("\ntrace written to {path}");
    }
    Ok(())
}
