//! Builds and executes a [`Scenario`].
//!
//! Runs execute through the deterministic parallel harness of
//! `dlb-experiments` (`par_map` + `stream_seed`): each run's RNG streams
//! depend only on the scenario seed and the run index, and results —
//! including trace events — are reduced in run-index order, so the
//! report and any `--trace` output are byte-identical for every
//! `--jobs N`.

use crate::config::{Scenario, StrategyConfig, TopologyConfig, WorkloadConfig};
use dlb_baselines::{
    Diffusion, DimensionExchange, DynamicAveraging, Gradient, LocallyOptimal, NoBalance,
    Quasirandom, RandomScatter, Rsu91, WorkStealing,
};
use dlb_core::{
    Cluster, DenseCluster, LoadBalancer, LoadEvent, LoadRecorder, Params, SimpleCluster,
    WeightedCluster,
};
use dlb_experiments::arena::{
    league_csv_rows, run_league, ArenaConfig, Contender, DEFAULT_CONV_THRESHOLD, LEAGUE_HEADERS,
};
use dlb_experiments::{par_map, render_table, stream_seed, StreamId};
use dlb_faults::FaultInjector;
use dlb_net::{AsyncConfig, AsyncNetwork, AsyncStats, PartnerMode, TopoCluster, Topology};
use dlb_trace::{BufferSink, FileSink, TraceEvent, TraceSink};
use dlb_workload::patterns::{MovingHotspot, OneProducer, ProducerConsumerSplit, UniformRandom};
use dlb_workload::phase::{PhaseConfig, PhaseWorkload};
use dlb_workload::sparse::{SparseActivity, SparseWorkload};
use dlb_workload::Workload;

/// Execution options (CLI flags, not scenario content).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Write a JSONL event trace here (overrides the scenario's `trace`
    /// field).
    pub trace: Option<String>,
    /// Worker threads for the run loop (`0`/`1` = sequential; output is
    /// identical for every value).
    pub jobs: usize,
    /// Worker threads *inside* each step (wave-executed balance
    /// operations; `0`/`1` = sequential).  Shares the run-level pool, so
    /// `--jobs` and `--step-jobs` compose without oversubscription, and
    /// output is identical for every value.
    pub step_jobs: usize,
    /// Minimum queued-operation count for the wave executor; smaller
    /// flushes run sequentially (`None` = engine default).  Output is
    /// identical for every value.
    pub wave_threshold: Option<usize>,
    /// Emit per-step `StepProfile` events (wall times are
    /// machine-dependent, so profiled traces are not byte-reproducible).
    pub profile: bool,
    /// Force the dense O(n)-per-step path even for sparse-capable
    /// workloads (the event-driven path is taken automatically
    /// otherwise; both produce byte-identical output, so this flag
    /// exists for comparison and CI identity gates).
    pub dense: bool,
}

/// Aggregated outcome of all runs of a scenario.
#[derive(Debug, Clone)]
pub struct Report {
    /// Strategy name (from the balancer).
    pub strategy: String,
    /// Mean of per-step max/mean ratios (quality; 1.0 is perfect).
    pub mean_ratio: f64,
    /// 95th percentile of the ratios.
    pub p95_ratio: f64,
    /// Worst ratio ever observed.
    pub worst_ratio: f64,
    /// Balancing operations per run.
    pub ops_per_run: f64,
    /// Packets migrated per run.
    pub migrated_per_run: f64,
    /// Final total load of the last run.
    pub final_total: u64,
    /// Protocol counters summed over all runs (async strategy only).
    pub async_stats: Option<AsyncStats>,
    /// Packets destroyed by fault injection, summed over all runs
    /// (async strategy only; 0 without faults).
    pub lost_load: u64,
}

impl Report {
    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "strategy        {}\n\
             mean max/mean   {:.3}\n\
             p95 max/mean    {:.3}\n\
             worst max/mean  {:.3}\n\
             ops/run         {:.1}\n\
             migrated/run    {:.1}\n\
             final total     {}",
            self.strategy,
            self.mean_ratio,
            self.p95_ratio,
            self.worst_ratio,
            self.ops_per_run,
            self.migrated_per_run,
            self.final_total
        );
        if let Some(s) = &self.async_stats {
            out.push_str(&format!(
                "\ncompleted ops   {}\n\
                 aborted ops     {}\n\
                 retries         {}\n\
                 timeout recov.  {}\n\
                 lost messages   {}\n\
                 duplicated      {}\n\
                 crashes         {}\n\
                 recoveries      {}\n\
                 lost load       {}",
                s.completed_ops,
                s.aborted_ops,
                s.retries,
                s.timeout_recoveries,
                s.lost_messages,
                s.duplicated_messages,
                s.crashes,
                s.recoveries,
                self.lost_load
            ));
        }
        out
    }
}

fn build_topology(config: &TopologyConfig, n: usize) -> Result<Topology, String> {
    let topo = match *config {
        TopologyConfig::Complete => Topology::Complete { n },
        TopologyConfig::Ring => Topology::Ring { n },
        TopologyConfig::Torus { w, h } => Topology::Torus2D { w, h },
        TopologyConfig::Hypercube { dim } => Topology::Hypercube { dim },
        TopologyConfig::DeBruijn { dim } => Topology::DeBruijn { dim },
        TopologyConfig::Star => Topology::Star { n },
    };
    if topo.n() != n {
        return Err(format!("topology has {} vertices but n = {n}", topo.n()));
    }
    Ok(topo)
}

fn build_strategy(scenario: &Scenario, seed: u64) -> Result<Box<dyn LoadBalancer>, String> {
    build_strategy_config(&scenario.strategy, scenario.n, seed)
}

fn build_strategy_config(
    config: &StrategyConfig,
    n: usize,
    seed: u64,
) -> Result<Box<dyn LoadBalancer>, String> {
    let params =
        |delta: usize, f: f64, c: usize| Params::new(n, delta, f, c).map_err(|e| e.to_string());
    Ok(match config {
        StrategyConfig::Full { delta, f, c } => {
            Box::new(Cluster::new(params(*delta, *f, *c)?, seed))
        }
        StrategyConfig::FullDense { delta, f, c } => {
            Box::new(DenseCluster::new(params(*delta, *f, *c)?, seed))
        }
        StrategyConfig::Simple { delta, f } => {
            Box::new(SimpleCluster::new(params(*delta, *f, 4)?, seed))
        }
        StrategyConfig::Async { .. } => {
            return Err("async strategy runs on the event simulator, not a LoadBalancer".into())
        }
        StrategyConfig::Weighted { delta, f, speeds } => Box::new(WeightedCluster::new(
            params(*delta, *f, 4)?,
            speeds.clone(),
            seed,
        )),
        StrategyConfig::Topo {
            delta,
            f,
            topology,
            neighbors_only,
        } => {
            let topo = build_topology(topology, n)?;
            let mode = if *neighbors_only {
                PartnerMode::Neighbors
            } else {
                PartnerMode::GlobalRandom
            };
            Box::new(TopoCluster::new(params(*delta, *f, 4)?, topo, mode, seed))
        }
        StrategyConfig::Rsu91 => Box::new(Rsu91::new(n, seed)),
        StrategyConfig::WorkStealing => Box::new(WorkStealing::new(n, seed)),
        StrategyConfig::RandomScatter => Box::new(RandomScatter::new(n, seed)),
        StrategyConfig::Diffusion { topology, alpha } => {
            if !(*alpha > 0.0 && *alpha <= 0.5) {
                return Err("diffusion alpha must lie in (0, 0.5]".into());
            }
            Box::new(Diffusion::new(build_topology(topology, n)?, *alpha))
        }
        StrategyConfig::Gradient {
            topology,
            low,
            high,
        } => {
            if low >= high {
                return Err("gradient watermarks must satisfy low < high".into());
            }
            Box::new(Gradient::new(build_topology(topology, n)?, *low, *high))
        }
        StrategyConfig::Quasirandom { topology } => {
            Box::new(Quasirandom::new(build_topology(topology, n)?))
        }
        StrategyConfig::DynamicAveraging { topology } => {
            Box::new(DynamicAveraging::new(build_topology(topology, n)?, seed))
        }
        StrategyConfig::LocallyOptimal { topology } => {
            Box::new(LocallyOptimal::new(build_topology(topology, n)?))
        }
        StrategyConfig::DimensionExchange { topology } => {
            let topo = build_topology(topology, n)?;
            if !matches!(
                topo,
                Topology::Hypercube { .. } | Topology::Torus2D { .. } | Topology::Ring { .. }
            ) {
                return Err("dimension-exchange needs a hypercube, torus or ring topology".into());
            }
            Box::new(DimensionExchange::new(topo))
        }
        StrategyConfig::None => Box::new(NoBalance::new(n)),
    })
}

/// The JSON `kind` of a strategy (league-table contender labels).
fn kind_label(config: &StrategyConfig) -> &'static str {
    match config {
        StrategyConfig::Full { .. } => "full",
        StrategyConfig::FullDense { .. } => "full-dense",
        StrategyConfig::Simple { .. } => "simple",
        StrategyConfig::Async { .. } => "async",
        StrategyConfig::Weighted { .. } => "weighted",
        StrategyConfig::Topo { .. } => "topo",
        StrategyConfig::Rsu91 => "rsu91",
        StrategyConfig::WorkStealing => "work-stealing",
        StrategyConfig::RandomScatter => "random-scatter",
        StrategyConfig::Diffusion { .. } => "diffusion",
        StrategyConfig::Gradient { .. } => "gradient",
        StrategyConfig::Quasirandom { .. } => "quasirandom",
        StrategyConfig::DynamicAveraging { .. } => "dynamic-averaging",
        StrategyConfig::LocallyOptimal { .. } => "locally-optimal",
        StrategyConfig::DimensionExchange { .. } => "dimension-exchange",
        StrategyConfig::None => "none",
    }
}

fn build_workload(scenario: &Scenario, seed: u64) -> Result<Box<dyn Workload>, String> {
    let n = scenario.n;
    Ok(match &scenario.workload {
        WorkloadConfig::Phase { g, c, len } => {
            let config = PhaseConfig {
                g: *g,
                c: *c,
                len: *len,
            };
            config.validate()?;
            Box::new(PhaseWorkload::new(n, scenario.steps, config, seed))
        }
        WorkloadConfig::OneProducer { producer } => {
            if *producer >= n {
                return Err(format!("producer {producer} out of range (n = {n})"));
            }
            Box::new(OneProducer::new(n, *producer))
        }
        WorkloadConfig::Uniform { p_gen, p_con } => {
            if *p_gen < 0.0 || *p_con < 0.0 || p_gen + p_con > 1.0 {
                return Err("uniform workload needs p_gen + p_con <= 1".into());
            }
            Box::new(UniformRandom::new(n, *p_gen, *p_con, seed))
        }
        WorkloadConfig::MovingHotspot { period, p_con } => {
            if *period == 0 {
                return Err("hotspot period must be positive".into());
            }
            Box::new(MovingHotspot::new(n, *period, *p_con, seed))
        }
        WorkloadConfig::Split { swap_every } => {
            if *swap_every == 0 {
                return Err("swap period must be positive".into());
            }
            Box::new(ProducerConsumerSplit::new(n, *swap_every))
        }
        WorkloadConfig::Sparse { pattern } => {
            pattern.validate()?;
            Box::new(SparseActivity::new(n, *pattern, seed))
        }
    })
}

/// The event-driven counterpart of [`build_workload`]: `Some` for
/// sparse-capable workloads (same seed ⇒ the identical event stream,
/// enumerated instead of densified), `None` otherwise.
fn build_sparse_workload(
    scenario: &Scenario,
    seed: u64,
) -> Result<Option<Box<dyn SparseWorkload>>, String> {
    Ok(match &scenario.workload {
        WorkloadConfig::Sparse { pattern } => {
            pattern.validate()?;
            Some(Box::new(SparseActivity::new(scenario.n, *pattern, seed)))
        }
        _ => None,
    })
}

/// Per-step crash masks recomputed only when a crash or rejoin actually
/// fires: [`FaultInjector::mask_at`] is O(n + crashes), which would
/// swamp the O(active) sparse step if called every step.
struct MaskCache {
    /// Sorted, deduplicated times at which the mask changes.
    boundaries: Vec<u64>,
    next: usize,
    mask: Vec<bool>,
}

impl MaskCache {
    fn new(injector: &FaultInjector) -> Self {
        let mut boundaries: Vec<u64> = injector
            .crashes()
            .iter()
            .flat_map(|c| [Some(c.at), c.recover_at])
            .flatten()
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        MaskCache {
            boundaries,
            next: 0,
            mask: Vec::new(),
        }
    }

    /// The mask at time `t`; must be queried with non-decreasing `t`.
    fn at(&mut self, injector: &FaultInjector, t: u64) -> &[bool] {
        let mut crossed = false;
        while self.next < self.boundaries.len() && self.boundaries[self.next] <= t {
            self.next += 1;
            crossed = true;
        }
        if crossed || self.mask.is_empty() {
            self.mask = injector.mask_at(t);
        }
        &self.mask
    }
}

/// The fault plan for run `r`: the plan's own seed is re-derived per
/// run so runs see independent fault streams.
fn plan_for_run(scenario: &Scenario, r: usize) -> Option<dlb_faults::FaultPlan> {
    scenario.faults.as_ref().map(|plan| {
        let mut plan = plan.clone();
        plan.seed = stream_seed(plan.seed, r as u64, StreamId::Faults);
        plan
    })
}

/// `(δ, f, C)` as announced in `RunStarted` (zeroes for baselines that
/// have no such parameters — `trace_analyze` then skips the bounds).
fn strategy_triple(strategy: &StrategyConfig) -> (u64, f64, u64) {
    match strategy {
        StrategyConfig::Full { delta, f, c } | StrategyConfig::FullDense { delta, f, c } => {
            (*delta as u64, *f, *c as u64)
        }
        StrategyConfig::Simple { delta, f }
        | StrategyConfig::Async { delta, f, .. }
        | StrategyConfig::Weighted { delta, f, .. }
        | StrategyConfig::Topo { delta, f, .. } => (*delta as u64, *f, 0),
        _ => (0, 0.0, 0),
    }
}

/// Everything one run produces; aggregated in run-index order.
struct RunOutcome {
    recorder: LoadRecorder,
    strategy: String,
    ops: u64,
    migrated: u64,
    final_total: u64,
    stats: Option<AsyncStats>,
    lost: u64,
    events: Vec<TraceEvent>,
}

fn emit_load_sample(driver: &dlb_trace::SharedSink, step: u64, loads: &[u64]) {
    driver.record(&TraceEvent::LoadSample {
        step,
        min: *loads.iter().min().expect("n >= 2"),
        max: *loads.iter().max().expect("n >= 2"),
        total: loads.iter().sum(),
    });
}

/// Same bytes as [`emit_load_sample`], from the O(1) incremental
/// summary instead of an O(n) scan.
fn emit_summary_sample(driver: &dlb_trace::SharedSink, step: u64, summary: dlb_core::LoadSummary) {
    driver.record(&TraceEvent::LoadSample {
        step,
        min: summary.min,
        max: summary.max,
        total: summary.total,
    });
}

/// One run of a synchronous (LoadBalancer) strategy.
///
/// Sparse-capable workloads step through
/// [`LoadBalancer::step_sparse`] unless `force_dense` is set; both
/// paths observe the engine through the incremental
/// [`LoadBalancer::load_summary`] and produce byte-identical output.
fn run_one_sync(
    scenario: &Scenario,
    r: usize,
    tracing: bool,
    profile: bool,
    step_jobs: usize,
    wave_threshold: Option<usize>,
    force_dense: bool,
) -> Result<RunOutcome, String> {
    let seed = stream_seed(scenario.seed, r as u64, StreamId::Balancer);
    let mut balancer = build_strategy(scenario, seed)?;
    balancer.set_step_jobs(step_jobs.max(1));
    if let Some(threshold) = wave_threshold {
        balancer.set_wave_threshold(threshold);
    }
    let wseed = stream_seed(scenario.seed, r as u64, StreamId::Workload);
    let mut sparse_workload = if force_dense || !scenario.workload.is_sparse() {
        None
    } else {
        build_sparse_workload(scenario, wseed)?
    };
    let mut workload = match sparse_workload {
        // The sparse instance *is* the workload; a dense one is only
        // built when the sparse path is off.
        Some(_) => None,
        None => Some(build_workload(scenario, wseed)?),
    };
    let warmup = (scenario.steps as f64 * scenario.warmup_fraction) as usize;
    let mut recorder = LoadRecorder::new(warmup, 3.0);
    let buf = BufferSink::new();
    let driver = buf.handle();
    if tracing {
        let (delta, f, c) = strategy_triple(&scenario.strategy);
        driver.record(&TraceEvent::RunStarted {
            run: r as u64,
            seed,
            n: scenario.n as u64,
            strategy: balancer.name().to_string(),
            delta,
            f,
            c,
        });
        balancer.set_trace_sink(buf.handle());
    }
    // Synchronous engines take the fault plan as a per-step crash mask
    // (message faults do not apply to atomic balancing operations).
    let injector = match plan_for_run(scenario, r) {
        Some(plan) => Some(FaultInjector::new(plan, scenario.n)?),
        None => None,
    };
    let mut masks = injector.as_ref().map(MaskCache::new);
    let mut events = Vec::new();
    let mut active = Vec::new();
    for t in 0..scenario.steps {
        let started = std::time::Instant::now();
        let ops_before = balancer.metrics().balance_ops;
        match (&mut sparse_workload, &mut workload) {
            (Some(w), _) => {
                w.active_at(t, &mut active);
                match &injector {
                    Some(inj) => {
                        let mask = masks
                            .as_mut()
                            .expect("built with injector")
                            .at(inj, t as u64);
                        balancer.step_sparse_masked(&active, mask);
                    }
                    None => balancer.step_sparse(&active),
                }
            }
            (None, Some(w)) => {
                w.events_at(t, &mut events);
                match &injector {
                    Some(inj) => {
                        let mask = masks
                            .as_mut()
                            .expect("built with injector")
                            .at(inj, t as u64);
                        balancer.step_masked(&events, mask);
                    }
                    None => balancer.step(&events),
                }
            }
            (None, None) => unreachable!("one workload form is always built"),
        }
        let summary = balancer.load_summary();
        recorder.record_summary(summary, scenario.n);
        if tracing {
            emit_summary_sample(&driver, t as u64, summary);
            if profile {
                driver.record(&TraceEvent::StepProfile {
                    step: t as u64,
                    wall_ns: started.elapsed().as_nanos() as u64,
                    ops: balancer.metrics().balance_ops - ops_before,
                });
            }
        }
    }
    if tracing {
        driver.record(&TraceEvent::RunFinished { run: r as u64 });
    }
    Ok(RunOutcome {
        recorder,
        strategy: balancer.name().to_string(),
        ops: balancer.metrics().balance_ops,
        migrated: balancer.metrics().packets_migrated,
        final_total: balancer.loads().iter().sum(),
        stats: None,
        lost: 0,
        events: buf.take(),
    })
}

/// One run of the async (message-level) strategy.
fn run_one_async(
    scenario: &Scenario,
    r: usize,
    tracing: bool,
    profile: bool,
    delta: usize,
    f: f64,
    latency: u64,
) -> Result<RunOutcome, String> {
    let params = Params::new(scenario.n, delta, f, 4).map_err(|e| e.to_string())?;
    let seed = stream_seed(scenario.seed, r as u64, StreamId::Balancer);
    let config = AsyncConfig::reliable(params, latency, seed);
    let mut net = match plan_for_run(scenario, r) {
        Some(plan) => AsyncNetwork::with_faults(config, plan)?,
        None => AsyncNetwork::new(config),
    };
    let mut workload = build_workload(
        scenario,
        stream_seed(scenario.seed, r as u64, StreamId::Workload),
    )?;
    let warmup = (scenario.steps as f64 * scenario.warmup_fraction) as usize;
    let mut recorder = LoadRecorder::new(warmup, 3.0);
    let buf = BufferSink::new();
    let driver = buf.handle();
    if tracing {
        driver.record(&TraceEvent::RunStarted {
            run: r as u64,
            seed,
            n: scenario.n as u64,
            strategy: "spaa93-async".to_string(),
            delta: delta as u64,
            f,
            c: 0,
        });
        net.set_trace_sink(buf.handle());
    }
    let mut events = Vec::new();
    let mut actions = vec![0i8; scenario.n];
    for t in 0..scenario.steps {
        workload.events_at(t, &mut events);
        for (a, e) in actions.iter_mut().zip(events.iter()) {
            *a = match e {
                LoadEvent::Generate => 1,
                LoadEvent::Consume => -1,
                LoadEvent::Idle => 0,
            };
        }
        let started = std::time::Instant::now();
        let ops_before = net.stats().completed_ops;
        net.tick(t as u64, &actions);
        net.check_conservation()?;
        let loads = net.loads();
        recorder.record(&loads);
        if tracing {
            emit_load_sample(&driver, t as u64, &loads);
            if profile {
                driver.record(&TraceEvent::StepProfile {
                    step: t as u64,
                    wall_ns: started.elapsed().as_nanos() as u64,
                    ops: net.stats().completed_ops - ops_before,
                });
            }
        }
    }
    net.quiesce();
    net.check_conservation()?;
    if tracing {
        driver.record(&TraceEvent::RunFinished { run: r as u64 });
    }
    Ok(RunOutcome {
        recorder,
        strategy: "spaa93-async".to_string(),
        ops: net.stats().completed_ops,
        migrated: net.stats().packets_moved,
        final_total: net.loads().iter().sum(),
        stats: Some(*net.stats()),
        lost: net.lost(),
        events: buf.take(),
    })
}

/// Runs a scenario under explicit [`RunOptions`]: `jobs` worker
/// threads (identical output for every value) and an optional JSONL
/// trace, written in run-index order.
pub fn execute_with(scenario: &Scenario, opts: &RunOptions) -> Result<Report, String> {
    scenario.validate()?;
    let trace_path = opts.trace.clone().or_else(|| scenario.trace.clone());
    let tracing = trace_path.is_some();
    let jobs = opts.jobs.max(1);
    let async_cfg = match scenario.strategy {
        StrategyConfig::Async { delta, f, latency } => Some((delta, f, latency)),
        _ => None,
    };
    let outcomes: Vec<Result<RunOutcome, String>> =
        par_map(jobs, scenario.runs, |r| match async_cfg {
            Some((delta, f, latency)) => {
                run_one_async(scenario, r, tracing, opts.profile, delta, f, latency)
            }
            None => run_one_sync(
                scenario,
                r,
                tracing,
                opts.profile,
                opts.step_jobs,
                opts.wave_threshold,
                opts.dense,
            ),
        });

    let mut sink = match &trace_path {
        Some(path) => Some(
            FileSink::create(std::path::Path::new(path))
                .map_err(|e| format!("cannot create trace {path}: {e}"))?,
        ),
        None => None,
    };
    let mut recorder = LoadRecorder::new(0, 3.0); // per-run warm-up applied above
    let mut strategy_name = String::new();
    let mut ops = 0.0;
    let mut migrated = 0.0;
    let mut final_total = 0;
    let mut stats = AsyncStats::default();
    let mut lost_load = 0;
    for outcome in outcomes {
        let o = outcome?;
        recorder.merge(&o.recorder);
        strategy_name = o.strategy;
        ops += o.ops as f64;
        migrated += o.migrated as f64;
        final_total = o.final_total;
        if let Some(s) = o.stats {
            stats += s;
        }
        lost_load += o.lost;
        if let Some(sink) = &mut sink {
            for ev in &o.events {
                sink.record(ev);
            }
        }
    }
    if let Some(sink) = &mut sink {
        sink.flush();
    }
    Ok(Report {
        strategy: strategy_name,
        mean_ratio: recorder.mean_ratio(),
        p95_ratio: recorder.ratio_quantile(0.95),
        worst_ratio: recorder.worst_ratio(),
        ops_per_run: ops / scenario.runs as f64,
        migrated_per_run: migrated / scenario.runs as f64,
        final_total,
        async_stats: if async_cfg.is_some() {
            Some(stats)
        } else {
            None
        },
        lost_load,
    })
}

/// Races `scenario.strategy` against every `scenario.balancer` entry —
/// identical workloads, fault plans and per-run RNG streams for every
/// contender — and returns the rendered league table.  The primary
/// strategy's trigger-rule draws are byte-identical to a plain
/// [`execute_with`] run of the same scenario.  With tracing enabled the
/// JSONL carries one `ArenaContender` announcement per (contender, run)
/// followed by that run's engine events, in contender-major order.
pub fn execute_league(scenario: &Scenario, opts: &RunOptions) -> Result<String, String> {
    scenario.validate()?;
    let trace_path = opts.trace.clone().or_else(|| scenario.trace.clone());
    let tracing = trace_path.is_some();
    let n = scenario.n;
    build_workload(scenario, 0)?; // eager validation, once, off the hot path

    let mut contenders: Vec<Contender> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for config in std::iter::once(&scenario.strategy).chain(&scenario.balancer) {
        build_strategy_config(config, n, 0)?; // eager validation
        let base = kind_label(config);
        let dups = labels.iter().filter(|l| l.as_str() == base).count();
        let label = if dups == 0 {
            base.to_string()
        } else {
            format!("{base}#{}", dups + 1)
        };
        labels.push(base.to_string());
        let config = config.clone();
        contenders.push(Contender::new(&label, move |seed| {
            build_strategy_config(&config, n, seed).expect("contender validated above")
        }));
    }

    let cfg = ArenaConfig {
        n,
        steps: scenario.steps,
        runs: scenario.runs,
        seed: scenario.seed,
        warmup_fraction: scenario.warmup_fraction,
        conv_threshold: DEFAULT_CONV_THRESHOLD,
        faults: scenario.faults.clone(),
        jobs: opts.jobs.max(1),
    };
    let result = run_league(
        &cfg,
        &contenders,
        |seed| {
            let mut workload = build_workload(scenario, seed).expect("workload validated above");
            dlb_workload::trace::EventTrace::record(&mut workload, scenario.steps)
        },
        tracing,
    );

    if let Some(path) = &trace_path {
        let mut sink = FileSink::create(std::path::Path::new(path))
            .map_err(|e| format!("cannot create trace {path}: {e}"))?;
        for ev in &result.events {
            sink.record(ev);
        }
        sink.flush();
    }

    // The Lemma 6 cost yardstick applies only when the primary strategy
    // is the full algorithm (it alone runs decrease simulations).
    let lemma6_budget = match &scenario.strategy {
        StrategyConfig::Full { delta, f, c } => {
            let params = Params::new(n, *delta, *f, *c).map_err(|e| e.to_string())?;
            let cb = *c as u64;
            dlb_theory::CostBounds::for_params(params.algo()).lemma6_upper(2 * cb, cb, 64)
        }
        _ => None,
    };
    Ok(render_table(
        &LEAGUE_HEADERS,
        &league_csv_rows(&result.rows, lemma6_budget),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scenario;
    use dlb_faults::{CrashEvent, FaultPlan};

    /// Default options: sequential, untraced.
    fn execute(scenario: &Scenario) -> Result<Report, String> {
        execute_with(scenario, &RunOptions::default())
    }

    fn small_scenario(strategy: StrategyConfig, workload: WorkloadConfig) -> Scenario {
        Scenario {
            n: 8,
            steps: 120,
            runs: 2,
            seed: 1,
            warmup_fraction: 0.2,
            strategy,
            workload,
            balancer: vec![],
            faults: None,
            trace: None,
        }
    }

    #[test]
    fn demo_scenario_executes() {
        let mut demo = Scenario::demo();
        demo.runs = 2;
        demo.steps = 150;
        let report = execute(&demo).unwrap();
        assert_eq!(report.strategy, "spaa93-simple");
        assert!(report.mean_ratio >= 1.0);
        assert!(report.ops_per_run > 0.0);
    }

    #[test]
    fn every_strategy_kind_executes() {
        let strategies = vec![
            StrategyConfig::Full {
                delta: 1,
                f: 1.1,
                c: 4,
            },
            StrategyConfig::FullDense {
                delta: 1,
                f: 1.1,
                c: 4,
            },
            StrategyConfig::Simple { delta: 2, f: 1.4 },
            StrategyConfig::Async {
                delta: 2,
                f: 1.4,
                latency: 2,
            },
            StrategyConfig::Weighted {
                delta: 1,
                f: 1.1,
                speeds: vec![1; 8],
            },
            StrategyConfig::Topo {
                delta: 1,
                f: 1.1,
                topology: TopologyConfig::Hypercube { dim: 3 },
                neighbors_only: true,
            },
            StrategyConfig::Rsu91,
            StrategyConfig::WorkStealing,
            StrategyConfig::RandomScatter,
            StrategyConfig::Gradient {
                topology: TopologyConfig::Ring,
                low: 2,
                high: 8,
            },
            StrategyConfig::Diffusion {
                topology: TopologyConfig::Ring,
                alpha: 0.25,
            },
            StrategyConfig::Quasirandom {
                topology: TopologyConfig::Hypercube { dim: 3 },
            },
            StrategyConfig::DynamicAveraging {
                topology: TopologyConfig::Complete,
            },
            StrategyConfig::LocallyOptimal {
                topology: TopologyConfig::Torus { w: 2, h: 4 },
            },
            StrategyConfig::DimensionExchange {
                topology: TopologyConfig::Ring,
            },
            StrategyConfig::None,
        ];
        for strategy in strategies {
            let scenario = small_scenario(
                strategy.clone(),
                WorkloadConfig::Uniform {
                    p_gen: 0.5,
                    p_con: 0.3,
                },
            );
            let report = execute(&scenario).unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert!(report.mean_ratio >= 1.0, "{strategy:?}");
        }
    }

    #[test]
    fn every_workload_kind_executes() {
        let workloads = vec![
            WorkloadConfig::Phase {
                g: (0.1, 0.9),
                c: (0.1, 0.7),
                len: (20, 60),
            },
            WorkloadConfig::OneProducer { producer: 3 },
            WorkloadConfig::Uniform {
                p_gen: 0.4,
                p_con: 0.4,
            },
            WorkloadConfig::MovingHotspot {
                period: 10,
                p_con: 0.2,
            },
            WorkloadConfig::Split { swap_every: 25 },
        ];
        for workload in workloads {
            let scenario = small_scenario(
                StrategyConfig::Simple { delta: 1, f: 1.2 },
                workload.clone(),
            );
            execute(&scenario).unwrap_or_else(|e| panic!("{workload:?}: {e}"));
        }
    }

    #[test]
    fn async_strategy_reports_protocol_stats() {
        let mut scenario = small_scenario(
            StrategyConfig::Async {
                delta: 2,
                f: 1.3,
                latency: 2,
            },
            WorkloadConfig::Uniform {
                p_gen: 0.6,
                p_con: 0.2,
            },
        );
        scenario.steps = 300;
        let report = execute(&scenario).unwrap();
        assert_eq!(report.strategy, "spaa93-async");
        let stats = report.async_stats.expect("async stats present");
        assert!(stats.completed_ops > 0, "{stats:?}");
        assert!(report.render().contains("completed ops"));
    }

    #[test]
    fn async_strategy_with_faults_executes_and_accounts_loss() {
        let mut scenario = small_scenario(
            StrategyConfig::Async {
                delta: 2,
                f: 1.3,
                latency: 2,
            },
            WorkloadConfig::Uniform {
                p_gen: 0.6,
                p_con: 0.2,
            },
        );
        scenario.steps = 400;
        scenario.faults = Some(FaultPlan {
            seed: 1,
            loss: 0.2,
            ..FaultPlan::default()
        });
        let report = execute(&scenario).unwrap();
        let stats = report.async_stats.expect("async stats present");
        assert!(stats.lost_messages > 0, "{stats:?}");
        assert!(report.render().contains("lost messages"));
    }

    #[test]
    fn trace_is_byte_identical_across_jobs() {
        let dir = std::env::temp_dir().join("dlb_cli_trace_test");
        let mut scenario = small_scenario(
            StrategyConfig::Full {
                delta: 1,
                f: 1.1,
                c: 4,
            },
            WorkloadConfig::Phase {
                g: (0.1, 0.9),
                c: (0.1, 0.7),
                len: (20, 60),
            },
        );
        scenario.runs = 4;
        let run_with = |jobs: usize, name: &str| {
            let path = dir.join(name);
            let opts = RunOptions {
                trace: Some(path.to_string_lossy().into_owned()),
                jobs,
                ..RunOptions::default()
            };
            let report = execute_with(&scenario, &opts).unwrap();
            (std::fs::read(&path).unwrap(), report)
        };
        let (trace1, report1) = run_with(1, "j1.jsonl");
        let (trace4, report4) = run_with(4, "j4.jsonl");
        assert!(!trace1.is_empty());
        assert_eq!(trace1, trace4, "traces must not depend on --jobs");
        assert_eq!(report1.mean_ratio, report4.mean_ratio);
        assert_eq!(report1.ops_per_run, report4.ops_per_run);
        // Every line parses and re-renders byte-identically.
        let text = String::from_utf8(trace1).unwrap();
        for line in text.lines() {
            let ev = dlb_trace::TraceEvent::from_line(line).unwrap();
            assert_eq!(ev.to_line(), line);
        }
        // The trace carries engine events, not just driver samples.
        assert!(text.contains("\"t\":\"balance\""), "engine events present");
        assert!(text.contains("\"t\":\"run_start\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_is_byte_identical_across_step_jobs() {
        // Intra-step wave execution must not change a single byte of the
        // trace or report, alone or combined with run-level --jobs.
        let dir = std::env::temp_dir().join("dlb_cli_step_jobs_trace_test");
        let mut scenario = small_scenario(
            StrategyConfig::Full {
                delta: 2,
                f: 1.1,
                c: 4,
            },
            WorkloadConfig::Uniform {
                p_gen: 0.5,
                p_con: 0.3,
            },
        );
        scenario.n = 16;
        scenario.steps = 200;
        scenario.runs = 2;
        let run_with = |jobs: usize, step_jobs: usize, name: &str| {
            let path = dir.join(name);
            let opts = RunOptions {
                trace: Some(path.to_string_lossy().into_owned()),
                jobs,
                step_jobs,
                wave_threshold: Some(0),
                profile: false,
                dense: false,
            };
            let report = execute_with(&scenario, &opts).unwrap();
            (std::fs::read(&path).unwrap(), report)
        };
        let (seq, report_seq) = run_with(1, 1, "s1.jsonl");
        assert!(!seq.is_empty());
        for (jobs, step_jobs) in [(1, 4), (2, 2), (1, 8)] {
            let name = format!("j{jobs}s{step_jobs}.jsonl");
            let (par, report_par) = run_with(jobs, step_jobs, &name);
            assert_eq!(seq, par, "jobs={jobs} step-jobs={step_jobs}");
            assert_eq!(report_seq.mean_ratio, report_par.mean_ratio);
            assert_eq!(report_seq.ops_per_run, report_par.ops_per_run);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn untraced_report_matches_traced_report() {
        let dir = std::env::temp_dir().join("dlb_cli_trace_inert_test");
        let scenario = small_scenario(
            StrategyConfig::Simple { delta: 1, f: 1.2 },
            WorkloadConfig::Uniform {
                p_gen: 0.5,
                p_con: 0.3,
            },
        );
        let plain = execute(&scenario).unwrap();
        let opts = RunOptions {
            trace: Some(dir.join("t.jsonl").to_string_lossy().into_owned()),
            jobs: 2,
            step_jobs: 2,
            wave_threshold: None,
            profile: true,
            dense: false,
        };
        let traced = execute_with(&scenario, &opts).unwrap();
        assert_eq!(plain.mean_ratio, traced.mean_ratio, "tracing is inert");
        assert_eq!(plain.ops_per_run, traced.ops_per_run);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A scenario with a three-way league: the full algorithm vs two
    /// rivals, with a frozen crash in play.
    fn league_scenario() -> Scenario {
        let mut scenario = small_scenario(
            StrategyConfig::Full {
                delta: 1,
                f: 1.1,
                c: 4,
            },
            WorkloadConfig::Uniform {
                p_gen: 0.5,
                p_con: 0.3,
            },
        );
        scenario.balancer = vec![
            StrategyConfig::Quasirandom {
                topology: TopologyConfig::Hypercube { dim: 3 },
            },
            StrategyConfig::None,
        ];
        scenario.faults = Some(FaultPlan {
            crashes: vec![CrashEvent {
                proc: 2,
                at: 30,
                recover_at: Some(60),
            }],
            ..FaultPlan::default()
        });
        scenario
    }

    #[test]
    fn league_table_is_identical_across_jobs() {
        let scenario = league_scenario();
        let run_with = |jobs| {
            execute_league(
                &scenario,
                &RunOptions {
                    jobs,
                    ..RunOptions::default()
                },
            )
            .unwrap()
        };
        let table = run_with(1);
        for label in ["full", "quasirandom", "none", "cost_vs_l6"] {
            assert!(table.contains(label), "missing {label} in:\n{table}");
        }
        assert_eq!(table, run_with(4), "league must not depend on --jobs");
    }

    #[test]
    fn league_announces_contenders_in_the_trace() {
        let dir = std::env::temp_dir().join("dlb_cli_league_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("league.jsonl");
        let scenario = league_scenario();
        let opts = RunOptions {
            trace: Some(path.to_string_lossy().into_owned()),
            ..RunOptions::default()
        };
        execute_league(&scenario, &opts).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let announced: Vec<String> = text
            .lines()
            .map(|l| dlb_trace::TraceEvent::from_line(l).unwrap())
            .filter_map(|ev| match ev {
                TraceEvent::ArenaContender { label, .. } => Some(label),
                _ => None,
            })
            .collect();
        // Contender-major: each contender announces all its runs in order.
        assert_eq!(
            announced,
            ["full", "full", "quasirandom", "quasirandom", "none", "none"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_league_kinds_get_distinct_labels() {
        let mut scenario = league_scenario();
        scenario.balancer = vec![
            StrategyConfig::Diffusion {
                topology: TopologyConfig::Ring,
                alpha: 0.1,
            },
            StrategyConfig::Diffusion {
                topology: TopologyConfig::Ring,
                alpha: 0.5,
            },
        ];
        let table = execute_league(&scenario, &RunOptions::default()).unwrap();
        assert!(table.contains("diffusion"), "{table}");
        assert!(table.contains("diffusion#2"), "{table}");
    }

    #[test]
    fn league_primary_matches_a_plain_run_bit_for_bit() {
        // The trigger-rule contender inside the league must consume its
        // RNG streams exactly as a plain single-strategy run does.
        let mut scenario = league_scenario();
        scenario.faults = None;
        let plain = execute(&scenario).unwrap();
        let table = execute_league(&scenario, &RunOptions::default()).unwrap();
        let full_row: Vec<&str> = table
            .lines()
            .find(|l| l.trim_start().starts_with("full"))
            .expect("full row present")
            .split_whitespace()
            .collect();
        // Columns: contender strategy mean p95 worst ops migrated ...
        assert_eq!(full_row[2], format!("{:.3}", plain.mean_ratio));
        assert_eq!(full_row[4], format!("{:.3}", plain.worst_ratio));
        assert_eq!(full_row[5], format!("{:.3}", plain.ops_per_run));
    }

    fn sparse_workloads() -> Vec<WorkloadConfig> {
        use dlb_workload::sparse::SparsePattern;
        vec![
            WorkloadConfig::Sparse {
                pattern: SparsePattern::Phase {
                    work: 2,
                    gap: (3, 9),
                },
            },
            WorkloadConfig::Sparse {
                pattern: SparsePattern::Hotspot {
                    period: 5,
                    consumer_gap: 4,
                },
            },
            WorkloadConfig::Sparse {
                pattern: SparsePattern::Bursty {
                    burst: 3,
                    quiet: 12,
                    quiet_gap: 8,
                },
            },
            WorkloadConfig::Sparse {
                pattern: SparsePattern::Arrivals {
                    arrival_gap: 6,
                    service_gap: 3,
                },
            },
        ]
    }

    #[test]
    fn every_sparse_workload_kind_executes() {
        for workload in sparse_workloads() {
            let scenario = small_scenario(
                StrategyConfig::Simple { delta: 1, f: 1.2 },
                workload.clone(),
            );
            execute(&scenario).unwrap_or_else(|e| panic!("{workload:?}: {e}"));
        }
    }

    #[test]
    fn sparse_trace_is_byte_identical_to_dense() {
        // The event-driven path must not change a single byte of the
        // trace or report relative to --dense, for sequential and
        // wave-parallel steps, with a crash/rejoin in play.
        let dir = std::env::temp_dir().join("dlb_cli_sparse_identity_test");
        for (w, workload) in sparse_workloads().into_iter().enumerate() {
            let mut scenario = small_scenario(
                StrategyConfig::Full {
                    delta: 1,
                    f: 1.1,
                    c: 4,
                },
                workload,
            );
            scenario.n = 16;
            scenario.steps = 200;
            scenario.runs = 2;
            scenario.faults = Some(FaultPlan {
                crashes: vec![CrashEvent {
                    proc: 3,
                    at: 40,
                    recover_at: Some(90),
                }],
                ..FaultPlan::default()
            });
            let run_with = |dense: bool, step_jobs: usize, name: &str| {
                let path = dir.join(name);
                let opts = RunOptions {
                    trace: Some(path.to_string_lossy().into_owned()),
                    step_jobs,
                    wave_threshold: Some(0),
                    dense,
                    ..RunOptions::default()
                };
                let report = execute_with(&scenario, &opts).unwrap();
                (std::fs::read(&path).unwrap(), report)
            };
            for step_jobs in [1, 4] {
                let (dense, dense_report) =
                    run_with(true, step_jobs, &format!("w{w}s{step_jobs}_dense.jsonl"));
                let (sparse, sparse_report) =
                    run_with(false, step_jobs, &format!("w{w}s{step_jobs}_sparse.jsonl"));
                assert!(!dense.is_empty());
                assert_eq!(dense, sparse, "workload {w}, step-jobs {step_jobs}");
                assert_eq!(dense_report.mean_ratio, sparse_report.mean_ratio);
                assert_eq!(dense_report.ops_per_run, sparse_report.ops_per_run);
                assert_eq!(dense_report.final_total, sparse_report.final_total);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_strategy_accepts_a_crash_mask() {
        let mut scenario = small_scenario(
            StrategyConfig::Simple { delta: 1, f: 1.2 },
            WorkloadConfig::Uniform {
                p_gen: 0.5,
                p_con: 0.3,
            },
        );
        scenario.faults = Some(FaultPlan {
            crashes: vec![CrashEvent {
                proc: 2,
                at: 30,
                recover_at: Some(60),
            }],
            ..FaultPlan::default()
        });
        let report = execute(&scenario).unwrap();
        assert!(report.mean_ratio >= 1.0);
    }
}
